# Convenience entry points for the OmniBoost reproduction.

# Tier-1 verification: everything CI's test job runs.
.PHONY: verify
verify:
	cargo build --release
	cargo test -q

# Perf smoke: the perf benches end to end in SMOKE mode — shrunken
# budgets/epochs/traces, metrics pipelines fully exercised, no JSON
# snapshot rewrites (numbers from noisy runners must not be published).
.PHONY: perf-smoke
perf-smoke:
	SMOKE=1 cargo bench --bench decision_latency
	SMOKE=1 cargo bench --bench estimator_training
	SMOKE=1 cargo bench --bench serving
	SMOKE=1 cargo bench --bench fleet
	SMOKE=1 cargo bench --bench fleet_scale
	SMOKE=1 cargo bench --bench admission
	SMOKE=1 cargo bench --bench chaos
	SMOKE=1 cargo bench --bench rpc
	SMOKE=1 cargo bench --bench telemetry_overhead

# Full perf snapshots: rewrites BENCH_decision_latency.json,
# BENCH_estimator_training.json, BENCH_serving.json, BENCH_fleet.json,
# BENCH_fleet_scale.json, BENCH_admission.json, BENCH_chaos.json,
# BENCH_rpc.json and BENCH_telemetry_overhead.json with this host's
# numbers (the estimator_training direct-backward baseline takes a few
# minutes).
.PHONY: perf-snapshots
perf-snapshots:
	cargo bench --bench decision_latency
	cargo bench --bench estimator_training
	cargo bench --bench serving
	cargo bench --bench fleet
	cargo bench --bench fleet_scale
	cargo bench --bench admission
	cargo bench --bench chaos
	cargo bench --bench rpc
	cargo bench --bench telemetry_overhead

# Full fleet-scale run only: rewrites BENCH_fleet_scale.json ({16, 64,
# 256}-board cells, ~2000-job traces each).
.PHONY: perf-scale
perf-scale:
	cargo bench --bench fleet_scale

# Full admission-control run only: rewrites BENCH_admission.json
# (fifo-vs-mempool arms at 2x and 5x overload, 3 trace seeds each).
.PHONY: perf-admission
perf-admission:
	cargo bench --bench admission

# Full chaos run only: rewrites BENCH_chaos.json (three chaos
# intensities vs a chaos-free oracle, degrade-in-place A/B, 3 trace
# seeds each).
.PHONY: perf-chaos
perf-chaos:
	cargo bench --bench chaos

# Full RPC-daemon run only: rewrites BENCH_rpc.json (closed-loop
# loadgen over loopback HTTP at 0.5x/1x/2x load: sustained req/s,
# admission RTT p99, scheduler decision p99, drain latency).
.PHONY: perf-rpc
perf-rpc:
	cargo bench --bench rpc

# Full telemetry-overhead run only: rewrites
# BENCH_telemetry_overhead.json (same seeded trace, Telemetry::noop()
# vs Telemetry::recording(); bar: <=3% mean decision-latency overhead,
# identical replay digests).
.PHONY: perf-telemetry
perf-telemetry:
	cargo bench --bench telemetry_overhead
