//! Online serving walkthrough: a fleet of boards under live traffic.
//!
//! Generates a seeded bursty arrival trace, serves it twice — cold
//! restarts vs warm-started rescheduling — and prints the per-event
//! story plus the serving summary of each run. Also demonstrates
//! evaluation-cache persistence: the warm daemon saves its cache on
//! shutdown and a "rebooted" daemon warm-loads it.
//!
//! Run with:
//! ```sh
//! cargo run --release --example serving_sim
//! ```

use omniboost_hw::{AnalyticModel, Board};
use omniboost_models::{ArrivalProcess, ArrivalTrace, JobEvent, TraceConfig};
use omniboost_serve::{OnlineConfig, SearchBudget, ServingConfig, ServingReport, ServingSim};

const HORIZON_MS: u64 = 45_000;
const BOARDS: usize = 2;

fn serve(trace: &ArrivalTrace, config: ServingConfig) -> ServingReport {
    let mut sim = ServingSim::new(vec![Board::hikey970(); BOARDS], config, AnalyticModel::new);
    sim.run(trace, HORIZON_MS)
}

fn print_story(report: &ServingReport) {
    for tick in &report.ticks {
        for e in &tick.events {
            match e {
                JobEvent::Arrive(j) => {
                    println!(
                        "  t={:>6}ms  + job {} ({}, tenant {})",
                        tick.at_ms, j.id, j.model, j.tenant
                    )
                }
                JobEvent::Depart { job_id } => {
                    println!("  t={:>6}ms  - job {job_id}", tick.at_ms)
                }
            }
        }
        for d in &tick.decisions {
            println!(
                "             board {} [{}] {:.1} ms, {} jobs, {:.1} inf/s, {} layers migrated",
                d.board,
                d.kind.label(),
                d.decision_ms,
                d.jobs,
                d.throughput,
                d.migrated_layers,
            );
        }
        if tick.queue_depth > 0 {
            println!("             queue depth {}", tick.queue_depth);
        }
    }
}

fn print_summary(name: &str, report: &ServingReport) {
    let s = &report.summary;
    println!("--- {name} ---");
    println!(
        "  events {} (arrive {}, depart {}), decisions {}, peak queue {}",
        s.events, s.arrivals, s.departures, s.decisions, s.peak_queue_depth
    );
    println!(
        "  single-job-delta decision latency: median {:.1} ms over {} events",
        s.single_job_delta.median_ms, s.single_job_delta.count
    );
    println!(
        "  cold {:.1} ms x{} | warm {:.1} ms x{} | memo {:.2} ms x{}",
        s.cold.median_ms,
        s.cold.count,
        s.warm.median_ms,
        s.warm.count,
        s.memo.median_ms,
        s.memo.count
    );
    println!(
        "  time-weighted fleet throughput {:.2} inf/s, migration churn {} layers",
        s.mean_aggregate_tps, s.migrated_layers
    );
    println!(
        "  board utilization {:?}, eval-cache hit rate {:.1}% ({} preloaded)",
        s.board_utilization
            .iter()
            .map(|u| format!("{:.0}%", u * 100.0))
            .collect::<Vec<_>>(),
        s.eval_cache.hit_rate() * 100.0,
        s.cache_preloaded_entries,
    );
}

fn main() {
    // A bursty trace: flash crowds with silent gaps, 45 s, seeded.
    let trace = ArrivalTrace::generate(
        ArrivalProcess::Bursty {
            on_rate_per_s: 1.2,
            on_ms: 6_000,
            off_ms: 9_000,
        },
        &TraceConfig {
            horizon_ms: HORIZON_MS,
            mean_lifetime_ms: 12_000.0,
            ..TraceConfig::default()
        },
        7,
    );
    println!(
        "trace: {} events ({} arrivals) over {}s on {} boards\n",
        trace.len(),
        trace.arrivals(),
        HORIZON_MS / 1000,
        BOARDS
    );

    let online = OnlineConfig {
        cold_budget: SearchBudget::with_iterations(300),
        warm_budget: SearchBudget::with_iterations(100),
        ..OnlineConfig::default()
    };

    // Baseline: every event pays a full cold search.
    let cold = serve(
        &trace,
        ServingConfig {
            online,
            ..ServingConfig::cold()
        },
    );

    // Production path: memo + warm starts + persisted cache.
    let cache_path = std::env::temp_dir().join("omniboost-serving-example.cache");
    std::fs::remove_file(&cache_path).ok();
    let warm_config = || ServingConfig {
        online,
        cache_path: Some(cache_path.clone()),
        ..ServingConfig::warm()
    };
    let warm = serve(&trace, warm_config());
    println!("warm-policy event story:");
    print_story(&warm);
    println!();

    print_summary("cold restarts", &cold);
    print_summary("warm starts", &warm);

    // "Reboot the daemon": the persisted cache answers immediately.
    let rebooted = serve(&trace, warm_config());
    print_summary("warm starts, rebooted with persisted cache", &rebooted);
    assert!(rebooted.summary.cache_preloaded_entries > 0);
    assert_eq!(
        warm.digest(),
        rebooted.digest(),
        "persistence changes cost, not decisions"
    );

    let speedup =
        cold.summary.single_job_delta.median_ms / warm.summary.single_job_delta.median_ms.max(1e-9);
    println!(
        "\nwarm-started rescheduling answered single-job deltas {speedup:.1}x faster at {:.1}% \
         of cold throughput, moving {} vs {} layers",
        warm.summary.mean_aggregate_tps / cold.summary.mean_aggregate_tps * 100.0,
        warm.summary.migrated_layers,
        cold.summary.migrated_layers,
    );
    std::fs::remove_file(&cache_path).ok();
}
