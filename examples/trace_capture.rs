//! Capture a Chrome-loadable trace of a serving run.
//!
//! Attaches a recording [`Telemetry`] handle to a seeded `ServingSim`,
//! replays a short bursty trace, and writes the retained spans + flight
//! events as Chrome `trace_event` JSON. Open the produced
//! `trace_capture.trace.json` in `about://tracing` (Chrome) or
//! <https://ui.perfetto.dev> to see memo lookups, warm/cold searches,
//! estimator forwards and tick flushes on a shared microsecond
//! timeline.
//!
//! Run with:
//! ```sh
//! cargo run --release --example trace_capture
//! ```

use omniboost_hw::{AnalyticModel, Board};
use omniboost_models::{ArrivalProcess, ArrivalTrace, TraceConfig};
use omniboost_serve::{OnlineConfig, SearchBudget, ServingConfig, ServingSim, Telemetry};

const HORIZON_MS: u64 = 30_000;

fn main() {
    let trace = ArrivalTrace::generate(
        ArrivalProcess::Bursty {
            on_rate_per_s: 1.2,
            on_ms: 5_000,
            off_ms: 7_000,
        },
        &TraceConfig {
            horizon_ms: HORIZON_MS,
            mean_lifetime_ms: 10_000.0,
            ..TraceConfig::default()
        },
        7,
    );

    let mut sim = ServingSim::new(
        vec![Board::hikey970(); 2],
        ServingConfig {
            online: OnlineConfig {
                cold_budget: SearchBudget::with_iterations(200),
                warm_budget: SearchBudget::with_iterations(80),
                ..OnlineConfig::default()
            },
            ..ServingConfig::warm()
        },
        AnalyticModel::new,
    );

    // The only line observability costs an embedder: telemetry is
    // injected, never constructed by the sim, and a no-op by default.
    let telemetry = Telemetry::recording();
    sim.set_telemetry(telemetry.clone());

    let report = sim.run(&trace, HORIZON_MS);
    println!(
        "served {} events ({} decisions) at {:.2} inf/s aggregate; digest {:#x}",
        report.summary.events,
        report.summary.decisions,
        report.summary.mean_aggregate_tps,
        report.digest(),
    );

    let spans = telemetry.spans();
    let mut by_name: std::collections::BTreeMap<&str, (usize, u64)> =
        std::collections::BTreeMap::new();
    for s in &spans {
        let row = by_name.entry(s.name).or_insert((0, 0));
        row.0 += 1;
        row.1 += s.dur_us;
    }
    println!("\nspan inventory ({} retained):", spans.len());
    for (name, (count, total_us)) in &by_name {
        println!(
            "  {name:<28} x{count:<5} {:.2} ms total",
            *total_us as f64 / 1e3
        );
    }

    let path = std::path::Path::new("trace_capture.trace.json");
    std::fs::write(path, telemetry.trace_json()).expect("write trace file");
    println!(
        "\nwrote {} ({} spans, {} flight events) — load it in about://tracing or ui.perfetto.dev",
        path.display(),
        spans.len(),
        telemetry.flight_events().len(),
    );
}
