//! Train the CNN throughput estimator from scratch and inspect its
//! quality: loss curves (Fig. 4) plus per-sample prediction accuracy
//! against the board on held-out workloads.
//!
//! Run with `cargo run --release --example train_estimator`.

use omniboost::estimator::{
    mean_absolute_percentage_error, r_squared, CnnEstimator, DatasetConfig, TrainConfig,
};
use omniboost_hw::{Board, Mapping, ThroughputModel, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let board = Board::hikey970();

    // A mid-size dataset keeps this example fast; the fig4 harness runs
    // the paper's full 500-workload configuration.
    let dataset = DatasetConfig {
        num_workloads: 150,
        ..DatasetConfig::default()
    }
    .generate(&board);
    println!("generated {} labelled workloads", dataset.samples.len());

    let config = TrainConfig {
        epochs: 40,
        ..TrainConfig::default()
    };
    let (estimator, history) = CnnEstimator::train(&board, &dataset, &config);
    println!("epoch    train-L1    val-L1");
    for (e, (tr, va)) in history.train.iter().zip(&history.validation).enumerate() {
        if e % 5 == 0 || e + 1 == history.train.len() {
            println!("{:>5}    {:>8.4}    {:>6.4}", e + 1, tr, va);
        }
    }

    // Accuracy probe on fresh random workloads never seen in training.
    let sim = board.simulator();
    let mut rng = StdRng::seed_from_u64(0xACC);
    let mut predicted = Vec::new();
    let mut measured = Vec::new();
    for _ in 0..25 {
        let workload = Workload::from_ids(random_mix(&mut rng));
        let mapping = Mapping::random(&workload, 3, &mut rng);
        let truth = sim.evaluate(&workload, &mapping)?;
        let guess = estimator.predict_average(&workload, &mapping)?;
        predicted.push(guess);
        measured.push(truth.average);
    }
    println!(
        "\nheld-out accuracy over 25 fresh workloads: MAPE = {:.1}%, R^2 = {:.3}",
        mean_absolute_percentage_error(&predicted, &measured),
        r_squared(&predicted, &measured)
    );
    Ok(())
}

fn random_mix(rng: &mut StdRng) -> Vec<omniboost_models::ModelId> {
    use rand::seq::SliceRandom;
    use rand::Rng;
    let mut ids = omniboost_models::ModelId::ALL.to_vec();
    ids.shuffle(rng);
    let k = rng.gen_range(1..=4);
    ids.truncate(k);
    ids
}
