//! Board-occupancy view: print the model-zoo inventory, then compare how
//! the GPU-only baseline and an OmniBoost-style spread occupy the three
//! computing components of the board under a heavy mix — the "evenly
//! distribute the given workload" claim of the paper's abstract, made
//! visible.
//!
//! Run with `cargo run --release --example board_utilization`.

use omniboost::mcts::{Mcts, SchedulingEnv, SearchBudget};
use omniboost_hw::{Board, Device, Mapping, Workload};
use omniboost_models::{summary_table, zoo, ModelId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "## model zoo inventory\n{}",
        summary_table(&zoo::build_all())
    );

    let board = Board::hikey970();
    let sim = board.simulator();
    let workload = Workload::from_ids([
        ModelId::Vgg19,
        ModelId::ResNet50,
        ModelId::InceptionV3,
        ModelId::Vgg16,
    ]);
    println!("## workload: {workload}\n");

    let show = |label: &str, mapping: &Mapping| -> Result<(), omniboost_hw::HwError> {
        let (report, util) = sim.evaluate_traced(&workload, mapping)?;
        println!("{label}: T = {:.2} inf/s", report.average);
        for d in Device::ALL {
            println!(
                "  {:<11} busy {:>5.1}%  ({} layers)",
                d.to_string(),
                util.device_busy[d.index()] * 100.0,
                mapping.layers_on(d)
            );
        }
        println!("  bus         busy {:>5.1}%\n", util.bus_busy * 100.0);
        Ok(())
    };

    show(
        "baseline (all on GPU)",
        &Mapping::all_on(&workload, Device::Gpu),
    )?;

    // Let the oracle-guided search distribute the workload.
    let env = SchedulingEnv::new(&workload, &sim, 3)?;
    let result = Mcts::new(SearchBudget::with_iterations(200)).search_parallel(&env, &[1, 2, 3, 4]);
    let mapping = env.mapping_of(&result.best_state);
    show("omniboost-style spread", &mapping)?;
    println!("spread mapping:\n{mapping}");
    Ok(())
}
