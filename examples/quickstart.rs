//! Quickstart: schedule a 3-DNN workload with OmniBoost and compare it
//! against the everything-on-the-GPU baseline.
//!
//! Run with `cargo run --release --example quickstart`.

use omniboost::{OmniBoost, OmniBoostConfig, Runtime};
use omniboost_hw::{Board, Device, Mapping, Workload};
use omniboost_models::ModelId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The board: a calibrated HiKey970 stand-in (Mali-G72 GPU +
    //    Cortex-A73 "big" cluster + Cortex-A53 "LITTLE" cluster).
    let board = Board::hikey970();

    // 2. Design time (once per platform): profile the model zoo, generate
    //    random workloads, measure them on the board, train the CNN
    //    throughput estimator. `quick()` keeps this demo under a minute;
    //    use `OmniBoostConfig::default()` for the paper's full setup.
    println!("training the throughput estimator (design time)...");
    let (mut scheduler, history) = OmniBoost::design_time(&board, OmniBoostConfig::quick());
    println!(
        "  estimator trained: final validation L1 loss = {:.4}",
        history.final_validation_loss()
    );

    // 3. Run time: ask OmniBoost for a mapping of a concurrent mix.
    let workload = Workload::from_ids([ModelId::Vgg19, ModelId::ResNet50, ModelId::MobileNet]);
    println!("\nscheduling {workload} ...");
    let runtime = Runtime::new(board);
    let outcome = runtime.run(&mut scheduler, &workload)?;

    println!("\ndecided mapping (pipeline stages per DNN):");
    println!("{}", outcome.mapping);
    println!(
        "\nmeasured average throughput T = {:.2} inf/s (decision took {:?})",
        outcome.report.average, outcome.decision_time
    );

    // 4. Compare against the common scheduling approach.
    let baseline = runtime.measure(&workload, &Mapping::all_on(&workload, Device::Gpu))?;
    println!(
        "baseline (all on GPU)       T = {:.2} inf/s  ->  OmniBoost speedup {:.2}x",
        baseline.average,
        outcome.report.average / baseline.average
    );
    Ok(())
}
