//! Fleet orchestration walkthrough: a heterogeneous fleet surviving a
//! board failure mid-trace, recovering through rebalancing, and serving
//! four tenants fairly.
//!
//! Builds a 3-board fleet (two full HiKey970s plus a degraded "lite"
//! board), generates a skewed-tenant Poisson trace and a fleet script
//! that kills board 0 mid-trace and joins a replacement later, then
//! replays it twice — jobs pinned to their admission board vs
//! migration-costed rebalancing — and prints the event story, the
//! evacuation accounting and the per-tenant summary table.
//!
//! Run with:
//! ```sh
//! cargo run --release --example fleet_orchestration
//! ```

use omniboost_hw::AnalyticModel;
use omniboost_models::JobEvent;
use omniboost_orchestrator::{
    tenant_tps_ratio, ArrivalProcess, ArrivalTrace, BoardProfile, FleetEvent, FleetScript,
    FleetSpec, FleetTraceEvent, OnlineConfig, OrchestratorConfig, OrchestratorReport,
    OrchestratorSim, PlacementPolicy, RebalanceConfig, TraceConfig,
};
use omniboost_serve::SearchBudget;

const HORIZON_MS: u64 = 45_000;

fn orchestrate(
    trace: &ArrivalTrace,
    script: &FleetScript,
    rebalance: Option<RebalanceConfig>,
) -> OrchestratorReport {
    // Two full boards + one thermally capped "lite" board: placement
    // compares true headroom (load normalized by each board's own peak
    // compute), and each profile keeps its own persisted cache segment.
    let spec = FleetSpec::heterogeneous(vec![
        BoardProfile::hikey970(),
        BoardProfile::hikey970(),
        BoardProfile::hikey970_lite(),
    ]);
    let config = OrchestratorConfig {
        placement: PlacementPolicy::FairShare,
        online: OnlineConfig {
            cold_budget: SearchBudget::with_iterations(300),
            warm_budget: SearchBudget::with_iterations(100),
            ..OnlineConfig::default()
        },
        rebalance,
        ..OrchestratorConfig::warm()
    };
    let mut sim = OrchestratorSim::new(spec, config, AnalyticModel::new);
    sim.run(trace, script, HORIZON_MS)
}

fn print_story(report: &OrchestratorReport) {
    for tick in &report.ticks {
        for fe in &tick.fleet_events {
            let what = match fe.event {
                FleetEvent::BoardFail { board } => format!("board {board} FAILED"),
                FleetEvent::BoardDrain { board } => format!("board {board} draining"),
                FleetEvent::BoardJoin { .. } => {
                    format!("board joined as slot {}", fe.slot.unwrap_or(usize::MAX))
                }
                FleetEvent::BoardDegrade { board, .. } => format!("board {board} DEGRADED"),
                FleetEvent::BoardRecover { board } => format!("board {board} recovered"),
            };
            println!(
                "  t={:>6}ms  ! {what} — {} evacuated ({} re-placed, {} queued)",
                tick.at_ms,
                fe.evacuated.len(),
                fe.relocated,
                fe.queued
            );
        }
        for e in &tick.events {
            match e {
                JobEvent::Arrive(j) => println!(
                    "  t={:>6}ms  + job {} ({}, tenant {})",
                    tick.at_ms, j.id, j.model, j.tenant
                ),
                JobEvent::Depart { job_id } => {
                    println!("  t={:>6}ms  - job {job_id}", tick.at_ms)
                }
            }
        }
        for mv in &tick.rebalances {
            println!(
                "  t={:>6}ms  ~ rebalance: job {} board {} -> {} (+{:.1} inf/s for {} layers)",
                tick.at_ms, mv.job_id, mv.from, mv.to, mv.gain_tps, mv.migrated_layers
            );
        }
    }
}

fn print_summary(name: &str, report: &OrchestratorReport) {
    let s = &report.summary;
    println!("--- {name} ---");
    println!(
        "  {} events, {} placements, {} failures / {} joins, peak queue {}",
        s.events, s.placements, s.board_failures, s.board_joins, s.peak_queue_depth
    );
    println!(
        "  evacuation: {} jobs, {} lost, wait mean {:.0} ms (max {:.0} ms)",
        s.evacuated_jobs, s.lost_jobs, s.evacuation_wait.mean_ms, s.evacuation_wait.max_ms
    );
    println!(
        "  rebalancing: {} moves of {} proposals, {} layers migrated, priced gain {:.1} inf/s",
        s.rebalance_moves,
        s.rebalance_moves + s.rebalance_rejected,
        s.rebalance_migrated_layers,
        s.rebalance_gain_tps
    );
    println!(
        "  fleet throughput {:.2} inf/s (time-weighted), utilization {:?}",
        s.mean_aggregate_tps,
        s.board_utilization
            .iter()
            .map(|u| format!("{:.0}%", u * 100.0))
            .collect::<Vec<_>>()
    );
    println!("  per-tenant:  tenant  arrivals  placed  mean inf/s  queue-wait ms");
    for t in &s.tenants {
        println!(
            "               {:>6}  {:>8}  {:>6}  {:>10.2}  {:>13.0}",
            t.tenant, t.arrivals, t.placements, t.mean_tps, t.queue_wait.mean_ms
        );
    }
    println!(
        "  tenant max/min throughput ratio {:.2}",
        tenant_tps_ratio(&s.tenants)
    );
}

fn main() {
    // Skewed tenants: tenant 0 submits 70% of the jobs.
    let trace = ArrivalTrace::generate(
        ArrivalProcess::Poisson { rate_per_s: 0.8 },
        &TraceConfig {
            horizon_ms: HORIZON_MS,
            mean_lifetime_ms: 14_000.0,
            tenant_weights: vec![7.0, 1.0, 1.0, 1.0],
            ..TraceConfig::default()
        },
        11,
    );
    // The fleet script: board 0 dies a third in; a replacement (full
    // profile, pool index 0) joins at two thirds.
    let script = FleetScript::new(vec![
        FleetTraceEvent {
            at_ms: HORIZON_MS / 3,
            event: FleetEvent::BoardFail { board: 0 },
        },
        FleetTraceEvent {
            at_ms: 2 * HORIZON_MS / 3,
            event: FleetEvent::BoardJoin { profile: 0 },
        },
    ]);
    println!(
        "trace: {} events ({} arrivals) over {}s; board 0 fails at {}s, a spare joins at {}s\n",
        trace.len(),
        trace.arrivals(),
        HORIZON_MS / 1000,
        HORIZON_MS / 3000,
        2 * HORIZON_MS / 3000,
    );

    let pinned = orchestrate(&trace, &script, None);
    let rebalanced = orchestrate(&trace, &script, Some(RebalanceConfig::default()));

    println!("orchestrated event story (rebalancing on):");
    print_story(&rebalanced);
    println!();
    print_summary("jobs pinned to their admission board", &pinned);
    print_summary("migration-costed rebalancing", &rebalanced);

    assert_eq!(pinned.summary.lost_jobs, 0, "evacuation never loses jobs");
    assert_eq!(rebalanced.summary.lost_jobs, 0);
    println!(
        "\nrebalancing served {:+.1}% aggregate throughput vs pinned jobs, at {} extra migrated \
         layers",
        (rebalanced.summary.mean_aggregate_tps / pinned.summary.mean_aggregate_tps - 1.0) * 100.0,
        rebalanced.summary.rebalance_migrated_layers,
    );
}
