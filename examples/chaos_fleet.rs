//! Chaos walkthrough: a fleet surviving partial failures — an in-place
//! board degrade (GPU brown-out), a recovery, and a fail→rejoin flap
//! with a cache-archive warm reboot.
//!
//! Builds a homogeneous 3-board fleet, scripts a `BoardDegrade` that
//! swaps board 0 to the GPU-masked profile mid-trace (residents the
//! weaker profile still admits stay put, re-priced in place), a
//! `BoardRecover` that restores the healthy hardware, and a flap on
//! board 1 whose rejoin preloads the archived evaluation-cache segment
//! matching its fingerprint. Replayed twice — degrade-in-place vs
//! evacuate-everything-on-degrade — to show what staying put is worth.
//!
//! Run with:
//! ```sh
//! cargo run --release --example chaos_fleet
//! ```

use omniboost_hw::AnalyticModel;
use omniboost_models::JobEvent;
use omniboost_orchestrator::{
    ArrivalProcess, ArrivalTrace, BoardProfile, FleetEvent, FleetScript, FleetSpec,
    FleetTraceEvent, OnlineConfig, OrchestratorConfig, OrchestratorReport, OrchestratorSim,
    RebalanceConfig, TraceConfig,
};
use omniboost_serve::SearchBudget;

const HORIZON_MS: u64 = 45_000;

fn chaos_script() -> FleetScript {
    FleetScript::new(vec![
        // Board 0 browns out: GPU masked, concurrency cap tightens.
        FleetTraceEvent {
            at_ms: 12_000,
            event: FleetEvent::BoardDegrade {
                board: 0,
                profile: 1,
            },
        },
        // Board 1 flaps: hard failure, same profile rejoins 4 s later
        // and warm-boots from the archived cache segment.
        FleetTraceEvent {
            at_ms: 20_000,
            event: FleetEvent::BoardFail { board: 1 },
        },
        FleetTraceEvent {
            at_ms: 24_000,
            event: FleetEvent::BoardJoin { profile: 0 },
        },
        // Board 0's healthy hardware comes back.
        FleetTraceEvent {
            at_ms: 32_000,
            event: FleetEvent::BoardRecover { board: 0 },
        },
    ])
}

fn orchestrate(trace: &ArrivalTrace, degrade_evacuates_all: bool) -> OrchestratorReport {
    let config = OrchestratorConfig {
        online: OnlineConfig {
            cold_budget: SearchBudget::with_iterations(300),
            warm_budget: SearchBudget::with_iterations(100),
            ..OnlineConfig::default()
        },
        rebalance: Some(RebalanceConfig::default()),
        degrade_evacuates_all,
        ..OrchestratorConfig::warm()
    };
    let mut sim = OrchestratorSim::new(
        FleetSpec::homogeneous(3, BoardProfile::hikey970()),
        config,
        AnalyticModel::new,
    );
    sim.run(trace, &chaos_script(), HORIZON_MS)
}

fn print_story(report: &OrchestratorReport) {
    for tick in &report.ticks {
        for fe in &tick.fleet_events {
            let what = match fe.event {
                FleetEvent::BoardFail { board } => format!("board {board} FAILED"),
                FleetEvent::BoardDrain { board } => format!("board {board} draining"),
                FleetEvent::BoardJoin { .. } => {
                    format!("board rejoined as slot {}", fe.slot.unwrap_or(usize::MAX))
                }
                FleetEvent::BoardDegrade { board, .. } => {
                    format!("board {board} DEGRADED in place (GPU down)")
                }
                FleetEvent::BoardRecover { board } => format!("board {board} recovered"),
            };
            println!(
                "  t={:>6}ms  ! {what} — {} evacuated ({} re-placed, {} queued)",
                tick.at_ms,
                fe.evacuated.len(),
                fe.relocated,
                fe.queued
            );
        }
        for e in &tick.events {
            match e {
                JobEvent::Arrive(j) => println!(
                    "  t={:>6}ms  + job {} ({}, tenant {})",
                    tick.at_ms, j.id, j.model, j.tenant
                ),
                JobEvent::Depart { job_id } => {
                    println!("  t={:>6}ms  - job {job_id}", tick.at_ms)
                }
            }
        }
        for mv in &tick.rebalances {
            println!(
                "  t={:>6}ms  ~ rebalance: job {} board {} -> {} (+{:.1} inf/s for {} layers)",
                tick.at_ms, mv.job_id, mv.from, mv.to, mv.gain_tps, mv.migrated_layers
            );
        }
    }
}

fn print_summary(name: &str, report: &OrchestratorReport) {
    let s = &report.summary;
    println!("--- {name} ---");
    println!(
        "  {} degrades / {} recovers / {} failures / {} joins; {} evacuated \
         ({} by degrade), {} lost",
        s.board_degrades,
        s.board_recovers,
        s.board_failures,
        s.board_joins,
        s.evacuated_jobs,
        s.degrade_evictions,
        s.lost_jobs,
    );
    println!(
        "  warm reboots: {} boards preloaded {} archived cache entries",
        s.warm_boots, s.warm_boot_entries,
    );
    println!(
        "  fleet throughput {:.2} inf/s (time-weighted), evacuation wait mean {:.0} ms",
        s.mean_aggregate_tps, s.evacuation_wait.mean_ms,
    );
}

fn main() {
    // A busy fleet: boards sit near their admission caps when the
    // degrade lands, so evacuation headroom is scarce — the regime the
    // in-place policy is built for.
    let trace = ArrivalTrace::generate(
        ArrivalProcess::Poisson { rate_per_s: 1.4 },
        &TraceConfig {
            horizon_ms: HORIZON_MS,
            mean_lifetime_ms: 30_000.0,
            ..TraceConfig::default()
        },
        11,
    );
    println!(
        "trace: {} events ({} arrivals) over {}s; degrade @12s, flap @20s->24s, recover @32s\n",
        trace.len(),
        trace.arrivals(),
        HORIZON_MS / 1000,
    );

    let in_place = orchestrate(&trace, false);
    let evac_all = orchestrate(&trace, true);

    println!("chaos event story (degrade-in-place):");
    print_story(&in_place);
    println!();
    print_summary("degrade in place (default)", &in_place);
    print_summary("evacuate everything on degrade", &evac_all);

    assert_eq!(in_place.summary.lost_jobs, 0, "chaos never loses jobs");
    assert_eq!(evac_all.summary.lost_jobs, 0);
    assert!(
        in_place.summary.warm_boots > 0,
        "the flap rejoin warm-boots from the archive"
    );
    println!(
        "\ndegrade-in-place served {:+.1}% aggregate throughput vs evacuate-always",
        (in_place.summary.mean_aggregate_tps / evac_all.summary.mean_aggregate_tps - 1.0) * 100.0,
    );
}
