//! RPC daemon walkthrough: boot the network-facing serving daemon on
//! loopback, drive it with a client, drain it, and shut it down
//! gracefully.
//!
//! The daemon is the wall-clock face of the same `ServingEngine` the
//! sims replay traces through: `submit`/`depart` requests tick the
//! engine, `/metrics` and `/v1/summary` snapshot the run without
//! disturbing it, `drain` closes the admission gate while residents
//! keep serving, and `shutdown` finishes the run — archiving the
//! evaluation cache per board fingerprint — and answers with the run's
//! determinism digest. A second boot against the same cache path then
//! reports its warm preloads.
//!
//! Run with:
//! ```sh
//! cargo run --release --example rpc_daemon
//! ```

use omniboost_hw::{AnalyticModel, Board};
use omniboost_models::ModelId;
use omniboost_rpc::api::{DepartRequest, ShutdownRequest, SubmitRequest};
use omniboost_rpc::client::{ClientConfig, RpcClient};
use omniboost_rpc::servers::{RpcServer, ServerConfig};
use omniboost_serve::{OnlineConfig, SearchBudget, ServingConfig};

const BOARDS: usize = 2;

fn config(cache: &std::path::Path) -> ServingConfig {
    ServingConfig {
        online: OnlineConfig {
            cold_budget: SearchBudget::with_iterations(120),
            warm_budget: SearchBudget::with_iterations(48),
            ..OnlineConfig::default()
        },
        cache_path: Some(cache.to_path_buf()),
        ..ServingConfig::warm()
    }
}

fn boot(cache: &std::path::Path) -> (RpcServer<AnalyticModel>, RpcClient) {
    let server = RpcServer::start(
        ServerConfig::default(),
        vec![Board::hikey970(); BOARDS],
        config(cache),
        AnalyticModel::new,
    )
    .expect("bind loopback");
    println!("daemon up on http://{}", server.addr());
    let client =
        RpcClient::connect(ClientConfig::from_env(server.addr().to_string())).expect("dial");
    (server, client)
}

fn main() {
    let cache = std::env::temp_dir().join("omniboost-rpc-example-cache.bin");
    let _ = std::fs::remove_file(&cache);

    let (server, mut client) = boot(&cache);

    // A small workload: four models in, one out.
    for model in [
        ModelId::AlexNet,
        ModelId::MobileNet,
        ModelId::ResNet50,
        ModelId::InceptionV3,
    ] {
        let reply = client
            .submit(&SubmitRequest::simple(model))
            .expect("submit");
        println!(
            "submit {model:<12} -> {} (id {}, board {:?}, queue {})",
            reply.outcome, reply.id, reply.board, reply.queue_depth
        );
    }
    let gone = client
        .depart(&DepartRequest { id: 1, at_ms: None })
        .expect("depart");
    println!("depart id {} -> known: {}", gone.id, gone.known);

    let status = client.status().expect("status");
    println!(
        "status: {} boards, {} resident, {} queued, clock {} ms",
        status.boards, status.resident_jobs, status.queue_depth, status.clock_ms
    );

    // A few counters off the flat-text exposition.
    let metrics = client.metrics().expect("metrics");
    for line in metrics.lines().filter(|l| {
        l.starts_with("omniboost_arrivals")
            || l.starts_with("omniboost_placements")
            || l.starts_with("omniboost_aggregate_tps")
    }) {
        println!("metrics: {line}");
    }

    // Drain: the gate closes, residents keep serving.
    let drained = client.drain().expect("drain");
    println!(
        "draining: {} residents still serving, {} queued",
        drained.resident_jobs, drained.queue_depth
    );
    match client.submit(&SubmitRequest::simple(ModelId::Vgg16)) {
        Err(e) if e.is_code("draining") => println!("submit while draining -> {e}"),
        other => println!("unexpected: {other:?}"),
    }

    // Graceful shutdown: run finished, caches archived, digest answered.
    let reply = client
        .shutdown(&ShutdownRequest::default())
        .expect("shutdown");
    println!(
        "shutdown: {} events, {} placements, digest {:#018x}, {} cache segment(s) archived",
        reply.events, reply.placements, reply.digest, reply.cache_archived_segments
    );
    server.join();

    // Reboot: the fresh daemon warm-loads the archived cache.
    let (server, mut client) = boot(&cache);
    let status = client.status().expect("status");
    println!(
        "rebooted daemon preloaded {} cache entries",
        status.cache_preloaded_entries
    );
    client
        .shutdown(&ShutdownRequest::default())
        .expect("shutdown");
    server.join();
    let _ = std::fs::remove_file(&cache);
}
