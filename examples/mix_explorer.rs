//! Mix explorer: run all four §V schedulers (baseline, MOSAIC, GA,
//! OmniBoost) on a workload given on the command line and print the
//! Fig. 5-style comparison table.
//!
//! Run with
//! `cargo run --release --example mix_explorer -- vgg19 resnet50 inception-v3 vgg16`
//! (model names as printed by the zoo; defaults to a heavy 4-mix).

use omniboost::baselines::{Genetic, GeneticConfig, GpuOnly, Mosaic};
use omniboost::{format_comparison, ComparisonRow, OmniBoost, OmniBoostConfig, Runtime};
use omniboost_hw::{Board, Workload};
use omniboost_models::ModelId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<ModelId> = if args.is_empty() {
        vec![
            ModelId::Vgg19,
            ModelId::ResNet50,
            ModelId::InceptionV3,
            ModelId::Vgg16,
        ]
    } else {
        args.iter().map(|a| a.parse()).collect::<Result<_, _>>()?
    };
    let workload = Workload::from_ids(ids);
    let board = Board::hikey970();
    let runtime = Runtime::new(board.clone());

    println!("exploring {workload}\n");
    let mut rows: Vec<ComparisonRow> = Vec::new();

    let base = runtime.run(&mut GpuOnly::new(), &workload)?;
    let base_t = base.report.average;
    rows.push(ComparisonRow {
        scheduler: "baseline".into(),
        average: base_t,
        normalized: 1.0,
        decision_time: base.decision_time,
    });

    let out = runtime.run(&mut Mosaic::new(), &workload)?;
    rows.push(ComparisonRow {
        scheduler: "mosaic".into(),
        average: out.report.average,
        normalized: out.report.average / base_t,
        decision_time: out.decision_time,
    });

    let out = runtime.run(
        &mut Genetic::new(GeneticConfig {
            generations: 15,
            ..GeneticConfig::default()
        }),
        &workload,
    )?;
    rows.push(ComparisonRow {
        scheduler: "ga".into(),
        average: out.report.average,
        normalized: out.report.average / base_t,
        decision_time: out.decision_time,
    });

    println!("training OmniBoost's estimator (once; reused for any mix)...");
    let (mut ob, _) = OmniBoost::design_time(&board, OmniBoostConfig::quick());
    let out = runtime.run(&mut ob, &workload)?;
    rows.push(ComparisonRow {
        scheduler: "omniboost".into(),
        average: out.report.average,
        normalized: out.report.average / base_t,
        decision_time: out.decision_time,
    });
    println!("\n{}", format_comparison(&workload.to_string(), &rows));
    println!("omniboost mapping:\n{}", out.mapping);
    Ok(())
}
