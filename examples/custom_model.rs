//! Extensibility: add a user-defined DNN to the scheduling dataset —
//! one of the paper's headline claims is that OmniBoost accommodates new
//! models with minimal effort (kernel-granular profiling, §IV-A).
//!
//! The workflow mirrors what a user of the real framework would do:
//! describe the network's layers, profile it into the embedding dataset,
//! regenerate the estimator, then schedule mixes containing it.
//!
//! Run with `cargo run --release --example custom_model`.

use omniboost::mcts::{Mcts, SchedulingEnv, SearchBudget};
use omniboost::Runtime;
use omniboost_hw::{Board, Device, Mapping, Workload};
use omniboost_models::{zoo, DnnModelBuilder, ModelId, TensorShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a custom network ("TinyDet", a detection-style
    //    backbone) with the same declarative builder the zoo uses.
    let tinydet = DnnModelBuilder::new(TensorShape::new(3, 320, 320))
        .conv("stem", 24, 3, 2, 1)
        .dw_conv("dw1", 3, 1, 1)
        .conv("pw1", 48, 1, 1, 0)
        .dw_conv("dw2", 3, 2, 1)
        .conv("pw2", 96, 1, 1, 0)
        .residual_basic("res1", 96, 1)
        .residual_basic("res2", 96, 1)
        .conv("neck", 128, 3, 2, 1)
        .global_avg_pool("gap")
        .fc("head", 80)
        .build("tinydet")?;
    println!("custom model: {tinydet}");

    let board = Board::hikey970();
    let runtime = Runtime::new(board.clone());

    // 2. Schedule a mix containing the custom model. The simulator can
    //    evaluate any described model directly; for the CNN-estimator
    //    path you would regenerate the embedding dataset with the model
    //    included (DatasetConfig over zoo + custom) — here we use the
    //    board oracle to keep the example fast.
    let workload = Workload::new(vec![
        tinydet,
        zoo::build(ModelId::MobileNet),
        zoo::build(ModelId::Vgg16),
    ]);
    let oracle = board.simulator();
    let env = SchedulingEnv::new(&workload, &oracle, 3)?;
    let result = Mcts::new(SearchBudget::with_iterations(300)).search(&env, 42);
    let mapping = env.mapping_of(&result.best_state);

    println!("\nbest mapping found:\n{mapping}");
    let ours = runtime.measure(&workload, &mapping)?;
    let baseline = runtime.measure(&workload, &Mapping::all_on(&workload, Device::Gpu))?;
    println!(
        "\nT = {:.2} inf/s vs {:.2} on the GPU-only baseline ({:.2}x)",
        ours.average,
        baseline.average,
        ours.average / baseline.average
    );
    Ok(())
}
