//! Integration tests for the batched, parallel throughput-evaluation
//! pipeline: batched-vs-scalar equivalence across the stack, determinism
//! of the root-parallel search, and the runtime decision memo.

use omniboost::mcts::{Mcts, SchedulingEnv, SearchBudget};
use omniboost::{OracleOmniBoost, Runtime};
use omniboost_hw::{AnalyticModel, Board, Device, Mapping, ThroughputModel, Workload};
use omniboost_models::ModelId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn heavy_mix() -> Workload {
    Workload::from_ids([
        ModelId::Vgg19,
        ModelId::ResNet50,
        ModelId::InceptionV3,
        ModelId::Vgg16,
    ])
}

/// The batched pipeline with `batch_size == 1` IS the scalar pipeline:
/// same RNG stream, same tree, same mapping, same reward — exactly.
#[test]
fn batch_size_one_equals_scalar_search_exactly() {
    let board = Board::hikey970();
    let w = heavy_mix();
    let ev = AnalyticModel::new(board);
    for seed in [0u64, 42, 0x0B00575] {
        // Fresh environments so the runs are independent: `evaluations`
        // counts actual evaluator queries, and a shared reward memo
        // would answer the second run for free.
        let env_s = SchedulingEnv::new(&w, &ev, 3).unwrap();
        let scalar = Mcts::new(SearchBudget::scalar(200)).search(&env_s, seed);
        let env_b = SchedulingEnv::new(&w, &ev, 3).unwrap();
        let batched =
            Mcts::new(SearchBudget::with_iterations(200).with_batch_size(1)).search(&env_b, seed);
        assert_eq!(scalar.best_reward, batched.best_reward, "seed {seed}");
        assert_eq!(scalar.evaluations, batched.evaluations);
        assert_eq!(
            env_s.mapping_of(&scalar.best_state),
            env_b.mapping_of(&batched.best_state)
        );
    }
}

/// Batching at width > 1 must not degrade search quality: across seeds,
/// the batched pipeline's best reward stays within a few percent of the
/// scalar pipeline's (virtual-loss diversification usually *helps*).
#[test]
fn batched_search_quality_tracks_scalar() {
    let board = Board::hikey970();
    let w = heavy_mix();
    let ev = AnalyticModel::new(board);
    let mut scalar_sum = 0.0f64;
    let mut batched_sum = 0.0f64;
    for seed in [7u64, 11, 42, 99, 123] {
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        scalar_sum += Mcts::new(SearchBudget::scalar(300))
            .search(&env, seed)
            .best_reward;
        batched_sum += Mcts::new(SearchBudget::with_iterations(300).with_batch_size(16))
            .search(&env, seed)
            .best_reward;
    }
    assert!(
        batched_sum >= scalar_sum * 0.9,
        "batched quality collapsed: {batched_sum} vs scalar {scalar_sum}"
    );
}

/// Root-parallel search is deterministic for a fixed seed: thread timing
/// must not leak into the result (per-root seeds are derived, the merge
/// scans in seed order).
#[test]
fn parallel_search_is_deterministic_under_fixed_seed() {
    let board = Board::hikey970();
    let w = heavy_mix();
    let ev = AnalyticModel::new(board);
    let mcts = Mcts::new(
        SearchBudget::with_iterations(240)
            .with_batch_size(8)
            .with_parallelism(4),
    );
    // Fresh env per run: the reward memo would otherwise answer the
    // second run from cache and legitimately report fewer evaluations.
    let env_a = SchedulingEnv::new(&w, &ev, 3).unwrap();
    let a = mcts.run(&env_a, 1234);
    let env_b = SchedulingEnv::new(&w, &ev, 3).unwrap();
    let b = mcts.run(&env_b, 1234);
    assert_eq!(a.best_reward, b.best_reward);
    assert_eq!(a.evaluations, b.evaluations);
    assert_eq!(a.live_terminal_rollouts, b.live_terminal_rollouts);
    assert_eq!(a.iterations, 240, "split budget must sum back to the total");
    assert_eq!(
        env_a.mapping_of(&a.best_state),
        env_b.mapping_of(&b.best_state)
    );
    // A different seed explores differently (sanity that the seed matters).
    let c = mcts.run(&env_a, 4321);
    assert!(c.best_reward > 0.0);
}

/// The environment-level reward memo answers repeated evaluations of the
/// same completed assignment without extra evaluator calls.
#[test]
fn reward_memo_dedupes_repeat_assignments() {
    let board = Board::hikey970();
    let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet]);
    let ev = AnalyticModel::new(board);
    let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
    // Build one completed (all-GPU) state and score it repeatedly.
    let mut s = env.initial();
    use omniboost::mcts::Environment;
    while !env.is_terminal(&s) {
        s = env.apply(&s, Device::Gpu.index());
    }
    let batch = vec![s.clone(), s.clone(), s.clone()];
    let r1 = env.reward_batch(&batch);
    assert!((r1[0] - r1[1]).abs() < 1e-12 && (r1[1] - r1[2]).abs() < 1e-12);
    assert_eq!(env.memo_misses(), 1, "three copies, one evaluator call");
    // Same-round duplicates are dedup hits, not memo hits — the two
    // counters answer different questions about cache effectiveness.
    assert_eq!(env.batch_dedup_hits(), 2);
    assert_eq!(env.memo_hits(), 0);
    let r2 = env.reward_batch(&[s.clone()]);
    assert_eq!(r2[0], r1[0]);
    assert_eq!(env.memo_misses(), 1);
    assert_eq!(env.memo_hits(), 1, "cross-round repeat is a true memo hit");
    assert_eq!(env.batch_dedup_hits(), 2);
    // Memoized value equals the scalar reward.
    assert!((env.reward(&s) - r1[0]).abs() < 1e-12);
}

/// End-to-end: the runtime decision memo short-circuits a repeated
/// workload for a full MCTS scheduler — the second decision costs a map
/// lookup, not a search.
#[test]
fn runtime_memo_skips_repeat_searches_end_to_end() {
    let board = Board::hikey970();
    let runtime = Runtime::new(board).with_memo();
    let w = heavy_mix();
    let mut sched = OracleOmniBoost::new(SearchBudget::with_iterations(60), 3, 42);
    let first = runtime.run(&mut sched, &w).unwrap();
    assert!(!first.memo_hit);
    let second = runtime.run(&mut sched, &w).unwrap();
    assert!(second.memo_hit);
    assert_eq!(first.mapping, second.mapping);
    assert_eq!(second.memo.hits, 1);
    assert_eq!(second.memo.misses, 1);
    assert!(
        second.decision_time <= first.decision_time,
        "memo hit should not be slower than the search it skips"
    );
}

/// The cross-decision evaluation cache: a recurring workload's second
/// decision replays the first decision's estimator queries from cache —
/// zero new evaluator work, identical result.
#[test]
fn cross_decision_cache_amortizes_recurring_traffic() {
    use omniboost::estimator::{CachedEstimator, EvalCache};
    let board = Board::hikey970();
    let w = heavy_mix();
    let ev = AnalyticModel::new(board);
    let cache = EvalCache::new(4096);
    let budget = SearchBudget::with_iterations(200).with_batch_size(16);

    let cached = CachedEstimator::new(&ev, &cache);
    let env = SchedulingEnv::new(&w, &cached, 3).unwrap();
    let first = Mcts::new(budget).run(&env, 42);
    let cold = cache.stats();
    assert!(cold.misses > 0, "cold decision must populate the cache");

    let cached = CachedEstimator::new(&ev, &cache);
    let env = SchedulingEnv::new(&w, &cached, 3).unwrap();
    let second = Mcts::new(budget).run(&env, 42);
    let warm = cache.stats();
    assert_eq!(
        warm.misses, cold.misses,
        "recurring decision must add no estimator work"
    );
    assert!(warm.hits > cold.hits);
    assert_eq!(first.best_reward, second.best_reward);
    assert_eq!(
        env.mapping_of(&first.best_state),
        env.mapping_of(&second.best_state)
    );
}

/// The tentpole acceptance bar: budget-aware playouts fill the batch on
/// the heavy mix (≥450/500 live terminals) and never return dead states.
#[test]
fn budget_aware_policy_fills_the_batch_on_heavy_mix() {
    let board = Board::hikey970();
    let w = Workload::from_ids([
        ModelId::Vgg19,
        ModelId::ResNet50,
        ModelId::InceptionV3,
        ModelId::AlexNet,
    ]);
    let ev = AnalyticModel::new(board);
    let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
    let result = Mcts::new(SearchBudget::with_iterations(500).with_batch_size(16)).search(&env, 42);
    assert!(
        result.live_terminal_rollouts >= 450,
        "live-terminal yield {}/500",
        result.live_terminal_rollouts
    );
    assert!(result.best_reward > 1.1, "must beat the GPU-only baseline");
    assert!(!result.best_state.is_dead());
}

/// Cross-model batch equivalence at the trait level, driven through the
/// same call the search makes.
#[test]
fn evaluate_batch_equals_scalar_for_both_model_families() {
    let board = Board::hikey970();
    let w = Workload::from_ids([ModelId::Vgg16, ModelId::MobileNet, ModelId::ResNet34]);
    let mut rng = StdRng::seed_from_u64(3);
    let mappings: Vec<Mapping> = (0..6).map(|_| Mapping::random(&w, 3, &mut rng)).collect();
    let analytic = AnalyticModel::new(board.clone());
    let des = board.simulator();
    for (name, batch) in [
        ("analytic", analytic.evaluate_batch(&w, &mappings)),
        ("des", des.evaluate_batch(&w, &mappings)),
    ] {
        for (m, b) in mappings.iter().zip(batch) {
            let scalar = match name {
                "analytic" => analytic.evaluate(&w, m).unwrap(),
                _ => des.evaluate(&w, m).unwrap(),
            };
            let batched = b.unwrap();
            assert!(
                (scalar.average - batched.average).abs() < 1e-9,
                "{name}: {} vs {}",
                scalar.average,
                batched.average
            );
        }
    }
}
