//! Integration test: the design-time artefact survives a round trip to
//! disk and drives identical scheduling decisions afterwards — the
//! "train once" deployment story.

use omniboost::estimator::{CnnEstimator, DatasetConfig, TrainConfig};
use omniboost::mcts::SearchBudget;
use omniboost::{OmniBoost, OmniBoostConfig};
use omniboost_hw::{Board, Scheduler, Workload};
use omniboost_models::ModelId;

#[test]
fn saved_estimator_reproduces_scheduling_decisions() {
    let board = Board::hikey970();
    let dataset = DatasetConfig {
        num_workloads: 30,
        threads: 4,
        ..DatasetConfig::default()
    }
    .generate(&board);
    let (estimator, _) = CnnEstimator::train(
        &board,
        &dataset,
        &TrainConfig {
            epochs: 6,
            ..TrainConfig::default()
        },
    );

    let dir = std::env::temp_dir().join("omniboost-persistence-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("estimator.bin");
    estimator.save(&path).unwrap();
    let restored = CnnEstimator::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let config = OmniBoostConfig {
        budget: SearchBudget::with_iterations(80),
        ..OmniBoostConfig::quick()
    };
    let mut a = OmniBoost::from_estimator(estimator, config.clone());
    let mut b = OmniBoost::from_estimator(restored, config);

    let workload = Workload::from_ids([ModelId::Vgg19, ModelId::MobileNet, ModelId::ResNet50]);
    let ma = a.decide(&board, &workload).unwrap();
    let mb = b.decide(&board, &workload).unwrap();
    assert_eq!(ma, mb, "loaded estimator must reproduce the decision");
}
