//! Integration tests for the named application scenarios (§I's motivating
//! application classes) across the full scheduling stack.

use omniboost::baselines::{ConvToGpu, GpuOnly};
use omniboost::mcts::SearchBudget;
use omniboost::{OracleOmniBoost, Runtime};
use omniboost_hw::{Board, Workload};
use omniboost_models::Scenario;

/// Every scenario preset is admissible and schedulable by both a static
/// heuristic and the guided search, and the guided mapping is never
/// worse than the static ones.
#[test]
fn all_scenarios_schedule_end_to_end() {
    let board = Board::hikey970();
    let runtime = Runtime::new(board.clone());
    for scenario in Scenario::ALL {
        let workload: Workload = scenario.models().into_iter().collect();
        board.admit(&workload).expect("scenario must be admissible");

        let base = runtime
            .run(&mut GpuOnly::new(), &workload)
            .unwrap_or_else(|e| panic!("{scenario}: baseline failed: {e}"))
            .report
            .average;
        let conv = runtime
            .run(&mut ConvToGpu::new(), &workload)
            .expect("conv-to-gpu")
            .report
            .average;
        let mut guided = OracleOmniBoost::new(SearchBudget::with_iterations(120), 3, 9);
        let smart = runtime
            .run(&mut guided, &workload)
            .expect("guided")
            .report
            .average;
        assert!(base > 0.0 && conv > 0.0 && smart > 0.0);
        assert!(
            smart * 1.05 >= base.max(conv),
            "{scenario}: guided {smart} worse than static ({base}, {conv})"
        );
    }
}

/// The surveillance hub runs at the board's concurrency ceiling; adding
/// one more network anywhere must be rejected.
#[test]
fn surveillance_hub_sits_at_the_admission_limit() {
    let board = Board::hikey970();
    let mut models = Scenario::SurveillanceHub.models();
    assert_eq!(models.len(), board.max_concurrent_dnns);
    models.push(omniboost_models::ModelId::SqueezeNet);
    let overloaded: Workload = models.into_iter().collect();
    assert!(board.admit(&overloaded).is_err());
}
