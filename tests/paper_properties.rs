//! Integration tests asserting the *paper-level* properties the
//! reproduction must exhibit — the qualitative shapes of §II and §V.

use omniboost::baselines::RandomSplit;
use omniboost::Runtime;
use omniboost_hw::{Board, Device, Mapping, Scheduler, Workload};
use omniboost_models::{zoo, ModelId};

/// §II / Fig. 1: for the motivational 4-DNN workload, only a minority of
/// random splits beat the all-on-GPU baseline, but some clearly do.
#[test]
fn fig1_shape_minority_of_random_splits_beat_baseline() {
    let board = Board::hikey970();
    let runtime = Runtime::new(board.clone());
    let workload = Workload::from_ids([
        ModelId::AlexNet,
        ModelId::MobileNet,
        ModelId::Vgg19,
        ModelId::SqueezeNet,
    ]);
    let base = runtime
        .measure(&workload, &Mapping::all_on(&workload, Device::Gpu))
        .unwrap()
        .average;

    // The paper's Fig. 1 draws 200 random set-ups; smaller samples make
    // the minority property flaky (the true beat rate is ~35%).
    let mut splitter = RandomSplit::new(0xF1);
    let mut above = 0usize;
    let mut best: f64 = 0.0;
    let n = 200;
    for _ in 0..n {
        let m = splitter.decide(&board, &workload).unwrap();
        let norm = runtime.measure(&workload, &m).unwrap().average / base;
        if norm > 1.0 {
            above += 1;
        }
        best = best.max(norm);
    }
    assert!(
        above * 2 < n,
        "a majority ({above}/{n}) of random splits beat the baseline; Fig. 1 shows a minority"
    );
    assert!(above > 0, "some random splits must beat the baseline");
    assert!(
        best > 1.2,
        "the best random split should gain noticeably (paper: +60%), got {best:.2}x"
    );
}

/// §V-A / Fig. 5b regime: stacking a heavy 4-DNN mix on the GPU
/// overcommits its working set and collapses well below fair sharing.
#[test]
fn fig5b_regime_heavy_gpu_stacking_collapses() {
    let board = Board::hikey970();
    let runtime = Runtime::new(board.clone());
    let solo = Workload::from_ids([ModelId::Vgg19]);
    let solo_t = runtime
        .measure(&solo, &Mapping::all_on(&solo, Device::Gpu))
        .unwrap()
        .per_dnn[0];

    let heavy = Workload::from_ids([
        ModelId::Vgg19,
        ModelId::ResNet50,
        ModelId::InceptionV3,
        ModelId::Vgg16,
    ]);
    let stacked = runtime
        .measure(&heavy, &Mapping::all_on(&heavy, Device::Gpu))
        .unwrap()
        .per_dnn[0];
    // Fair sharing alone would give solo/4; thrash must push well below.
    assert!(
        stacked < solo_t / 6.0,
        "vgg19 stacked {stacked} vs solo {solo_t}: no saturation visible"
    );
}

/// Fig. 1 vs Fig. 5b distinction: the lighter motivational mix does NOT
/// collapse when stacked (its working set fits), so the baseline there
/// is near fair sharing.
#[test]
fn light_mix_gpu_stacking_is_near_fair_sharing() {
    let board = Board::hikey970();
    let runtime = Runtime::new(board.clone());
    let solo = Workload::from_ids([ModelId::AlexNet]);
    let solo_t = runtime
        .measure(&solo, &Mapping::all_on(&solo, Device::Gpu))
        .unwrap()
        .per_dnn[0];
    let light = Workload::from_ids([
        ModelId::AlexNet,
        ModelId::MobileNet,
        ModelId::Vgg19,
        ModelId::SqueezeNet,
    ]);
    let stacked = runtime
        .measure(&light, &Mapping::all_on(&light, Device::Gpu))
        .unwrap()
        .per_dnn[0];
    assert!(
        stacked > solo_t / 6.0,
        "alexnet stacked {stacked} vs solo {solo_t}: light mix should not thrash"
    );
}

/// §V: per-device single-DNN performance ordering GPU > big > LITTLE for
/// every zoo model (the premise of the common scheduling approach).
#[test]
fn gpu_dominates_for_solo_inference_across_the_zoo() {
    let board = Board::hikey970();
    let runtime = Runtime::new(board);
    for id in ModelId::ALL {
        let w = Workload::new(vec![zoo::build(id)]);
        let t = |d: Device| {
            runtime
                .measure(&w, &Mapping::all_on(&w, d))
                .unwrap()
                .average
        };
        let (g, b, l) = (t(Device::Gpu), t(Device::BigCpu), t(Device::LittleCpu));
        assert!(g > b && b > l, "{id}: gpu {g}, big {b}, little {l}");
    }
}

/// The design-space combinatorics quoted in §II.
#[test]
fn design_space_size_matches_paper() {
    let workload = Workload::from_ids([
        ModelId::AlexNet,
        ModelId::MobileNet,
        ModelId::Vgg19,
        ModelId::SqueezeNet,
    ]);
    let n = workload.total_layers() as u64;
    assert_eq!(n, 84);
    assert_eq!(n * (n - 1) * (n - 2) / 6, 95_284); // "≈ 95,000"
}

/// Pipelining a single heavy DNN across GPU + big CPU beats running it
/// on the big CPU alone (inter-layer parallelism, §I) — the premise that
/// makes layer splitting worthwhile at all.
#[test]
fn pipelining_exploits_interlayer_parallelism() {
    let board = Board::hikey970();
    let runtime = Runtime::new(board);
    let w = Workload::from_ids([ModelId::Vgg19]);
    let mut split = Mapping::all_on(&w, Device::Gpu);
    for l in 12..24 {
        split.assign(0, l, Device::BigCpu);
    }
    let piped = runtime.measure(&w, &split).unwrap().average;
    let big_only = runtime
        .measure(&w, &Mapping::all_on(&w, Device::BigCpu))
        .unwrap()
        .average;
    assert!(piped > big_only);
}
