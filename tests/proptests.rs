//! Property-based tests (proptest) over the core data structures and
//! cross-crate invariants.

use omniboost_estimator::{EmbeddingTensor, MaskTensor};
use omniboost_hw::{AnalyticModel, Board, Device, Mapping, NoiseModel, ThroughputModel, Workload};
use omniboost_models::{zoo, ModelId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_mix() -> impl Strategy<Value = Vec<ModelId>> {
    // 1..=4 distinct models drawn from the zoo.
    proptest::sample::subsequence(ModelId::ALL.to_vec(), 1..=4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random mappings always partition every DNN's layers into
    /// contiguous, non-overlapping, device-alternating segments.
    #[test]
    fn mapping_segments_partition_layers(mix in arb_mix(), seed in 0u64..1000) {
        let workload = Workload::from_ids(mix);
        let mut rng = StdRng::seed_from_u64(seed);
        let mapping = Mapping::random(&workload, 3, &mut rng);
        mapping.validate(&workload).unwrap();
        for (di, dnn) in workload.dnns().iter().enumerate() {
            let segs = mapping.segments(di);
            prop_assert!(segs.len() <= 3);
            prop_assert_eq!(segs[0].start, 0);
            prop_assert_eq!(segs.last().unwrap().end, dnn.num_layers());
            for w in segs.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
                prop_assert_ne!(w[0].device, w[1].device);
            }
            let covered: usize = segs.iter().map(|s| s.len()).sum();
            prop_assert_eq!(covered, dnn.num_layers());
        }
    }

    /// The DES and the analytic solver agree on feasibility and sign:
    /// both produce finite positive throughput for every valid mapping,
    /// and their averages agree within an order of magnitude.
    #[test]
    fn des_and_analytic_agree_roughly(mix in arb_mix(), seed in 0u64..500) {
        let board = Board::hikey970();
        let workload = Workload::from_ids(mix);
        let mut rng = StdRng::seed_from_u64(seed);
        let mapping = Mapping::random(&workload, 3, &mut rng);
        let des = board.simulator().evaluate(&workload, &mapping).unwrap();
        let ana = AnalyticModel::new(board).evaluate(&workload, &mapping).unwrap();
        prop_assert!(des.average > 0.0 && des.average.is_finite());
        prop_assert!(ana.average > 0.0 && ana.average.is_finite());
        let ratio = des.average / ana.average;
        prop_assert!((0.1..10.0).contains(&ratio), "des {} vs analytic {}", des.average, ana.average);
    }

    /// Mask totals equal the workload's layer count and masked inputs are
    /// bounded by mask count × embedding value.
    #[test]
    fn mask_accounts_for_every_layer(mix in arb_mix(), seed in 0u64..500) {
        let board = Board::hikey970();
        let embedding = EmbeddingTensor::profile(&board, &zoo::build_all(), NoiseModel::none());
        let workload = Workload::from_ids(mix);
        let mut rng = StdRng::seed_from_u64(seed);
        let mapping = Mapping::random(&workload, 3, &mut rng);
        let mask = MaskTensor::build(&embedding, &workload, &mapping).unwrap();
        prop_assert_eq!(mask.total_assignments() as usize, workload.total_layers());
        let input = mask.apply(&embedding);
        prop_assert!(input.data().iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    /// Throughput reports are internally consistent: average equals the
    /// mean of per-DNN rates, and per-device totals are non-negative.
    #[test]
    fn throughput_report_consistency(mix in arb_mix(), seed in 0u64..500) {
        let board = Board::hikey970();
        let workload = Workload::from_ids(mix);
        let mut rng = StdRng::seed_from_u64(seed);
        let mapping = Mapping::random(&workload, 3, &mut rng);
        let r = board.simulator().evaluate(&workload, &mapping).unwrap();
        let mean = r.per_dnn.iter().sum::<f64>() / r.per_dnn.len() as f64;
        prop_assert!((r.average - mean).abs() < 1e-9);
        prop_assert!(r.per_device.iter().all(|v| *v >= 0.0));
        // Devices hosting no layer report zero completions.
        for d in Device::ALL {
            if mapping.layers_on(d) == 0 {
                prop_assert_eq!(r.per_device[d.index()], 0.0);
            }
        }
    }

    /// Offloading work from an overcommitted GPU never makes the board
    /// model produce NaN/negative values, across arbitrary split points.
    #[test]
    fn arbitrary_single_splits_stay_finite(cut in 1usize..23, dev in 0usize..3) {
        let board = Board::hikey970();
        let workload = Workload::from_ids([ModelId::Vgg19]);
        let mut mapping = Mapping::all_on(&workload, Device::Gpu);
        let device = Device::from_index(dev).unwrap();
        for l in cut..24 {
            mapping.assign(0, l, device);
        }
        let r = board.simulator().evaluate(&workload, &mapping).unwrap();
        prop_assert!(r.average.is_finite() && r.average > 0.0);
    }
}
