//! Integration tests spanning every crate: the full design-time →
//! run-time → measurement pipeline of OmniBoost and all baselines.

use omniboost::baselines::{Genetic, GeneticConfig, GpuOnly, Mosaic, MosaicConfig, RandomSplit};
use omniboost::mcts::SearchBudget;
use omniboost::{OmniBoost, OmniBoostConfig, OracleOmniBoost, Runtime};
use omniboost_hw::{Board, Device, HwError, Mapping, Scheduler, Workload};
use omniboost_models::ModelId;

fn heavy_mix() -> Workload {
    Workload::from_ids([
        ModelId::Vgg19,
        ModelId::ResNet50,
        ModelId::InceptionV3,
        ModelId::Vgg16,
    ])
}

/// Every scheduler produces a valid, stage-cap-respecting mapping and a
/// positive measured throughput.
#[test]
fn all_schedulers_produce_valid_measurable_mappings() {
    let board = Board::hikey970();
    let runtime = Runtime::new(board.clone());
    let workload = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet, ModelId::SqueezeNet]);

    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(GpuOnly::new()),
        Box::new(RandomSplit::new(3)),
        Box::new(Mosaic::with_config(MosaicConfig {
            training_samples: 600,
            ..MosaicConfig::default()
        })),
        Box::new(Genetic::new(GeneticConfig {
            population: 8,
            generations: 3,
            ..GeneticConfig::default()
        })),
        Box::new(OracleOmniBoost::new(
            SearchBudget::with_iterations(60),
            3,
            1,
        )),
    ];
    for s in schedulers.iter_mut() {
        let outcome = runtime.run(s.as_mut(), &workload).expect("run succeeds");
        outcome.mapping.validate(&workload).expect("valid mapping");
        assert!(
            outcome.mapping.max_stages() <= 3,
            "{} violated the stage cap",
            s.name()
        );
        assert!(
            outcome.report.average > 0.0,
            "{} produced zero throughput",
            s.name()
        );
    }
}

/// The full OmniBoost flow: train once, schedule several different mixes
/// without retraining, and beat the baseline on a heavy mix.
#[test]
fn omniboost_trains_once_and_beats_baseline_on_heavy_mix() {
    let board = Board::hikey970();
    let runtime = Runtime::new(board.clone());
    let (mut omniboost, history) = OmniBoost::design_time(&board, OmniBoostConfig::quick());
    assert!(
        history.final_train_loss() < history.train[0],
        "training never improved: {:?}",
        history.train
    );

    let heavy = heavy_mix();
    let ours = runtime.run(&mut omniboost, &heavy).expect("omniboost run");
    let base = runtime
        .run(&mut GpuOnly::new(), &heavy)
        .expect("baseline run");
    // The quick config trains a reduced estimator (60 workloads, 20
    // epochs); it must still clearly beat the saturated baseline. The
    // full configuration reaches ×4.6 on this mix (see EXPERIMENTS.md).
    assert!(
        ours.report.average > base.report.average * 1.2,
        "omniboost {} vs baseline {}",
        ours.report.average,
        base.report.average
    );

    // Re-query with different mixes, no retraining.
    for ids in [
        vec![ModelId::MobileNet, ModelId::SqueezeNet],
        vec![ModelId::ResNet34, ModelId::AlexNet, ModelId::Vgg13],
    ] {
        let w = Workload::from_ids(ids);
        let out = runtime.run(&mut omniboost, &w).expect("requery");
        out.mapping.validate(&w).expect("valid mapping");
    }
}

/// The board refuses six concurrent DNNs through every entry point,
/// mirroring §V-A's unresponsiveness observation.
#[test]
fn six_concurrent_dnns_are_rejected_everywhere() {
    let board = Board::hikey970();
    let runtime = Runtime::new(board.clone());
    let w = Workload::from_ids(vec![ModelId::SqueezeNet; 6]);
    for result in [
        runtime.run(&mut GpuOnly::new(), &w).map(|_| ()),
        runtime
            .measure(&w, &Mapping::all_on(&w, Device::Gpu))
            .map(|_| ()),
        board.admit(&w),
    ] {
        assert!(matches!(
            result,
            Err(HwError::Unresponsive { dnns: 6, max: 5 })
        ));
    }
}

/// The GA and the oracle-guided MCTS explore the same space with the same
/// evaluator; both must land within a sane band of each other on a small
/// problem (neither should be pathologically bad).
#[test]
fn ga_and_oracle_mcts_land_in_the_same_band() {
    let board = Board::hikey970();
    let runtime = Runtime::new(board.clone());
    let workload = heavy_mix();

    let mut ga = Genetic::new(GeneticConfig {
        population: 12,
        generations: 8,
        ..GeneticConfig::default()
    });
    let ga_t = runtime
        .run(&mut ga, &workload)
        .expect("ga run")
        .report
        .average;
    let mut mcts = OracleOmniBoost::new(SearchBudget::with_iterations(250), 3, 3);
    let mcts_t = runtime
        .run(&mut mcts, &workload)
        .expect("mcts run")
        .report
        .average;
    let ratio = mcts_t / ga_t;
    assert!(
        (0.5..2.5).contains(&ratio),
        "mcts {mcts_t} vs ga {ga_t} diverge unreasonably"
    );
}

/// Decision latency ordering of §V-B: baseline fastest, then MOSAIC
/// queries, with GA slowest at matched evaluation budgets.
#[test]
fn decision_latency_ordering_matches_paper() {
    let board = Board::hikey970();
    let runtime = Runtime::new(board.clone());
    let workload = heavy_mix();

    let base = runtime
        .run(&mut GpuOnly::new(), &workload)
        .expect("baseline");
    let mut mosaic = Mosaic::with_config(MosaicConfig {
        training_samples: 600,
        ..MosaicConfig::default()
    });
    mosaic.train(&board);
    let mos = runtime.run(&mut mosaic, &workload).expect("mosaic");
    let mut ga = Genetic::new(GeneticConfig {
        population: 16,
        generations: 12,
        ..GeneticConfig::default()
    });
    let ga_out = runtime.run(&mut ga, &workload).expect("ga");

    assert!(base.decision_time < mos.decision_time);
    assert!(
        mos.decision_time < ga_out.decision_time,
        "mosaic {:?} should be faster than ga {:?}",
        mos.decision_time,
        ga_out.decision_time
    );
}
