//! Offline stand-in for the `bytes` crate subset used by the estimator's
//! binary persistence: [`Bytes`] (cheaply cloneable immutable buffer with
//! a cursor), [`BytesMut`] (growable write buffer), and the [`Buf`] /
//! [`BufMut`] accessor traits for little-endian scalar I/O.

#![forbid(unsafe_code)]

use std::sync::Arc;

/// Read-side accessors over a byte cursor.
///
/// Like the real crate, the `get_*` methods advance the cursor and panic
/// when fewer bytes remain than requested — callers are expected to check
/// [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consumes `len` bytes, returning them as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_to_bytes(1).as_slice()[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.copy_to_bytes(2).as_slice().try_into().unwrap())
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_to_bytes(4).as_slice().try_into().unwrap())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_to_bytes(8).as_slice().try_into().unwrap())
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write-side accessors appending to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Immutable, cheaply cloneable byte buffer with a read cursor.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Length of the unread region.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// The unread region as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the unread region into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-range view sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds [`Bytes::len`].
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "buffer underflow");
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

/// Growable write buffer, frozen into [`Bytes`] when complete.
#[derive(Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u16_le(7);
        w.put_u8(3);
        w.put_u64_le(u64::MAX - 1);
        w.put_f32_le(1.5);
        w.put_f64_le(-2.25);
        w.put_slice(b"abc");
        let mut r = w.freeze();
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.copy_to_bytes(3).to_vec(), b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(s.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u32_le();
    }
}
