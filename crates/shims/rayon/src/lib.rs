//! Offline stand-in for the slice of rayon this workspace uses:
//! `data.par_iter().map(f).collect::<Vec<_>>()` plus [`join`] and
//! [`current_num_threads`]. Work is chunked across scoped `std::thread`s
//! (one chunk per available core, capped at the item count); results are
//! returned in input order, so the transformation is semantically
//! identical to the sequential `iter().map().collect()` — just faster on
//! multi-core hosts. On a single-core host everything degrades to an
//! in-place sequential loop with no thread overhead.

#![forbid(unsafe_code)]

/// Number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// The user-facing iterator traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter, ParIterMut, ParMap, ParMapMut,
    };
}

/// Parallel iterator machinery (slice → map → ordered collect).
pub mod iter {
    use crate::current_num_threads;

    /// Borrowing conversion into a parallel iterator (`.par_iter()`).
    pub trait IntoParallelRefIterator<'data> {
        /// Item yielded by reference.
        type Item: 'data + Sync;

        /// A parallel iterator over `&self`.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// Parallel iterator over a slice.
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Maps each item through `f` (applied on worker threads).
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
        {
            ParMap {
                items: self.items,
                f,
            }
        }
    }

    /// A mapped parallel iterator, ready to collect in input order.
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T, R, F> ParMap<'data, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        /// Evaluates the map across worker threads, preserving order.
        pub fn collect<C: From<Vec<R>>>(self) -> C {
            let n = self.items.len();
            let threads = current_num_threads().min(n.max(1));
            if threads <= 1 || n <= 1 {
                return self.items.iter().map(&self.f).collect::<Vec<R>>().into();
            }
            let chunk = n.div_ceil(threads);
            let f = &self.f;
            let mut out: Vec<R> = Vec::with_capacity(n);
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .items
                    .chunks(chunk)
                    .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                    .collect();
                for h in handles {
                    out.extend(h.join().expect("rayon worker panicked"));
                }
            });
            out.into()
        }
    }

    /// Mutable borrowing conversion (`.par_iter_mut()`), mirroring
    /// rayon's `IntoParallelRefMutIterator` for the slice/Vec cases this
    /// workspace uses (per-board fleet scheduling mutates each board's
    /// scheduler state concurrently).
    pub trait IntoParallelRefMutIterator<'data> {
        /// Item yielded by mutable reference.
        type Item: 'data + Send;

        /// A parallel iterator over `&mut self`.
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, Self::Item>;
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = T;

        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut { items: self }
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = T;

        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut { items: self }
        }
    }

    /// Parallel iterator over mutable slice elements.
    pub struct ParIterMut<'data, T> {
        items: &'data mut [T],
    }

    impl<'data, T: Send> ParIterMut<'data, T> {
        /// Maps each item through `f` (applied on worker threads).
        pub fn map<R, F>(self, f: F) -> ParMapMut<'data, T, F>
        where
            F: Fn(&'data mut T) -> R + Sync,
            R: Send,
        {
            ParMapMut {
                items: self.items,
                f,
            }
        }

        /// Runs `f` on every item across worker threads.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'data mut T) + Sync,
        {
            self.map(f).collect::<Vec<()>>();
        }
    }

    /// A mapped mutable parallel iterator, ready to collect in input
    /// order.
    pub struct ParMapMut<'data, T, F> {
        items: &'data mut [T],
        f: F,
    }

    impl<'data, T, R, F> ParMapMut<'data, T, F>
    where
        T: Send,
        R: Send,
        F: Fn(&'data mut T) -> R + Sync,
    {
        /// Evaluates the map across worker threads, preserving order.
        pub fn collect<C: From<Vec<R>>>(self) -> C {
            let n = self.items.len();
            let threads = current_num_threads().min(n.max(1));
            if threads <= 1 || n <= 1 {
                return self
                    .items
                    .iter_mut()
                    .map(&self.f)
                    .collect::<Vec<R>>()
                    .into();
            }
            let chunk = n.div_ceil(threads);
            let f = &self.f;
            let mut out: Vec<R> = Vec::with_capacity(n);
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .items
                    .chunks_mut(chunk)
                    .map(|c| s.spawn(move || c.iter_mut().map(f).collect::<Vec<R>>()))
                    .collect();
                for h in handles {
                    out.extend(h.join().expect("rayon worker panicked"));
                }
            });
            out.into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let data: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = data.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_input_is_fine() {
        let data: Vec<u8> = vec![];
        let out: Vec<u8> = data.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn par_iter_mut_mutates_in_place_and_preserves_order() {
        let mut data: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = data
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x * 10
            })
            .collect();
        assert_eq!(data, (1..=100).collect::<Vec<_>>());
        assert_eq!(out, (1..=100).map(|x| x * 10).collect::<Vec<_>>());
        let mut empty: Vec<u64> = vec![];
        empty.par_iter_mut().for_each(|x| *x += 1);
        assert!(empty.is_empty());
    }
}
