//! Offline stand-in for the `parking_lot` synchronization primitives this
//! workspace uses: a [`Mutex`] whose `lock()` returns the guard directly
//! (no `Result`), implemented over `std::sync::Mutex`. Poisoning is
//! transparently ignored, matching parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]

use std::fmt;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Mutual exclusion with parking_lot's panic-free `lock()` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike
    /// `std::sync::Mutex`, returns the guard directly; a poisoned lock
    /// (panicking while held) is recovered rather than propagated.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
