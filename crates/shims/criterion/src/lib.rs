//! Offline stand-in for the slice of `criterion` this workspace's
//! benches use: [`Criterion`], benchmark groups, `bench_function` /
//! `bench_with_input`, [`BenchmarkId`] and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's statistical engine, each benchmark runs a short
//! warm-up followed by `sample_size` timed iterations and prints
//! `min / mean / max` wall-clock per iteration. That is enough for the
//! relative comparisons the repo's benches make (scalar vs batched
//! pipelines, scheduler vs scheduler); absolute numbers carry no
//! statistical confidence intervals.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's historical path.
pub use std::hint::black_box;

/// Identifier for a parameterized benchmark, rendered as `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine`, once per sample, after one untimed warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_one(full_id: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        target_samples: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{full_id:<48} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "{full_id:<48} [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets timed iterations per benchmark (criterion's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark context passed to `criterion_group!` functions.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    /// Harness defaults (10 samples per benchmark).
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Alias for [`Criterion::default`] (kept for existing callers).
    pub fn default_shim() -> Self {
        Self::default()
    }

    /// CLI-argument configuration hook (no-op in the shim).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size.max(1);
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        let n = self.default_sample_size.max(1);
        run_one(&id.id, n, f);
        self
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_collects_samples() {
        let mut c = Criterion::default_shim();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default_shim();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &p| {
            b.iter(|| assert_eq!(p, 7));
        });
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("mcts", 50).id, "mcts/50");
        assert_eq!(BenchmarkId::from_parameter(3).id, "3");
    }
}
