//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses: a seedable deterministic generator ([`rngs::StdRng`]), the
//! [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, uniform range sampling and
//! Fisher–Yates shuffling.
//!
//! The build environment has no access to crates.io, so this shim keeps
//! the workspace self-contained. The generator is xoshiro256++ seeded via
//! SplitMix64 — statistically solid and deterministic per seed, which is
//! all the reproduction needs (its tests assert determinism and
//! statistical behaviour, never a specific stream). **Streams do not
//! match the real `rand` crate.**

#![forbid(unsafe_code)]

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64, i32, i64);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform bits in [0, 1); result stays strictly below
                // `end` (clamped in case of rounding at the top).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                let v = v as $t;
                if v >= self.end {
                    // Floating-point rounding pushed us onto the open end.
                    <$t>::from_bits(self.end.to_bits() - 1)
                } else {
                    v
                }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level convenience sampling, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "p must be a probability");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (not the real `rand` StdRng;
    /// streams differ, determinism and quality hold).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            use super::SampleRange;
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            use super::SampleRange;
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input intact");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(4);
        let dynref: &mut dyn RngCore = &mut rng;
        let v = dynref.next_u32();
        let _ = v;
    }
}
