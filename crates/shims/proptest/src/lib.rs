//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides the [`proptest!`] macro, the [`Strategy`] trait with
//! `prop_map`, range/collection/sample strategies and the `prop_assert*`
//! macros. Each test body runs `ProptestConfig::cases` times with values
//! drawn from a deterministic per-test RNG (seeded from the test name and
//! case index, so failures are reproducible). **No shrinking**: a failing
//! case reports the assertion directly — smaller-counterexample search is
//! the one feature of real proptest this shim drops.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

range_strategy!(usize, u8, u16, u32, u64, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Sampling strategies over explicit value sets.
pub mod sample {
    use super::{Rng, StdRng, Strategy};

    /// Strategy choosing one element of a vector.
    pub struct Select<T>(Vec<T>);

    /// Uniformly selects one of `options` per case.
    ///
    /// # Panics
    ///
    /// Panics at generation time if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            assert!(!self.0.is_empty(), "select over empty set");
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }

    /// Strategy choosing an order-preserving subsequence.
    pub struct Subsequence<T> {
        options: Vec<T>,
        min: usize,
        max: usize,
    }

    /// Picks a random subsequence of `options` whose size lies in `size`
    /// (order preserved, no repetition), mirroring
    /// `proptest::sample::subsequence`.
    pub fn subsequence<T: Clone>(
        options: Vec<T>,
        size: core::ops::RangeInclusive<usize>,
    ) -> Subsequence<T> {
        let (min, max) = (*size.start(), (*size.end()).min(options.len()));
        assert!(min <= max, "subsequence size range empty for option count");
        Subsequence { options, min, max }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut StdRng) -> Vec<T> {
            let k = rng.gen_range(self.min..=self.max);
            // Floyd-style distinct index draw, then restore order.
            let n = self.options.len();
            let mut picked: Vec<usize> = Vec::with_capacity(k);
            while picked.len() < k {
                let i = rng.gen_range(0..n);
                if !picked.contains(&i) {
                    picked.push(i);
                }
            }
            picked.sort_unstable();
            picked
                .into_iter()
                .map(|i| self.options[i].clone())
                .collect()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};

    /// Strategy generating fixed-length vectors of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// `len` independent draws from `element`, mirroring
    /// `proptest::collection::vec` with an exact size.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-(test, case) RNG so failures reproduce exactly.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
}

/// Asserts a property holds; on failure reports the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn` runs `cases` times over fresh
/// random draws of its `name in strategy` arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u64..=5, f in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 5);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(v in crate::collection::vec(0usize..4, 7).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 7);
        }

        #[test]
        fn subsequence_is_ordered_subset(s in crate::sample::subsequence(vec![1, 2, 3, 4, 5], 1..=3)) {
            prop_assert!(!s.is_empty() && s.len() <= 3);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&s, &sorted);
            prop_assert!(s.iter().all(|x| (1..=5).contains(x)));
        }

        #[test]
        fn select_draws_members(m in crate::sample::select(vec!["a", "b"])) {
            prop_assert_ne!(m, "c");
        }
    }

    #[test]
    fn harness_runs_cases() {
        ranges_stay_in_bounds();
        vec_and_map_compose();
        subsequence_is_ordered_subset();
        select_draws_members();
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        let a = crate::case_rng("t", 3).next_u64();
        let b = crate::case_rng("t", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, crate::case_rng("t", 4).next_u64());
        assert_ne!(a, crate::case_rng("u", 3).next_u64());
    }
}
