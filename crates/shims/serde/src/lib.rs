//! Offline stand-in for the `serde` façade.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (for API
//! parity with the real crate); no in-tree code serializes through serde
//! at run time. This shim provides the two marker traits and re-exports
//! the no-op derives so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. Swapping the
//! path dependency back to crates.io `serde` requires no source edits.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de> {}
