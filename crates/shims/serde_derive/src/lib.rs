//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace derives serde traits on its public data types for
//! downstream ergonomics, but nothing in-tree performs serde
//! serialization at run time (persistence uses a hand-rolled binary
//! format in `omniboost-estimator::io`). With crates.io unreachable in
//! this build environment, these derives expand to nothing, which keeps
//! every `#[derive(Serialize, Deserialize)]` compiling without pulling in
//! the real implementation.

use proc_macro::TokenStream;

/// Expands to nothing; marks the type as serde-serializable in name only.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; marks the type as serde-deserializable in name only.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
