//! Property-based tests over the board model: conservation laws and
//! monotonicity the simulator must respect regardless of mapping.

use omniboost_hw::{
    cost, Board, Device, LayerTimeTable, Mapping, NoiseModel, ThroughputModel, Workload,
};
use omniboost_models::{zoo, ModelId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_model() -> impl Strategy<Value = ModelId> {
    proptest::sample::select(ModelId::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kernel costs are strictly positive and layer costs are additive
    /// over kernels (Eq. 1 of the paper).
    #[test]
    fn layer_cost_is_additive_over_kernels(id in arb_model(), dev in 0usize..3) {
        let board = Board::hikey970();
        let device = Device::from_index(dev).unwrap();
        let dnn = zoo::build(id);
        let spec = board.device(device);
        for layer in dnn.layers() {
            let per_kernel: f64 = layer.kernels().iter().map(|k| cost::kernel_time_ms(spec, k)).sum();
            let whole = cost::layer_time_ms(&board, device, layer);
            prop_assert!((per_kernel - whole).abs() < 1e-12);
            prop_assert!(whole > 0.0);
        }
    }

    /// Profiled tables dominate: for any layer, LITTLE >= big CPU time —
    /// the LITTLE cluster is never faster than the big one.
    #[test]
    fn little_never_beats_big(id in arb_model()) {
        let board = Board::hikey970();
        let dnn = zoo::build(id);
        let t = LayerTimeTable::profile(&board, &dnn, NoiseModel::none());
        for l in 0..t.num_layers() {
            prop_assert!(t.time_ms(Device::LittleCpu, l) >= t.time_ms(Device::BigCpu, l));
        }
    }

    /// Adding a DNN to a workload never *increases* any incumbent's
    /// throughput when the mapping of the incumbents is unchanged
    /// (contention monotonicity).
    #[test]
    fn adding_work_never_speeds_up_incumbents(a in arb_model(), b in arb_model()) {
        let board = Board::hikey970();
        let sim = board.simulator();
        let solo = Workload::from_ids([a]);
        let t_solo = sim
            .evaluate(&solo, &Mapping::all_on(&solo, Device::Gpu))
            .unwrap()
            .per_dnn[0];
        let duo = Workload::from_ids([a, b]);
        let t_duo = sim
            .evaluate(&duo, &Mapping::all_on(&duo, Device::Gpu))
            .unwrap()
            .per_dnn[0];
        prop_assert!(t_duo <= t_solo * 1.001, "{t_duo} > {t_solo}");
    }

    /// The analytic model is monotone in the same sense.
    #[test]
    fn analytic_contention_monotonicity(a in arb_model(), b in arb_model()) {
        let board = Board::hikey970();
        let model = omniboost_hw::AnalyticModel::new(board);
        let solo = Workload::from_ids([a]);
        let t_solo = model
            .evaluate(&solo, &Mapping::all_on(&solo, Device::BigCpu))
            .unwrap()
            .per_dnn[0];
        let duo = Workload::from_ids([a, b]);
        let t_duo = model
            .evaluate(&duo, &Mapping::all_on(&duo, Device::BigCpu))
            .unwrap()
            .per_dnn[0];
        prop_assert!(t_duo <= t_solo * 1.001);
    }

    /// Occupancy is consistent: devices with no layers report zero busy
    /// time, devices hosting everything report near-full busy time.
    #[test]
    fn occupancy_accounting(id in arb_model(), dev in 0usize..3) {
        let board = Board::hikey970();
        let sim = board.simulator();
        let device = Device::from_index(dev).unwrap();
        let w = Workload::from_ids([id]);
        let (_, util) = sim.evaluate_traced(&w, &Mapping::all_on(&w, device)).unwrap();
        for d in Device::ALL {
            if d == device {
                prop_assert!(util.device_busy[d.index()] > 0.9);
            } else {
                prop_assert_eq!(util.device_busy[d.index()], 0.0);
            }
        }
        prop_assert_eq!(util.bus_busy, 0.0);
    }

    /// Randomized mappings: measured per-DNN throughput is bounded above
    /// by the uncontended bottleneck-stage rate of that DNN.
    #[test]
    fn pipeline_throughput_bounded_by_bottleneck(id in arb_model(), seed in 0u64..300) {
        let board = Board::hikey970();
        let sim = board.simulator();
        let w = Workload::from_ids([id]);
        let mut rng = StdRng::seed_from_u64(seed);
        let mapping = Mapping::random(&w, 3, &mut rng);
        let report = sim.evaluate(&w, &mapping).unwrap();
        let table = LayerTimeTable::profile(&board, w.dnn(0), NoiseModel::none());
        let bottleneck_ms = mapping
            .segments(0)
            .iter()
            .map(|s| (s.start..s.end).map(|l| table.time_ms(s.device, l)).sum::<f64>())
            .fold(0.0f64, f64::max);
        let bound = 1e3 / bottleneck_ms;
        prop_assert!(
            report.per_dnn[0] <= bound * 1.01,
            "{} exceeds bottleneck bound {}",
            report.per_dnn[0],
            bound
        );
    }
}
