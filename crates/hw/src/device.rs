//! Computing components of the board.

use omniboost_models::KernelClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three computing components of the HiKey970 (§V): Mali-G72 GPU,
/// big Cortex-A73 cluster, LITTLE Cortex-A53 cluster.
///
/// The paper notes the board's NPU was *not* used (compute-library
/// incompatibility), so exactly three devices participate.
///
/// ```
/// use omniboost_hw::Device;
///
/// assert_eq!(Device::COUNT, 3);
/// assert_eq!(Device::from_index(1), Some(Device::BigCpu));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Device {
    /// Mali-G72 MP12 embedded GPU.
    Gpu,
    /// Quad-core Cortex-A73 @ 2.36 GHz ("big").
    BigCpu,
    /// Quad-core Cortex-A53 @ 1.8 GHz ("LITTLE").
    LittleCpu,
}

impl Device {
    /// Number of computing components (the paper's `x`, also the pipeline
    /// stage cap of the MCTS losing-state rule).
    pub const COUNT: usize = 3;

    /// All devices in embedding-tensor slice order (GPU, big, LITTLE —
    /// the order of Fig. 3).
    pub const ALL: [Device; 3] = [Device::Gpu, Device::BigCpu, Device::LittleCpu];

    /// Stable index (slice index in the distributed embeddings tensor).
    pub const fn index(self) -> usize {
        match self {
            Device::Gpu => 0,
            Device::BigCpu => 1,
            Device::LittleCpu => 2,
        }
    }

    /// Inverse of [`Device::index`].
    pub const fn from_index(i: usize) -> Option<Device> {
        match i {
            0 => Some(Device::Gpu),
            1 => Some(Device::BigCpu),
            2 => Some(Device::LittleCpu),
            _ => None,
        }
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Device::Gpu => "GPU",
            Device::BigCpu => "big CPU",
            Device::LittleCpu => "LITTLE CPU",
        };
        f.write_str(s)
    }
}

/// Broad device family, which determines the per-kernel-class efficiency
/// profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Massively parallel embedded GPU.
    EmbeddedGpu,
    /// Out-of-order NEON CPU cluster.
    BigCore,
    /// In-order NEON CPU cluster.
    LittleCore,
}

/// Performance description of one computing component.
///
/// Kernel latency is priced with a roofline: compute time
/// `flops / (peak_gflops · efficiency(class))` versus memory time
/// `bytes / mem_bandwidth`, plus a fixed per-kernel dispatch overhead
/// (large for the GPU — OpenCL kernel launches — tiny for the CPUs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable name, e.g. `"Mali-G72 MP12"`.
    pub name: String,
    /// Device family.
    pub kind: DeviceKind,
    /// Peak sustained fp32 throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Sustained memory bandwidth in GB/s available to this device.
    pub mem_bandwidth_gbs: f64,
    /// Fixed dispatch overhead per kernel, in milliseconds.
    pub kernel_overhead_ms: f64,
    /// Number of independent pipeline stages this device can serve before
    /// contention sets in (the saturation knee; 1 for the GPU's single
    /// command queue, the core count for CPU clusters).
    pub saturation_knee: usize,
    /// Resident working-set size (weights + activation buffers of the
    /// layers mapped here) beyond which memory-system thrash sets in.
    /// This is the dominant saturation mechanism: a ~1.3 GB all-on-GPU
    /// mapping collapses (the paper's Fig. 5b regime) while a ~0.8 GB one
    /// merely shares fairly (the Fig. 1 regime).
    pub ws_capacity_bytes: u64,
}

impl DeviceSpec {
    /// Fraction of peak compute this device reaches on a kernel class.
    ///
    /// These profiles encode the well-known asymmetries that make
    /// heterogeneous partitioning profitable: mobile GPUs excel at wide
    /// dense convolutions and GEMMs but are poor at depthwise
    /// convolutions and tiny element-wise kernels, while CPU clusters are
    /// more uniform.
    pub fn efficiency(&self, class: KernelClass) -> f64 {
        use KernelClass::*;
        match self.kind {
            DeviceKind::EmbeddedGpu => match class {
                DirectConv => 0.75,
                PointwiseConv => 0.55,
                DepthwiseConv => 0.12,
                Gemm => 0.65,
                Pool => 0.40,
                Activation => 0.50,
                Norm => 0.35,
                EltwiseAdd => 0.45,
                Concat => 0.50,
                Softmax => 0.15,
                _ => 0.30,
            },
            DeviceKind::BigCore => match class {
                DirectConv => 0.55,
                PointwiseConv => 0.50,
                DepthwiseConv => 0.45,
                Gemm => 0.60,
                Pool => 0.50,
                Activation => 0.60,
                Norm => 0.50,
                EltwiseAdd => 0.60,
                Concat => 0.60,
                Softmax => 0.50,
                _ => 0.45,
            },
            DeviceKind::LittleCore => match class {
                DirectConv => 0.50,
                PointwiseConv => 0.45,
                DepthwiseConv => 0.45,
                Gemm => 0.50,
                Pool => 0.50,
                Activation => 0.55,
                Norm => 0.45,
                EltwiseAdd => 0.55,
                Concat => 0.55,
                Softmax => 0.45,
                _ => 0.40,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrips() {
        for d in Device::ALL {
            assert_eq!(Device::from_index(d.index()), Some(d));
        }
        assert_eq!(Device::from_index(3), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Device::Gpu.to_string(), "GPU");
        assert_eq!(Device::LittleCpu.to_string(), "LITTLE CPU");
    }

    #[test]
    fn gpu_is_bad_at_depthwise() {
        let gpu = DeviceSpec {
            name: "g".into(),
            kind: DeviceKind::EmbeddedGpu,
            peak_gflops: 100.0,
            mem_bandwidth_gbs: 10.0,
            kernel_overhead_ms: 0.05,
            saturation_knee: 1,
            ws_capacity_bytes: 900 << 20,
        };
        assert!(
            gpu.efficiency(KernelClass::DepthwiseConv)
                < gpu.efficiency(KernelClass::DirectConv) / 3.0
        );
    }
}
