//! # omniboost-hw
//!
//! Heterogeneous embedded board model for the OmniBoost (DAC 2023)
//! reproduction — the stand-in for the paper's HiKey970 development board.
//!
//! The paper evaluates on physical silicon (Mali-G72 MP12 GPU + quad
//! Cortex-A73 + quad Cortex-A53) running DNN layers through OpenCL and the
//! ARM Compute Library. We do not have that board, so this crate provides
//! a **calibrated simulator** that reproduces the two observables the
//! scheduler interacts with:
//!
//! 1. *Design-time*: per-layer execution time on each computing component
//!    (`B_l^α` of Eq. 1), via a roofline kernel cost model
//!    ([`cost`], [`profile`]).
//! 2. *Run-time*: achieved throughput of a concurrently executing
//!    multi-DNN pipeline mapping, via a processor-sharing discrete-event
//!    simulator ([`des`]) and a fast analytic fixed-point solver
//!    ([`analytic`]).
//!
//! Crucially, the simulator reproduces the phenomena the paper's results
//! hinge on: **GPU saturation** under co-located DNNs (the source of the
//! ×4.6 speedup in Fig. 5b), **inter-stage transfer costs** (the reason
//! pipelines with more stages than devices are "losing" states), and the
//! board becoming **unresponsive beyond five concurrent DNNs** (§V-A).
//!
//! ```
//! use omniboost_hw::{Board, Device, Mapping, ThroughputModel, Workload};
//! use omniboost_models::ModelId;
//!
//! let board = Board::hikey970();
//! let workload = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
//! let mapping = Mapping::all_on(&workload, Device::Gpu);
//! let report = board.simulator().evaluate(&workload, &mapping)?;
//! assert!(report.average > 0.0);
//! # Ok::<(), omniboost_hw::HwError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
mod board;
pub mod cost;
pub mod des;
mod device;
mod error;
mod fnv;
mod mapping;
mod noise;
pub mod profile;
mod scheduler;
mod workload;

pub use analytic::AnalyticModel;
pub use board::{Board, BusSpec, SaturationModel};
pub use des::{DesConfig, DesSimulator, UtilizationReport};
pub use device::{Device, DeviceKind, DeviceSpec};
pub use error::HwError;
pub use fnv::Fnv1a;
pub use mapping::{Mapping, Segment};
pub use noise::NoiseModel;
pub use profile::LayerTimeTable;
pub use scheduler::{EvalCacheStats, Scheduler, ThroughputModel, ThroughputReport};
pub use workload::Workload;
