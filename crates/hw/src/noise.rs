//! Deterministic measurement noise for profiled layer times.
//!
//! Real kernel benchmarks are noisy; the paper's estimator must cope with
//! that. We emulate it with *deterministic* multiplicative jitter derived
//! from a hash of (seed, model, layer, device), so profiling is
//! reproducible run-to-run while still being "noisy" across layers.

use serde::{Deserialize, Serialize};

/// Multiplicative log-uniform jitter applied to profiled layer times.
///
/// ```
/// use omniboost_hw::NoiseModel;
///
/// let n = NoiseModel::new(0.05, 42);
/// let f = n.factor("vgg19", 3, 1);
/// assert!((0.95..=1.05).contains(&f));
/// assert_eq!(f, n.factor("vgg19", 3, 1)); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Maximum relative deviation (e.g. 0.05 for ±5%).
    pub amplitude: f64,
    /// Seed mixed into every draw.
    pub seed: u64,
}

impl NoiseModel {
    /// Creates a noise model with the given amplitude and seed.
    pub fn new(amplitude: f64, seed: u64) -> Self {
        Self { amplitude, seed }
    }

    /// A noiseless model (factor always 1.0).
    pub fn none() -> Self {
        Self {
            amplitude: 0.0,
            seed: 0,
        }
    }

    /// Jitter factor in `[1-amplitude, 1+amplitude]` for a
    /// (model, layer, device) coordinate.
    pub fn factor(&self, model: &str, layer: usize, device: usize) -> f64 {
        if self.amplitude == 0.0 {
            return 1.0;
        }
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for b in model.bytes() {
            h = splitmix(h ^ u64::from(b));
        }
        h = splitmix(h ^ layer as u64);
        h = splitmix(h ^ device as u64);
        // Map to [0,1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + self.amplitude * (2.0 * u - 1.0)
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_amplitude_is_identity() {
        let n = NoiseModel::none();
        assert_eq!(n.factor("x", 0, 0), 1.0);
    }

    #[test]
    fn factors_stay_in_band() {
        let n = NoiseModel::new(0.1, 3);
        for l in 0..40 {
            for d in 0..3 {
                let f = n.factor("resnet50", l, d);
                assert!((0.9..=1.1).contains(&f), "f = {f}");
            }
        }
    }

    #[test]
    fn different_coordinates_differ() {
        let n = NoiseModel::new(0.1, 3);
        let a = n.factor("resnet50", 0, 0);
        let b = n.factor("resnet50", 1, 0);
        let c = n.factor("resnet50", 0, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn seeds_change_the_draw() {
        let a = NoiseModel::new(0.1, 1).factor("m", 0, 0);
        let b = NoiseModel::new(0.1, 2).factor("m", 0, 0);
        assert_ne!(a, b);
    }
}
