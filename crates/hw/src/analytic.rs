//! Fast analytic throughput model: a damped fixed-point solver over the
//! closed pipeline queueing network induced by a mapping.
//!
//! Each DNN is a pipeline of stages; its throughput is limited by its
//! bottleneck stage, whose effective service time is inflated by (i) the
//! processor share it gets on its device and (ii) the board's saturation
//! model. The solver iterates stage inflation ← device load ← per-DNN
//! throughput to a fixed point.
//!
//! This model is *deliberately simpler* than the discrete-event simulator
//! in [`crate::des`]: it serves as a fast screening evaluator and as the
//! kind of intermediate-fidelity model a designer would sanity-check the
//! CNN estimator against.

use crate::board::Board;
use crate::device::Device;
use crate::error::HwError;
use crate::mapping::Mapping;
use crate::profile::LayerTimeTable;
use crate::scheduler::{ThroughputModel, ThroughputReport};
use crate::workload::Workload;
use crate::{cost, noise::NoiseModel};

/// Per-DNN pipeline stages as `(device, service_ms)` pairs.
type StageTimes = Vec<Vec<(Device, f64)>>;
/// Per-DNN inter-stage transfer times in ms.
type TransferTimes = Vec<Vec<f64>>;

/// Analytic fixed-point throughput model over a board.
///
/// ```
/// use omniboost_hw::{AnalyticModel, Board, Device, Mapping, ThroughputModel, Workload};
/// use omniboost_models::ModelId;
///
/// let board = Board::hikey970();
/// let model = AnalyticModel::new(board);
/// let w = Workload::from_ids([ModelId::AlexNet]);
/// let m = Mapping::all_on(&w, Device::Gpu);
/// let r = model.evaluate(&w, &m)?;
/// assert!(r.average > 0.0);
/// # Ok::<(), omniboost_hw::HwError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AnalyticModel {
    board: Board,
    iterations: usize,
    damping: f64,
}

impl AnalyticModel {
    /// Creates a solver with default iteration budget.
    pub fn new(board: Board) -> Self {
        Self {
            board,
            iterations: 200,
            damping: 0.5,
        }
    }

    /// Overrides the fixed-point iteration count.
    #[must_use]
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// The underlying board.
    pub fn board(&self) -> &Board {
        &self.board
    }

    /// Profiles each workload DNN once (noise-free, deterministic) — the
    /// expensive per-query setup [`ThroughputModel::evaluate_batch`]
    /// amortizes across a whole batch of mappings.
    fn profile_tables(&self, workload: &Workload) -> Vec<LayerTimeTable> {
        workload
            .dnns()
            .iter()
            .map(|dnn| LayerTimeTable::profile(&self.board, dnn, NoiseModel::none()))
            .collect()
    }

    fn stage_times(
        &self,
        workload: &Workload,
        mapping: &Mapping,
        tables: &[LayerTimeTable],
    ) -> (StageTimes, TransferTimes) {
        let mut stages = Vec::with_capacity(workload.len());
        let mut transfers = Vec::with_capacity(workload.len());
        for (di, dnn) in workload.dnns().iter().enumerate() {
            let table = &tables[di];
            let segs = mapping.segments(di);
            let mut st = Vec::with_capacity(segs.len());
            let mut tr = Vec::new();
            for (si, seg) in segs.iter().enumerate() {
                let t: f64 = (seg.start..seg.end)
                    .map(|l| table.time_ms(seg.device, l))
                    .sum();
                st.push((seg.device, t));
                if si + 1 < segs.len() {
                    tr.push(
                        self.board
                            .bus
                            .transfer_ms(dnn.cut_bytes(seg.end - 1) as u64),
                    );
                }
            }
            stages.push(st);
            transfers.push(tr);
        }
        (stages, transfers)
    }
}

impl AnalyticModel {
    fn evaluate_with_tables(
        &self,
        workload: &Workload,
        mapping: &Mapping,
        tables: &[LayerTimeTable],
    ) -> Result<ThroughputReport, HwError> {
        self.board.admit(workload)?;
        mapping.validate(workload)?;
        let (stages, transfers) = self.stage_times(workload, mapping, tables);
        let m = workload.len();
        let global = self.board.saturation.global_factor(m);

        // Static inflation: stage-count interference plus working-set
        // thrash for the layers the mapping makes resident per device.
        let mut stages_on = [0usize; Device::COUNT];
        for st in &stages {
            for (dev, _) in st {
                stages_on[dev.index()] += 1;
            }
        }
        let mut resident = [0u64; Device::COUNT];
        for (di, dnn) in workload.dnns().iter().enumerate() {
            for (layer, dev) in dnn.layers().iter().zip(&mapping.assignments()[di]) {
                resident[dev.index()] += layer.weight_bytes() + layer.output_bytes() as u64;
            }
        }
        let inflation: Vec<f64> = Device::ALL
            .iter()
            .map(|d| {
                self.board
                    .saturation
                    .device_factor(stages_on[d.index()], self.board.device(*d).saturation_knee)
                    * self
                        .board
                        .saturation
                        .ws_factor(resident[d.index()], self.board.device(*d).ws_capacity_bytes)
                    * global
            })
            .collect();

        // Initial guess: uncontended pipeline bottleneck throughput.
        let mut x: Vec<f64> = stages
            .iter()
            .zip(&transfers)
            .map(|(st, tr)| {
                let bottleneck = st
                    .iter()
                    .map(|(_, t)| *t)
                    .chain(tr.iter().copied())
                    .fold(0.0f64, f64::max);
                if bottleneck > 0.0 {
                    1.0 / bottleneck
                } else {
                    0.0
                }
            })
            .collect();

        for _ in 0..self.iterations {
            // Device utilization under current throughputs.
            let mut util = [0.0f64; Device::COUNT];
            let mut bus_util = 0.0f64;
            for (di, st) in stages.iter().enumerate() {
                for (dev, t) in st {
                    util[dev.index()] += x[di] * t * inflation[dev.index()];
                }
                for tr in &transfers[di] {
                    bus_util += x[di] * tr;
                }
            }
            // Congestion slows each stage by the over-utilization factor.
            let mut x_new = Vec::with_capacity(m);
            for (di, st) in stages.iter().enumerate() {
                let mut bottleneck: f64 = 0.0;
                for (dev, t) in st {
                    let c = util[dev.index()].max(1.0);
                    bottleneck = bottleneck.max(t * inflation[dev.index()] * c);
                }
                for tr in &transfers[di] {
                    bottleneck = bottleneck.max(tr * bus_util.max(1.0));
                }
                x_new.push(if bottleneck > 0.0 {
                    1.0 / bottleneck
                } else {
                    0.0
                });
            }
            for di in 0..m {
                x[di] = self.damping * x[di] + (1.0 - self.damping) * x_new[di];
            }
        }

        // Convert inferences/ms -> inferences/s.
        let per_dnn: Vec<f64> = x.iter().map(|v| v * 1e3).collect();
        let mut per_device = [0.0f64; Device::COUNT];
        for (di, st) in stages.iter().enumerate() {
            for (dev, _) in st {
                per_device[dev.index()] += per_dnn[di];
            }
        }
        Ok(ThroughputReport::new(per_dnn, per_device))
    }
}

impl ThroughputModel for AnalyticModel {
    fn evaluate(
        &self,
        workload: &Workload,
        mapping: &Mapping,
    ) -> Result<ThroughputReport, HwError> {
        let tables = self.profile_tables(workload);
        self.evaluate_with_tables(workload, mapping, &tables)
    }

    /// Profiles the workload's layer-time tables once, then solves every
    /// mapping against the shared tables across worker threads. Profiling
    /// is deterministic, so each element is identical to a scalar
    /// [`ThroughputModel::evaluate`] call.
    fn evaluate_batch(
        &self,
        workload: &Workload,
        mappings: &[Mapping],
    ) -> Vec<Result<ThroughputReport, HwError>> {
        use rayon::prelude::*;
        if mappings.is_empty() {
            return Vec::new();
        }
        let tables = self.profile_tables(workload);
        if mappings.len() == 1 {
            return vec![self.evaluate_with_tables(workload, &mappings[0], &tables)];
        }
        let tables = &tables;
        mappings
            .par_iter()
            .map(|m| self.evaluate_with_tables(workload, m, tables))
            .collect()
    }

    fn model_name(&self) -> &str {
        "analytic"
    }
}

/// Uncontended single-DNN throughput on one device (inferences/s) — a
/// convenience used by baselines and reports.
pub fn solo_throughput(board: &Board, dnn: &omniboost_models::DnnModel, device: Device) -> f64 {
    1e3 / cost::dnn_time_ms(board, device, dnn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omniboost_models::ModelId;

    fn board() -> Board {
        Board::hikey970()
    }

    #[test]
    fn evaluate_batch_matches_scalar_evaluate() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let model = AnalyticModel::new(board());
        let w = Workload::from_ids([ModelId::Vgg16, ModelId::InceptionV3]);
        let mut rng = StdRng::seed_from_u64(9);
        let mappings: Vec<Mapping> = (0..8).map(|_| Mapping::random(&w, 3, &mut rng)).collect();
        let batch = model.evaluate_batch(&w, &mappings);
        for (m, b) in mappings.iter().zip(batch) {
            let scalar = model.evaluate(&w, m).unwrap();
            let batched = b.unwrap();
            assert!((scalar.average - batched.average).abs() < 1e-9);
            for (x, y) in scalar.per_dnn.iter().zip(&batched.per_dnn) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn single_dnn_gpu_close_to_uncontended() {
        let b = board();
        let model = AnalyticModel::new(b.clone());
        let w = Workload::from_ids([ModelId::AlexNet]);
        let m = Mapping::all_on(&w, Device::Gpu);
        let r = model.evaluate(&w, &m).unwrap();
        let solo = solo_throughput(&b, w.dnn(0), Device::Gpu);
        assert!(
            (r.per_dnn[0] - solo).abs() / solo < 0.05,
            "{} vs {}",
            r.per_dnn[0],
            solo
        );
    }

    #[test]
    fn contention_reduces_throughput() {
        let b = board();
        let model = AnalyticModel::new(b);
        let one = Workload::from_ids([ModelId::Vgg19]);
        let four = Workload::from_ids(vec![ModelId::Vgg19; 4]);
        let r1 = model
            .evaluate(&one, &Mapping::all_on(&one, Device::Gpu))
            .unwrap();
        let r4 = model
            .evaluate(&four, &Mapping::all_on(&four, Device::Gpu))
            .unwrap();
        assert!(r4.per_dnn[0] < r1.per_dnn[0] / 3.0);
    }

    #[test]
    fn rejects_inadmissible_workloads() {
        let model = AnalyticModel::new(board());
        let w = Workload::from_ids(vec![ModelId::AlexNet; 6]);
        let m = Mapping::all_on(&w, Device::Gpu);
        assert!(matches!(
            model.evaluate(&w, &m),
            Err(HwError::Unresponsive { .. })
        ));
    }

    #[test]
    fn spreading_beats_stacking_under_heavy_load() {
        let b = board();
        let model = AnalyticModel::new(b);
        let w = Workload::from_ids(vec![ModelId::Vgg16; 3]);
        let stacked = Mapping::all_on(&w, Device::Gpu);
        // One DNN per device.
        let spread = Mapping::new(vec![
            vec![Device::Gpu; 21],
            vec![Device::BigCpu; 21],
            vec![Device::LittleCpu; 21],
        ]);
        let rs = model.evaluate(&w, &stacked).unwrap();
        let rp = model.evaluate(&w, &spread).unwrap();
        assert!(
            rp.average > rs.average,
            "spread {} <= stacked {}",
            rp.average,
            rs.average
        );
    }
}
