//! Multi-DNN workloads: the unit of scheduling.

use omniboost_models::{zoo, DnnModel, ModelId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of DNNs to execute concurrently.
///
/// The paper's evaluation workloads are "mixes" of 1–5 networks drawn
/// (with repetition allowed) from the 11-model dataset; the order of DNNs
/// in a mix is irrelevant because all of them run concurrently (§IV-C).
///
/// ```
/// use omniboost_hw::Workload;
/// use omniboost_models::ModelId;
///
/// let w = Workload::from_ids([ModelId::AlexNet, ModelId::Vgg19]);
/// assert_eq!(w.len(), 2);
/// assert_eq!(w.total_layers(), 11 + 24);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    dnns: Vec<DnnModel>,
}

impl Workload {
    /// Creates a workload from fully-described models (zoo or custom).
    pub fn new(dnns: Vec<DnnModel>) -> Self {
        Self { dnns }
    }

    /// Creates a workload from zoo identifiers.
    pub fn from_ids(ids: impl IntoIterator<Item = ModelId>) -> Self {
        Self {
            dnns: ids.into_iter().map(zoo::build).collect(),
        }
    }

    /// The DNNs in this workload.
    pub fn dnns(&self) -> &[DnnModel] {
        &self.dnns
    }

    /// Number of concurrent DNNs.
    pub fn len(&self) -> usize {
        self.dnns.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.dnns.is_empty()
    }

    /// DNN by index.
    pub fn dnn(&self, index: usize) -> &DnnModel {
        &self.dnns[index]
    }

    /// Total schedulable layers across all DNNs — the number of decisions
    /// a scheduler must make (84 for the §II motivational example).
    pub fn total_layers(&self) -> usize {
        self.dnns.iter().map(DnnModel::num_layers).sum()
    }

    /// Total resident weight bytes.
    pub fn total_weight_bytes(&self) -> u64 {
        self.dnns.iter().map(DnnModel::total_weight_bytes).sum()
    }

    /// Layer counts per DNN (the mapping shape this workload requires).
    pub fn layer_counts(&self) -> Vec<usize> {
        self.dnns.iter().map(DnnModel::num_layers).collect()
    }

    /// Stable 64-bit fingerprint of the workload's composition, used as
    /// the workload half of cross-decision cache keys.
    ///
    /// Each DNN contributes its name plus **per-layer** cost structure
    /// (flops, weight bytes, output bytes) — name and aggregate totals
    /// alone are not enough because
    /// [`omniboost_models::DnnModelBuilder`] allows distinct
    /// architectures under one name, and two layer orderings with equal
    /// totals map to different throughputs. Order-sensitive (mixes keep
    /// order throughout the stack), process-independent (FNV-1a, no
    /// `RandomState`), and stable across runs so persisted caches could
    /// reuse it.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = crate::Fnv1a::default();
        for dnn in &self.dnns {
            h.write(dnn.name().as_bytes());
            // Separator so ("ab", 1-layer) never collides with ("a", ...).
            h.write(&[0xFF]);
            h.write(&(dnn.num_layers() as u64).to_le_bytes());
            for layer in dnn.layers() {
                h.write(&layer.flops().to_le_bytes());
                h.write(&layer.weight_bytes().to_le_bytes());
                h.write(&(layer.output_bytes() as u64).to_le_bytes());
            }
        }
        h.finish()
    }
}

impl FromIterator<DnnModel> for Workload {
    fn from_iter<T: IntoIterator<Item = DnnModel>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl FromIterator<ModelId> for Workload {
    fn from_iter<T: IntoIterator<Item = ModelId>>(iter: T) -> Self {
        Self::from_ids(iter)
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mix[")?;
        for (i, d) in self.dnns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", d.name())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_from_ids() {
        let w: Workload = [ModelId::AlexNet, ModelId::SqueezeNet]
            .into_iter()
            .collect();
        assert_eq!(w.len(), 2);
        assert_eq!(w.dnn(1).name(), "squeezenet");
    }

    #[test]
    fn motivational_workload_has_84_layers() {
        let w = Workload::from_ids([
            ModelId::AlexNet,
            ModelId::MobileNet,
            ModelId::Vgg19,
            ModelId::SqueezeNet,
        ]);
        assert_eq!(w.total_layers(), 84);
    }

    #[test]
    fn display_lists_models() {
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::Vgg13]);
        assert_eq!(w.to_string(), "mix[alexnet, vgg13]");
    }

    #[test]
    fn fingerprint_distinguishes_compositions() {
        let a = Workload::from_ids([ModelId::AlexNet, ModelId::Vgg13]);
        let b = Workload::from_ids([ModelId::AlexNet, ModelId::Vgg13]);
        assert_eq!(a.fingerprint(), b.fingerprint(), "same mix, same print");
        let c = Workload::from_ids([ModelId::Vgg13, ModelId::AlexNet]);
        assert_ne!(a.fingerprint(), c.fingerprint(), "order-sensitive");
        let d = Workload::from_ids([ModelId::AlexNet]);
        assert_ne!(a.fingerprint(), d.fingerprint());
        assert_ne!(Workload::new(vec![]).fingerprint(), a.fingerprint());
    }

    #[test]
    fn fingerprint_sees_per_layer_structure() {
        // Same name, same layer count, same total weight bytes — only
        // the pool's position differs (so the second conv runs at a
        // different spatial size). Aggregate-only hashing collides here
        // and the eval cache would serve the wrong workload's reports.
        use omniboost_models::{DnnModelBuilder, TensorShape};
        let pool_first = DnnModelBuilder::new(TensorShape::new(3, 32, 32))
            .conv("c1", 8, 3, 1, 1)
            .max_pool("p", 2, 2, 0)
            .conv("c2", 8, 3, 1, 1)
            .build("custom")
            .unwrap();
        let pool_last = DnnModelBuilder::new(TensorShape::new(3, 32, 32))
            .conv("c1", 8, 3, 1, 1)
            .conv("c2", 8, 3, 1, 1)
            .max_pool("p", 2, 2, 0)
            .build("custom")
            .unwrap();
        assert_eq!(pool_first.name(), pool_last.name());
        assert_eq!(pool_first.num_layers(), pool_last.num_layers());
        assert_eq!(
            pool_first.total_weight_bytes(),
            pool_last.total_weight_bytes(),
            "the point of the test: aggregates tie, structure differs"
        );
        let a = Workload::new(vec![pool_first]);
        let b = Workload::new(vec![pool_last]);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
