//! Multi-DNN workloads: the unit of scheduling.

use omniboost_models::{zoo, DnnModel, ModelId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of DNNs to execute concurrently.
///
/// The paper's evaluation workloads are "mixes" of 1–5 networks drawn
/// (with repetition allowed) from the 11-model dataset; the order of DNNs
/// in a mix is irrelevant because all of them run concurrently (§IV-C).
///
/// ```
/// use omniboost_hw::Workload;
/// use omniboost_models::ModelId;
///
/// let w = Workload::from_ids([ModelId::AlexNet, ModelId::Vgg19]);
/// assert_eq!(w.len(), 2);
/// assert_eq!(w.total_layers(), 11 + 24);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    dnns: Vec<DnnModel>,
}

impl Workload {
    /// Creates a workload from fully-described models (zoo or custom).
    pub fn new(dnns: Vec<DnnModel>) -> Self {
        Self { dnns }
    }

    /// Creates a workload from zoo identifiers.
    pub fn from_ids(ids: impl IntoIterator<Item = ModelId>) -> Self {
        Self {
            dnns: ids.into_iter().map(zoo::build).collect(),
        }
    }

    /// The DNNs in this workload.
    pub fn dnns(&self) -> &[DnnModel] {
        &self.dnns
    }

    /// Number of concurrent DNNs.
    pub fn len(&self) -> usize {
        self.dnns.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.dnns.is_empty()
    }

    /// DNN by index.
    pub fn dnn(&self, index: usize) -> &DnnModel {
        &self.dnns[index]
    }

    /// Total schedulable layers across all DNNs — the number of decisions
    /// a scheduler must make (84 for the §II motivational example).
    pub fn total_layers(&self) -> usize {
        self.dnns.iter().map(DnnModel::num_layers).sum()
    }

    /// Total resident weight bytes.
    pub fn total_weight_bytes(&self) -> u64 {
        self.dnns.iter().map(DnnModel::total_weight_bytes).sum()
    }

    /// Layer counts per DNN (the mapping shape this workload requires).
    pub fn layer_counts(&self) -> Vec<usize> {
        self.dnns.iter().map(DnnModel::num_layers).collect()
    }
}

impl FromIterator<DnnModel> for Workload {
    fn from_iter<T: IntoIterator<Item = DnnModel>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl FromIterator<ModelId> for Workload {
    fn from_iter<T: IntoIterator<Item = ModelId>>(iter: T) -> Self {
        Self::from_ids(iter)
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mix[")?;
        for (i, d) in self.dnns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", d.name())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_from_ids() {
        let w: Workload = [ModelId::AlexNet, ModelId::SqueezeNet]
            .into_iter()
            .collect();
        assert_eq!(w.len(), 2);
        assert_eq!(w.dnn(1).name(), "squeezenet");
    }

    #[test]
    fn motivational_workload_has_84_layers() {
        let w = Workload::from_ids([
            ModelId::AlexNet,
            ModelId::MobileNet,
            ModelId::Vgg19,
            ModelId::SqueezeNet,
        ]);
        assert_eq!(w.total_layers(), 84);
    }

    #[test]
    fn display_lists_models() {
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::Vgg13]);
        assert_eq!(w.to_string(), "mix[alexnet, vgg13]");
    }
}
