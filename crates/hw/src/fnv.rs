//! Stable 64-bit FNV-1a hashing, shared by workload fingerprints and
//! cache-shard selection.
//!
//! Unlike `std`'s default `RandomState`, this hash is fixed across
//! processes and runs, so values derived from it (cache keys, persisted
//! fingerprints) stay valid over time. One shared implementation keeps
//! the constants from drifting between call sites.

/// 64-bit FNV-1a streaming hasher.
///
/// ```
/// use std::hash::Hasher;
/// let mut h = omniboost_hw::Fnv1a::default();
/// h.write(b"alexnet");
/// assert_eq!(h.finish(), {
///     let mut again = omniboost_hw::Fnv1a::default();
///     again.write(b"alexnet");
///     again.finish()
/// });
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

/// FNV-64 offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-64 prime (2^40 + 2^8 + 0xb3).
const PRIME: u64 = 0x100_0000_01b3;

impl Default for Fnv1a {
    fn default() -> Self {
        Self(OFFSET)
    }
}

impl std::hash::Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hasher;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        let cases: [(&[u8], u64); 3] = [
            (b"", 0xcbf2_9ce4_8422_2325),
            (b"a", 0xaf63_dc4c_8601_ec8c),
            (b"foobar", 0x85944171f73967e8),
        ];
        for (input, want) in cases {
            let mut h = Fnv1a::default();
            h.write(input);
            assert_eq!(h.finish(), want, "input {input:?}");
        }
    }

    #[test]
    fn chunked_writes_equal_one_write() {
        let mut a = Fnv1a::default();
        a.write(b"hello world");
        let mut b = Fnv1a::default();
        b.write(b"hello ");
        b.write(b"world");
        assert_eq!(a.finish(), b.finish());
    }
}
