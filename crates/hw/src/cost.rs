//! Roofline kernel cost model — the reproduction of the paper's
//! kernel-level benchmarking (Eq. 1).
//!
//! Each kernel's uncontended latency on a device is priced as the maximum
//! of its compute time (`flops / (peak · efficiency(class))`) and its
//! memory time (`bytes / bandwidth`), plus a fixed dispatch overhead.
//! The per-class efficiency profiles live on [`DeviceSpec`]
//! (see [`DeviceSpec::efficiency`]).

use crate::board::Board;
use crate::device::{Device, DeviceSpec};
use omniboost_models::{Kernel, Layer};

/// Uncontended execution time of a kernel on a device, in milliseconds —
/// the `b_k^α` of Eq. 1.
pub fn kernel_time_ms(spec: &DeviceSpec, kernel: &Kernel) -> f64 {
    let compute_ms =
        kernel.flops() as f64 / (spec.peak_gflops * spec.efficiency(kernel.class()) * 1e6);
    let memory_ms = kernel.total_bytes() as f64 / (spec.mem_bandwidth_gbs * 1e6);
    compute_ms.max(memory_ms) + spec.kernel_overhead_ms
}

/// Service-time inflation applied to layers priced on a masked-out
/// device (see [`Board::device_enabled`]). Large enough that no search,
/// analytic fixed point or DES replay ever prefers a lost device, yet
/// finite — mappings that reference one stay structurally valid and
/// evaluate to a near-zero (not NaN) throughput, so degrade-in-place
/// re-pricing can compare them against migration candidates.
pub const DISABLED_DEVICE_PENALTY: f64 = 1e6;

/// Uncontended execution time of a layer on a device, in milliseconds —
/// the `B_l^α = Σ_k b_k^α` of Eq. 1. Layers priced on a device the
/// board has lost ([`Board::device_enabled`]) are inflated by
/// [`DISABLED_DEVICE_PENALTY`], which is how the loss propagates to
/// every evaluation path (profile tables, analytic model, DES, MOSAIC)
/// without disturbing the `Device::COUNT` layout.
pub fn layer_time_ms(board: &Board, device: Device, layer: &Layer) -> f64 {
    let spec = board.device(device);
    let raw: f64 = layer
        .kernels()
        .iter()
        .map(|k| kernel_time_ms(spec, k))
        .sum();
    if board.device_enabled(device) {
        raw
    } else {
        raw * DISABLED_DEVICE_PENALTY
    }
}

/// Uncontended single-inference latency of a whole DNN on one device
/// (no pipelining, no contention), in milliseconds.
pub fn dnn_time_ms(board: &Board, device: Device, dnn: &omniboost_models::DnnModel) -> f64 {
    dnn.layers()
        .iter()
        .map(|l| layer_time_ms(board, device, l))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use omniboost_models::{zoo, KernelClass, ModelId};

    #[test]
    fn vgg19_is_fastest_on_gpu() {
        let board = Board::hikey970();
        let vgg = zoo::build(ModelId::Vgg19);
        let gpu = dnn_time_ms(&board, Device::Gpu, &vgg);
        let big = dnn_time_ms(&board, Device::BigCpu, &vgg);
        let little = dnn_time_ms(&board, Device::LittleCpu, &vgg);
        assert!(
            gpu < big && big < little,
            "gpu={gpu} big={big} little={little}"
        );
        // GPU should be several times faster on this wide-conv network.
        assert!(big / gpu > 2.0, "big/gpu = {}", big / gpu);
    }

    #[test]
    fn depthwise_narrows_the_gpu_advantage() {
        // MobileNet (depthwise-heavy) should see a much smaller GPU/CPU
        // ratio than VGG (dense convs), reflecting real Mali behaviour.
        let board = Board::hikey970();
        let mobile = zoo::build(ModelId::MobileNet);
        let vgg = zoo::build(ModelId::Vgg19);
        let ratio = |m: &omniboost_models::DnnModel| {
            dnn_time_ms(&board, Device::BigCpu, m) / dnn_time_ms(&board, Device::Gpu, m)
        };
        assert!(ratio(&vgg) > ratio(&mobile) * 1.3);
    }

    #[test]
    fn kernel_time_includes_overhead() {
        let board = Board::hikey970();
        let spec = board.device(Device::Gpu);
        let empty = omniboost_models::Kernel::new("nop", KernelClass::Activation);
        assert!(kernel_time_ms(spec, &empty) >= spec.kernel_overhead_ms);
    }

    #[test]
    fn masked_devices_price_catastrophically_but_finitely() {
        let full = Board::hikey970();
        let masked = Board::hikey970_gpu_down();
        let vgg = zoo::build(ModelId::Vgg19);
        let layer = &vgg.layers()[0];
        let healthy = layer_time_ms(&full, Device::Gpu, layer);
        let lost = layer_time_ms(&masked, Device::Gpu, layer);
        assert!((lost / healthy - DISABLED_DEVICE_PENALTY).abs() < 1e-3);
        assert!(lost.is_finite());
        // Untouched devices price identically.
        assert_eq!(
            layer_time_ms(&full, Device::BigCpu, layer),
            layer_time_ms(&masked, Device::BigCpu, layer)
        );
        // The enabled CPUs now beat the lost GPU on every model.
        assert!(
            dnn_time_ms(&masked, Device::LittleCpu, &vgg) < dnn_time_ms(&masked, Device::Gpu, &vgg)
        );
    }

    #[test]
    fn single_inference_latencies_are_plausible() {
        // Order-of-magnitude sanity: VGG-19 on a mobile GPU is a few
        // hundred ms; AlexNet is tens of ms.
        let board = Board::hikey970();
        let vgg = dnn_time_ms(&board, Device::Gpu, &zoo::build(ModelId::Vgg19));
        let alex = dnn_time_ms(&board, Device::Gpu, &zoo::build(ModelId::AlexNet));
        assert!((50.0..2_000.0).contains(&vgg), "vgg19 gpu ms = {vgg}");
        assert!((5.0..500.0).contains(&alex), "alexnet gpu ms = {alex}");
        assert!(vgg > alex);
    }
}
