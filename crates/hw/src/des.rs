//! Discrete-event simulator of the board — the reproduction's equivalent
//! of "deploying the mapping and measuring inferences per second".
//!
//! The multi-DNN mapping induces a closed queueing network: every DNN is
//! a pipeline of sequential stages (one in-flight frame per stage), each
//! stage is served by its computing component under **processor sharing**
//! with the board's saturation inflation, and inter-stage activation
//! transfers ride the shared memory bus. The simulator advances the fluid
//! processor-sharing dynamics event-by-event (next completion) and
//! measures steady-state inferences per second after a warm-up.
//!
//! Saturation is the essential nonlinearity, and it is keyed on the
//! **resident working set**: when the weights + activation buffers of the
//! layers mapped to a device outgrow its reach, service times inflate
//! superlinearly (cache/TLB/memory-controller thrash). That is why a
//! heavy all-on-GPU mapping collapses (the paper's Fig. 5b regime, ~1.3
//! GB resident) while the lighter Fig. 1 mix (~0.8 GB) merely fair-shares
//! — see `DESIGN.md` §5 for the calibration argument. A mild
//! stage-count term models command-queue interference on top.

use crate::board::Board;
use crate::device::Device;
use crate::error::HwError;
use crate::mapping::Mapping;
use crate::noise::NoiseModel;
use crate::profile::LayerTimeTable;
use crate::scheduler::{ThroughputModel, ThroughputReport};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};

const EPS: f64 = 1e-9;

/// Simulation fidelity knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesConfig {
    /// Completions per DNN discarded as pipeline warm-up.
    pub warmup_completions: usize,
    /// Completions per DNN required inside the measurement window.
    pub min_completions: usize,
    /// Hard cap on simulated milliseconds (watchdog).
    pub max_sim_ms: f64,
    /// Measurement jitter applied to profiled layer times.
    pub noise: NoiseModel,
}

impl Default for DesConfig {
    fn default() -> Self {
        Self {
            warmup_completions: 2,
            min_completions: 30,
            max_sim_ms: 2e6,
            noise: NoiseModel::none(),
        }
    }
}

/// Per-device occupancy observed during the measurement window.
///
/// Utilization here is *occupancy* — the fraction of wall-clock time the
/// device had at least one stage in service — which is what a `top`-style
/// monitor on the real board would report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationReport {
    /// Busy-time fraction per device ([`Device::ALL`] order), in `[0, 1]`.
    pub device_busy: [f64; Device::COUNT],
    /// Busy-time fraction of the transfer bus.
    pub bus_busy: f64,
    /// Length of the measurement window in simulated milliseconds.
    pub window_ms: f64,
}

/// The discrete-event board simulator.
///
/// ```
/// use omniboost_hw::{Board, Device, Mapping, ThroughputModel, Workload};
/// use omniboost_models::ModelId;
///
/// let sim = Board::hikey970().simulator();
/// let w = Workload::from_ids([ModelId::SqueezeNet]);
/// let r = sim.evaluate(&w, &Mapping::all_on(&w, Device::BigCpu))?;
/// assert!(r.per_dnn[0] > 0.0);
/// // Occupancy tracing: the big CPU is the only busy component.
/// let (_, util) = sim.evaluate_traced(&w, &Mapping::all_on(&w, Device::BigCpu))?;
/// assert!(util.device_busy[Device::BigCpu.index()] > 0.9);
/// assert_eq!(util.device_busy[Device::Gpu.index()], 0.0);
/// # Ok::<(), omniboost_hw::HwError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DesSimulator {
    board: Board,
    config: DesConfig,
}

struct Stage {
    device: Device,
    service_ms: f64,
    /// Tokens waiting to enter this stage.
    queue: usize,
    /// Remaining work of the token currently in service.
    busy: Option<f64>,
    /// Bus time to ship the activation to the next stage (None for last).
    transfer_ms: Option<f64>,
}

struct Transfer {
    dnn: usize,
    to_stage: usize,
    remaining: f64,
}

impl DesSimulator {
    /// Creates a simulator over a board.
    pub fn new(board: Board, config: DesConfig) -> Self {
        Self { board, config }
    }

    /// The simulated board.
    pub fn board(&self) -> &Board {
        &self.board
    }

    /// The fidelity configuration.
    pub fn config(&self) -> &DesConfig {
        &self.config
    }

    fn build_stages(&self, workload: &Workload, mapping: &Mapping) -> Vec<Vec<Stage>> {
        workload
            .dnns()
            .iter()
            .enumerate()
            .map(|(di, dnn)| {
                let table = LayerTimeTable::profile(&self.board, dnn, self.config.noise);
                let segs = mapping.segments(di);
                let last = segs.len() - 1;
                segs.iter()
                    .enumerate()
                    .map(|(si, seg)| {
                        let service_ms: f64 = (seg.start..seg.end)
                            .map(|l| table.time_ms(seg.device, l))
                            .sum();
                        let transfer_ms = (si != last).then(|| {
                            self.board
                                .bus
                                .transfer_ms(dnn.cut_bytes(seg.end - 1) as u64)
                        });
                        Stage {
                            device: seg.device,
                            service_ms,
                            // Pre-fill: one token per stage puts the closed
                            // pipeline directly near steady state.
                            queue: 1,
                            busy: None,
                            transfer_ms,
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

impl DesSimulator {
    /// Like [`ThroughputModel::evaluate`], additionally returning the
    /// per-device occupancy observed during the measurement window.
    ///
    /// # Errors
    ///
    /// Same as `evaluate`.
    pub fn evaluate_traced(
        &self,
        workload: &Workload,
        mapping: &Mapping,
    ) -> Result<(ThroughputReport, UtilizationReport), HwError> {
        self.run(workload, mapping)
    }

    fn run(
        &self,
        workload: &Workload,
        mapping: &Mapping,
    ) -> Result<(ThroughputReport, UtilizationReport), HwError> {
        self.board.admit(workload)?;
        mapping.validate(workload)?;

        let mut stages = self.build_stages(workload, mapping);
        let m = workload.len();
        let global = self.board.saturation.global_factor(m);

        // Static per-device working-set inflation: the layers a mapping
        // makes resident on a device determine its thrash level for the
        // whole run (weights + activation buffers).
        let mut resident = [0u64; Device::COUNT];
        for (di, dnn) in workload.dnns().iter().enumerate() {
            for (layer, dev) in dnn.layers().iter().zip(&mapping.assignments()[di]) {
                resident[dev.index()] += layer.weight_bytes() + layer.output_bytes() as u64;
            }
        }
        let ws_factor: Vec<f64> = Device::ALL
            .iter()
            .map(|d| {
                self.board
                    .saturation
                    .ws_factor(resident[d.index()], self.board.device(*d).ws_capacity_bytes)
            })
            .collect();

        let mut transfers: Vec<Transfer> = Vec::new();
        let mut now = 0.0f64;
        let mut completions = vec![0usize; m];
        let mut window_start: Option<f64> = None;
        let mut window_base = vec![0usize; m];
        let mut device_completions = [0usize; Device::COUNT];
        let mut busy_ms = [0.0f64; Device::COUNT];
        let mut bus_busy_ms = 0.0f64;
        let window_end = self.config.max_sim_ms;

        // Admit initial tokens into service.
        start_idle_stages(&mut stages);

        loop {
            // Per-device active-stage counts and rates.
            let mut active = [0usize; Device::COUNT];
            for dnn in &stages {
                for st in dnn {
                    if st.busy.is_some() {
                        active[st.device.index()] += 1;
                    }
                }
            }
            let rate: Vec<f64> = Device::ALL
                .iter()
                .map(|d| {
                    let n = active[d.index()];
                    if n == 0 {
                        0.0
                    } else {
                        let knee = self.board.device(*d).saturation_knee;
                        1.0 / (n as f64
                            * self.board.saturation.device_factor(n, knee)
                            * ws_factor[d.index()]
                            * global)
                    }
                })
                .collect();
            let bus_rate = if transfers.is_empty() {
                0.0
            } else {
                1.0 / (transfers.len() as f64 * global)
            };

            // Next completion.
            let mut dt = f64::INFINITY;
            for dnn in &stages {
                for st in dnn {
                    if let Some(rem) = st.busy {
                        dt = dt.min(rem / rate[st.device.index()]);
                    }
                }
            }
            for tr in &transfers {
                dt = dt.min(tr.remaining / bus_rate);
            }
            if !dt.is_finite() {
                // Closed network with tokens should never drain.
                debug_assert!(false, "simulator deadlocked");
                break;
            }
            let dt = dt.min(window_end - now).max(0.0);
            now += dt;
            if window_start.is_some() {
                for d in Device::ALL {
                    if active[d.index()] > 0 {
                        busy_ms[d.index()] += dt;
                    }
                }
                if !transfers.is_empty() {
                    bus_busy_ms += dt;
                }
            }

            // Advance.
            for dnn in stages.iter_mut() {
                for st in dnn.iter_mut() {
                    if let Some(rem) = st.busy.as_mut() {
                        *rem -= dt * rate[st.device.index()];
                    }
                }
            }
            for tr in transfers.iter_mut() {
                tr.remaining -= dt * bus_rate;
            }
            if now >= window_end {
                break;
            }

            // Stage completions.
            let measuring = window_start.is_some();
            let mut new_transfers: Vec<Transfer> = Vec::new();
            for (di, dnn) in stages.iter_mut().enumerate() {
                let last = dnn.len() - 1;
                for si in 0..dnn.len() {
                    let finished = matches!(dnn[si].busy, Some(rem) if rem <= EPS);
                    if !finished {
                        continue;
                    }
                    dnn[si].busy = None;
                    if measuring {
                        device_completions[dnn[si].device.index()] += 1;
                    }
                    if si == last {
                        completions[di] += 1;
                        // Recycle: a fresh input frame enters stage 0.
                        dnn[0].queue += 1;
                    } else {
                        new_transfers.push(Transfer {
                            dnn: di,
                            to_stage: si + 1,
                            remaining: dnn[si].transfer_ms.expect("non-last stage transfers"),
                        });
                    }
                }
            }
            // Transfer completions.
            let mut ti = 0;
            while ti < transfers.len() {
                if transfers[ti].remaining <= EPS {
                    let tr = transfers.swap_remove(ti);
                    stages[tr.dnn][tr.to_stage].queue += 1;
                } else {
                    ti += 1;
                }
            }
            transfers.extend(new_transfers);
            start_idle_stages(&mut stages);

            // Measurement-window state machine.
            if window_start.is_none()
                && completions
                    .iter()
                    .all(|c| *c >= self.config.warmup_completions)
            {
                window_start = Some(now);
                window_base.copy_from_slice(&completions);
            }
            if let Some(ws) = window_start {
                let done = completions
                    .iter()
                    .zip(&window_base)
                    .all(|(c, b)| c - b >= self.config.min_completions);
                if done {
                    break;
                }
                let _ = ws;
            }
        }

        let ws = window_start.unwrap_or(0.0);
        let window = (now - ws).max(EPS);
        let per_dnn: Vec<f64> = completions
            .iter()
            .zip(&window_base)
            .map(|(c, b)| (c - b) as f64 * 1e3 / window)
            .collect();
        let mut per_device = [0.0f64; Device::COUNT];
        for d in Device::ALL {
            per_device[d.index()] = device_completions[d.index()] as f64 * 1e3 / window;
        }
        let utilization = UtilizationReport {
            device_busy: std::array::from_fn(|i| (busy_ms[i] / window).clamp(0.0, 1.0)),
            bus_busy: (bus_busy_ms / window).clamp(0.0, 1.0),
            window_ms: window,
        };
        Ok((ThroughputReport::new(per_dnn, per_device), utilization))
    }
}

impl ThroughputModel for DesSimulator {
    fn evaluate(
        &self,
        workload: &Workload,
        mapping: &Mapping,
    ) -> Result<ThroughputReport, HwError> {
        Ok(self.run(workload, mapping)?.0)
    }

    /// Simulates the batch across worker threads. Each simulation is pure
    /// in `&self`, so results are bitwise identical to the scalar loop —
    /// only wall-clock time changes on multi-core hosts.
    fn evaluate_batch(
        &self,
        workload: &Workload,
        mappings: &[Mapping],
    ) -> Vec<Result<ThroughputReport, HwError>> {
        use rayon::prelude::*;
        if mappings.len() < 2 {
            return mappings
                .iter()
                .map(|m| self.evaluate(workload, m))
                .collect();
        }
        mappings
            .par_iter()
            .map(|m| self.evaluate(workload, m))
            .collect()
    }

    fn model_name(&self) -> &str {
        "des-board"
    }
}

fn start_idle_stages(stages: &mut [Vec<Stage>]) {
    for dnn in stages.iter_mut() {
        for st in dnn.iter_mut() {
            if st.busy.is_none() && st.queue > 0 {
                st.queue -= 1;
                st.busy = Some(st.service_ms);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::solo_throughput;
    use omniboost_models::ModelId;

    fn sim() -> DesSimulator {
        Board::hikey970().simulator()
    }

    #[test]
    fn solo_gpu_matches_cost_model() {
        let s = sim();
        let w = Workload::from_ids([ModelId::AlexNet]);
        let r = s.evaluate(&w, &Mapping::all_on(&w, Device::Gpu)).unwrap();
        let expect = solo_throughput(s.board(), w.dnn(0), Device::Gpu);
        assert!(
            (r.per_dnn[0] - expect).abs() / expect < 0.02,
            "{} vs {}",
            r.per_dnn[0],
            expect
        );
    }

    #[test]
    fn pipeline_beats_single_device_when_balanced() {
        // Split VGG-19 roughly evenly between GPU and big CPU: pipeline
        // throughput should beat... actually the GPU alone is faster than
        // a balanced 2-stage pipeline here; what MUST hold is that the
        // pipeline beats the *slower* device alone.
        let s = sim();
        let w = Workload::from_ids([ModelId::Vgg19]);
        let mut mapping = Mapping::all_on(&w, Device::Gpu);
        for l in 12..24 {
            mapping.assign(0, l, Device::BigCpu);
        }
        let piped = s.evaluate(&w, &mapping).unwrap();
        let big = s
            .evaluate(&w, &Mapping::all_on(&w, Device::BigCpu))
            .unwrap();
        assert!(piped.per_dnn[0] > big.per_dnn[0]);
    }

    #[test]
    fn gpu_saturates_superlinearly() {
        let s = sim();
        let one = Workload::from_ids([ModelId::Vgg16]);
        let r1 = s
            .evaluate(&one, &Mapping::all_on(&one, Device::Gpu))
            .unwrap();
        let four = Workload::from_ids(vec![ModelId::Vgg16; 4]);
        let r4 = s
            .evaluate(&four, &Mapping::all_on(&four, Device::Gpu))
            .unwrap();
        // Fair sharing alone would give 1/4 each; saturation must push
        // well below that.
        assert!(
            r4.per_dnn[0] < r1.per_dnn[0] / 6.0,
            "solo {} vs 4-way {}",
            r1.per_dnn[0],
            r4.per_dnn[0]
        );
    }

    #[test]
    fn spreading_heavy_mix_beats_gpu_stacking() {
        let s = sim();
        // Heavy mix: stacking everything on the GPU overcommits its
        // working-set reach (~1.3 GB vs 0.9 GB) and thrashes.
        let w = Workload::from_ids([
            ModelId::Vgg19,
            ModelId::ResNet50,
            ModelId::InceptionV3,
            ModelId::Vgg16,
        ]);
        let stacked = s.evaluate(&w, &Mapping::all_on(&w, Device::Gpu)).unwrap();
        // Sensible spread: compact nets share the GPU, the VGGs move to
        // the CPU clusters.
        let spread = Mapping::new(vec![
            vec![Device::LittleCpu; 24],
            vec![Device::Gpu; 20],
            vec![Device::Gpu; 20],
            vec![Device::BigCpu; 21],
        ]);
        let rs = s.evaluate(&w, &spread).unwrap();
        assert!(
            rs.average > stacked.average * 1.5,
            "spread {} vs stacked {}",
            rs.average,
            stacked.average
        );
    }

    #[test]
    fn per_device_counts_only_used_devices() {
        let s = sim();
        let w = Workload::from_ids([ModelId::MobileNet]);
        let r = s
            .evaluate(&w, &Mapping::all_on(&w, Device::LittleCpu))
            .unwrap();
        assert_eq!(r.per_device[Device::Gpu.index()], 0.0);
        assert!(r.per_device[Device::LittleCpu.index()] > 0.0);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let s = sim();
        let w = Workload::from_ids([ModelId::AlexNet]);
        let bad = Mapping::new(vec![vec![Device::Gpu; 3]]);
        assert!(matches!(
            s.evaluate(&w, &bad),
            Err(HwError::MappingShape { .. })
        ));
    }

    #[test]
    fn utilization_reflects_the_mapping() {
        let s = sim();
        let w = Workload::from_ids([ModelId::Vgg19]);
        // Single-device mapping: that device is ~fully occupied, others idle,
        // bus untouched (no inter-stage transfers).
        let (_, util) = s
            .evaluate_traced(&w, &Mapping::all_on(&w, Device::Gpu))
            .unwrap();
        assert!(util.device_busy[Device::Gpu.index()] > 0.95);
        assert_eq!(util.device_busy[Device::BigCpu.index()], 0.0);
        assert_eq!(util.bus_busy, 0.0);
        assert!(util.window_ms > 0.0);

        // Two-stage pipeline: both devices busy, bus carries transfers.
        let mut split = Mapping::all_on(&w, Device::Gpu);
        for l in 12..24 {
            split.assign(0, l, Device::BigCpu);
        }
        let (_, util) = s.evaluate_traced(&w, &split).unwrap();
        assert!(util.device_busy[Device::Gpu.index()] > 0.0);
        assert!(util.device_busy[Device::BigCpu.index()] > 0.5, "{util:?}");
        assert!(util.bus_busy > 0.0);
    }

    #[test]
    fn evaluate_batch_matches_scalar_evaluate() {
        // Batched-vs-scalar equivalence: the parallel batch must equal N
        // scalar evaluations within 1e-9 (the simulation is pure in
        // `&self`, so they are bitwise identical).
        use crate::mapping::Mapping;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = sim();
        let w = Workload::from_ids([ModelId::Vgg19, ModelId::ResNet50, ModelId::AlexNet]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut mappings: Vec<Mapping> =
            (0..10).map(|_| Mapping::random(&w, 3, &mut rng)).collect();
        mappings.push(Mapping::all_on(&w, Device::Gpu));
        let batch = s.evaluate_batch(&w, &mappings);
        assert_eq!(batch.len(), mappings.len());
        for (m, b) in mappings.iter().zip(batch) {
            let scalar = s.evaluate(&w, m).unwrap();
            let batched = b.unwrap();
            assert!((scalar.average - batched.average).abs() < 1e-9);
            for (x, y) in scalar.per_dnn.iter().zip(&batched.per_dnn) {
                assert!((x - y).abs() < 1e-9);
            }
            for (x, y) in scalar.per_device.iter().zip(batched.per_device) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn evaluate_batch_reports_errors_individually() {
        let s = sim();
        let w = Workload::from_ids([ModelId::AlexNet]);
        let good = crate::mapping::Mapping::all_on(&w, Device::Gpu);
        let bad = crate::mapping::Mapping::new(vec![vec![Device::Gpu; 3]]);
        let out = s.evaluate_batch(&w, &[good.clone(), bad, good]);
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(HwError::MappingShape { .. })));
        assert!(out[2].is_ok());
    }

    #[test]
    fn deterministic_across_runs() {
        let s = sim();
        let w = Workload::from_ids([ModelId::SqueezeNet, ModelId::AlexNet]);
        let mut mapping = Mapping::all_on(&w, Device::Gpu);
        for l in 10..22 {
            mapping.assign(0, l, Device::BigCpu);
        }
        let a = s.evaluate(&w, &mapping).unwrap();
        let b = s.evaluate(&w, &mapping).unwrap();
        assert_eq!(a.per_dnn, b.per_dnn);
    }
}
