//! Error type shared by board evaluation entry points.

use crate::device::Device;
use std::error::Error;
use std::fmt;

/// Errors produced when evaluating a workload/mapping on the board.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HwError {
    /// The mapping does not cover the workload (wrong number of DNNs or
    /// layers).
    MappingShape {
        /// Expected layer counts per DNN.
        expected: Vec<usize>,
        /// Layer counts found in the mapping.
        found: Vec<usize>,
    },
    /// The workload exceeds the board's concurrency capability, mirroring
    /// the paper's observation that six concurrent DNNs rendered the
    /// HiKey970 unresponsive (§V-A).
    Unresponsive {
        /// Number of concurrent DNNs requested.
        dnns: usize,
        /// Maximum the board sustains.
        max: usize,
    },
    /// The workload's resident working set exceeds board memory.
    OutOfMemory {
        /// Required bytes.
        required: u64,
        /// Available bytes.
        budget: u64,
    },
    /// A mapping references a device the board does not have.
    UnknownDevice(Device),
    /// The workload references a DNN that has not been profiled into the
    /// evaluation model's dataset (the paper's extensibility workflow
    /// requires profiling new models into the embedding tensor first).
    UnknownModel(String),
    /// The workload is empty.
    EmptyWorkload,
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::MappingShape { expected, found } => write!(
                f,
                "mapping shape {found:?} does not match workload layer counts {expected:?}"
            ),
            HwError::Unresponsive { dnns, max } => write!(
                f,
                "board unresponsive: {dnns} concurrent DNNs exceed the sustainable {max}"
            ),
            HwError::OutOfMemory { required, budget } => write!(
                f,
                "workload needs {required} bytes resident, board has {budget}"
            ),
            HwError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            HwError::UnknownModel(name) => {
                write!(f, "model `{name}` has not been profiled into the dataset")
            }
            HwError::EmptyWorkload => write!(f, "workload contains no DNNs"),
        }
    }
}

impl Error for HwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = HwError::Unresponsive { dnns: 6, max: 5 };
        assert!(e.to_string().contains("unresponsive"));
        let e = HwError::EmptyWorkload;
        assert!(e.to_string().contains("no DNNs"));
    }
}
