//! Layer-to-device mappings and their pipeline-segment structure.

use crate::device::Device;
use crate::error::HwError;
use crate::workload::Workload;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A contiguous run of layers of one DNN assigned to a single device —
/// one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Segment {
    /// Device executing the stage.
    pub device: Device,
    /// First layer index (inclusive).
    pub start: usize,
    /// One past the last layer index (exclusive).
    pub end: usize,
}

impl Segment {
    /// Number of layers in the stage.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the stage is empty (never produced by segmentation).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Assignment of every layer of every DNN in a workload to a device.
///
/// The partition point of each DNN is a free variable (unlike static
/// conv-to-GPU policies); consecutive layers on different devices induce a
/// pipeline stage boundary with an activation transfer.
///
/// ```
/// use omniboost_hw::{Device, Mapping, Workload};
/// use omniboost_models::ModelId;
///
/// let w = Workload::from_ids([ModelId::AlexNet]);
/// let mut m = Mapping::all_on(&w, Device::Gpu);
/// // Cut AlexNet after layer 3: first 4 layers on GPU, rest on big CPU.
/// for l in 4..11 {
///     m.assign(0, l, Device::BigCpu);
/// }
/// assert_eq!(m.segments(0).len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapping {
    assignments: Vec<Vec<Device>>,
}

impl Mapping {
    /// Creates a mapping from explicit per-DNN, per-layer device lists.
    pub fn new(assignments: Vec<Vec<Device>>) -> Self {
        Self { assignments }
    }

    /// Maps every layer of every DNN onto one device (the paper's
    /// "common scheduling approach" baseline uses `Device::Gpu`).
    pub fn all_on(workload: &Workload, device: Device) -> Self {
        Self {
            assignments: workload
                .layer_counts()
                .into_iter()
                .map(|n| vec![device; n])
                .collect(),
        }
    }

    /// Uniformly random assignment, segment-structured: each DNN gets
    /// 1..=`max_stages` contiguous stages on randomly drawn devices
    /// (consecutive stages on distinct devices).
    pub fn random<R: Rng + ?Sized>(workload: &Workload, max_stages: usize, rng: &mut R) -> Self {
        let assignments = workload
            .dnns()
            .iter()
            .map(|dnn| {
                let n = dnn.num_layers();
                let stages = rng.gen_range(1..=max_stages.min(n));
                // Choose stage cut points: distinct positions in 1..n.
                let mut cuts: Vec<usize> = (1..n).collect();
                cuts.shuffle(rng);
                let mut cuts: Vec<usize> = cuts.into_iter().take(stages - 1).collect();
                cuts.sort_unstable();
                cuts.push(n);
                let mut devices = Vec::with_capacity(n);
                let mut prev_dev: Option<Device> = None;
                let mut start = 0usize;
                for end in cuts {
                    let dev = loop {
                        let d = Device::ALL[rng.gen_range(0..Device::COUNT)];
                        if Some(d) != prev_dev {
                            break d;
                        }
                    };
                    devices.extend(std::iter::repeat_n(dev, end - start));
                    prev_dev = Some(dev);
                    start = end;
                }
                devices
            })
            .collect();
        Self { assignments }
    }

    /// Per-DNN assignments.
    pub fn assignments(&self) -> &[Vec<Device>] {
        &self.assignments
    }

    /// Device of one layer.
    pub fn device(&self, dnn: usize, layer: usize) -> Device {
        self.assignments[dnn][layer]
    }

    /// Reassigns one layer.
    pub fn assign(&mut self, dnn: usize, layer: usize, device: Device) {
        self.assignments[dnn][layer] = device;
    }

    /// Number of DNNs covered.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the mapping covers no DNNs.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Checks that this mapping matches the workload's shape.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::MappingShape`] on any mismatch and
    /// [`HwError::EmptyWorkload`] for empty workloads.
    pub fn validate(&self, workload: &Workload) -> Result<(), HwError> {
        if workload.is_empty() {
            return Err(HwError::EmptyWorkload);
        }
        let expected = workload.layer_counts();
        let found: Vec<usize> = self.assignments.iter().map(Vec::len).collect();
        if expected != found {
            return Err(HwError::MappingShape { expected, found });
        }
        Ok(())
    }

    /// Pipeline segments (stages) of one DNN: maximal contiguous runs of
    /// layers on the same device.
    pub fn segments(&self, dnn: usize) -> Vec<Segment> {
        let devs = &self.assignments[dnn];
        let mut out = Vec::new();
        let mut start = 0usize;
        for i in 1..=devs.len() {
            if i == devs.len() || devs[i] != devs[start] {
                out.push(Segment {
                    device: devs[start],
                    start,
                    end: i,
                });
                start = i;
            }
        }
        out
    }

    /// Number of pipeline stages of one DNN.
    pub fn stage_count(&self, dnn: usize) -> usize {
        self.segments(dnn).len()
    }

    /// The largest per-DNN stage count — the quantity the MCTS losing
    /// rule compares against the device count `x` (§IV-C).
    pub fn max_stages(&self) -> usize {
        (0..self.assignments.len())
            .map(|d| self.stage_count(d))
            .max()
            .unwrap_or(0)
    }

    /// Devices used by at least one layer.
    pub fn devices_used(&self) -> Vec<Device> {
        let mut used = [false; Device::COUNT];
        for devs in &self.assignments {
            for d in devs {
                used[d.index()] = true;
            }
        }
        Device::ALL
            .into_iter()
            .filter(|d| used[d.index()])
            .collect()
    }

    /// Migration cost against a previous mapping: the number of layers
    /// whose device changed, pairing this mapping's DNN `i` with the
    /// previous mapping's DNN `pairing[i]` (`None` marks a newly arrived
    /// DNN, which has nothing to migrate and contributes 0). Layers are
    /// compared positionally — the pairing must reference a DNN of the
    /// same architecture, which online rescheduling guarantees because
    /// jobs keep their model across events.
    ///
    /// This is the stability half of the serving latency/stability
    /// frontier: every counted layer means weights re-uploaded and a
    /// pipeline re-plumbed on the board.
    ///
    /// # Panics
    ///
    /// Panics if `pairing` is shorter than this mapping or pairs DNNs
    /// whose layer counts differ.
    pub fn migrated_layers(&self, previous: &Mapping, pairing: &[Option<usize>]) -> usize {
        assert!(pairing.len() >= self.assignments.len(), "pairing too short");
        self.assignments
            .iter()
            .zip(pairing)
            .map(|(devs, pair)| match pair {
                Some(j) => {
                    let prev = &previous.assignments[*j];
                    assert_eq!(devs.len(), prev.len(), "paired DNNs must match shape");
                    devs.iter().zip(prev).filter(|(a, b)| a != b).count()
                }
                None => 0,
            })
            .sum()
    }

    /// Total layers assigned to `device` across the workload.
    pub fn layers_on(&self, device: Device) -> usize {
        self.assignments
            .iter()
            .flat_map(|v| v.iter())
            .filter(|d| **d == device)
            .count()
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, _) in self.assignments.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "dnn{i}: ")?;
            for (s, seg) in self.segments(i).iter().enumerate() {
                if s > 0 {
                    write!(f, " -> ")?;
                }
                write!(f, "[{}..{}) on {}", seg.start, seg.end, seg.device)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omniboost_models::ModelId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload() -> Workload {
        Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet])
    }

    #[test]
    fn all_on_is_single_stage() {
        let w = workload();
        let m = Mapping::all_on(&w, Device::Gpu);
        assert_eq!(m.max_stages(), 1);
        assert_eq!(m.devices_used(), vec![Device::Gpu]);
        m.validate(&w).unwrap();
    }

    #[test]
    fn segments_split_on_device_change() {
        let w = workload();
        let mut m = Mapping::all_on(&w, Device::Gpu);
        m.assign(0, 5, Device::BigCpu);
        let segs = m.segments(0);
        assert_eq!(segs.len(), 3);
        assert_eq!(
            segs[1],
            Segment {
                device: Device::BigCpu,
                start: 5,
                end: 6
            }
        );
        assert_eq!(m.stage_count(1), 1);
        assert_eq!(m.max_stages(), 3);
    }

    #[test]
    fn validate_rejects_wrong_shape() {
        let w = workload();
        let m = Mapping::new(vec![vec![Device::Gpu; 3]]);
        assert!(matches!(m.validate(&w), Err(HwError::MappingShape { .. })));
    }

    #[test]
    fn random_respects_stage_cap() {
        let w = workload();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let m = Mapping::random(&w, 3, &mut rng);
            m.validate(&w).unwrap();
            assert!(m.max_stages() <= 3, "{m}");
        }
    }

    #[test]
    fn random_consecutive_stages_use_distinct_devices() {
        let w = workload();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let m = Mapping::random(&w, 3, &mut rng);
            for d in 0..w.len() {
                let segs = m.segments(d);
                for pair in segs.windows(2) {
                    assert_ne!(pair[0].device, pair[1].device);
                }
            }
        }
    }

    #[test]
    fn migrated_layers_counts_device_changes() {
        let w = workload();
        let prev = Mapping::all_on(&w, Device::Gpu);
        let mut next = prev.clone();
        next.assign(0, 3, Device::BigCpu);
        next.assign(1, 0, Device::LittleCpu);
        // Identity pairing: two layers moved.
        assert_eq!(next.migrated_layers(&prev, &[Some(0), Some(1)]), 2);
        assert_eq!(prev.migrated_layers(&prev, &[Some(0), Some(1)]), 0);
        // DNN 1 newly arrived: only DNN 0's move counts.
        assert_eq!(next.migrated_layers(&prev, &[Some(0), None]), 1);
        // Cross pairing after a departure: new DNN 0 was previous DNN 1.
        let single = Mapping::new(vec![vec![Device::Gpu; 22]]);
        let w1 = Workload::from_ids([ModelId::SqueezeNet]);
        single.validate(&w1).unwrap();
        assert_eq!(single.migrated_layers(&next, &[Some(1)]), 1);
    }

    #[test]
    fn layers_on_counts_assignments() {
        let w = workload();
        let mut m = Mapping::all_on(&w, Device::Gpu);
        m.assign(0, 0, Device::LittleCpu);
        assert_eq!(m.layers_on(Device::LittleCpu), 1);
        assert_eq!(m.layers_on(Device::Gpu), w.total_layers() - 1);
    }
}
