//! Scheduler and throughput-model abstractions shared by OmniBoost and
//! every baseline.

use crate::board::Board;
use crate::device::Device;
use crate::error::HwError;
use crate::mapping::Mapping;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};

/// Result of evaluating a (workload, mapping) pair.
///
/// `average` is the paper's objective `T = (Σ_m INF_m/sec) / M` (§V-A);
/// `per_device` matches the estimator's three outputs (per-component
/// throughput, §IV-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Inferences per second achieved by each DNN in the workload.
    pub per_dnn: Vec<f64>,
    /// Stage completions per second hosted by each device
    /// ([`Device::ALL`] order).
    pub per_device: [f64; Device::COUNT],
    /// The paper's average-throughput objective `T`.
    pub average: f64,
}

impl ThroughputReport {
    /// Assembles a report, deriving `average` from `per_dnn`.
    pub fn new(per_dnn: Vec<f64>, per_device: [f64; Device::COUNT]) -> Self {
        let average = if per_dnn.is_empty() {
            0.0
        } else {
            per_dnn.iter().sum::<f64>() / per_dnn.len() as f64
        };
        Self {
            per_dnn,
            per_device,
            average,
        }
    }
}

/// Anything that can predict (or measure) the throughput of a mapping.
///
/// Two families implement this: *oracles* (the discrete-event simulator —
/// our stand-in for running on the physical board) and *estimators* (the
/// paper's CNN, the analytic solver, MOSAIC's linear regression). The
/// MCTS explorer is generic over this trait, which is what makes the
/// estimator-vs-oracle ablation possible.
pub trait ThroughputModel {
    /// Evaluates a mapping of the workload.
    ///
    /// # Errors
    ///
    /// Implementations return [`HwError`] for shape mismatches, empty or
    /// inadmissible workloads.
    fn evaluate(&self, workload: &Workload, mapping: &Mapping)
        -> Result<ThroughputReport, HwError>;

    /// Evaluates many mappings of the same workload in one call — the
    /// amortization point of the batched scheduling pipeline (§V-B's
    /// bottleneck is ~500 estimator queries per decision).
    ///
    /// The default loops over [`ThroughputModel::evaluate`]; models with a
    /// cheaper batch path (minibatched CNN forward, parallel simulation)
    /// override it. Implementations must be *observationally equivalent*
    /// to the scalar loop: element `i` of the result equals
    /// `self.evaluate(workload, &mappings[i])`.
    fn evaluate_batch(
        &self,
        workload: &Workload,
        mappings: &[Mapping],
    ) -> Vec<Result<ThroughputReport, HwError>> {
        mappings
            .iter()
            .map(|m| self.evaluate(workload, m))
            .collect()
    }

    /// Short human-readable name for reports.
    fn model_name(&self) -> &str {
        "throughput-model"
    }
}

impl<T: ThroughputModel + ?Sized> ThroughputModel for &T {
    fn evaluate(
        &self,
        workload: &Workload,
        mapping: &Mapping,
    ) -> Result<ThroughputReport, HwError> {
        (**self).evaluate(workload, mapping)
    }

    fn evaluate_batch(
        &self,
        workload: &Workload,
        mappings: &[Mapping],
    ) -> Vec<Result<ThroughputReport, HwError>> {
        (**self).evaluate_batch(workload, mappings)
    }

    fn model_name(&self) -> &str {
        (**self).model_name()
    }
}

/// Counters of a cross-decision evaluation cache (see
/// `omniboost_estimator`'s `EvalCache`): how many evaluator queries were
/// answered from the cache, how many reached the model, and how many
/// entries the bounded cache evicted to stay within capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EvalCacheStats {
    /// Queries answered from the cache without touching the evaluator.
    pub hits: u64,
    /// Queries that reached the evaluator (and populated the cache).
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
}

impl EvalCacheStats {
    /// Sums two counter sets — folding per-board caches into one fleet
    /// view (`stats.fold(EvalCacheStats::default(), EvalCacheStats::merge)`).
    pub fn merge(self, other: Self) -> Self {
        Self {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
        }
    }

    /// Fraction of lookups answered from the cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A multi-DNN scheduler: given a board and a workload, produce a mapping.
///
/// Implemented by OmniBoost itself and by every baseline of §V
/// (GPU-only, MOSAIC, the genetic algorithm).
pub trait Scheduler {
    /// Scheduler name as it appears in the paper's figures.
    fn name(&self) -> &str;

    /// Decides a layer-to-device mapping for the workload.
    ///
    /// # Errors
    ///
    /// Returns [`HwError`] if the workload is inadmissible for the board.
    fn decide(&mut self, board: &Board, workload: &Workload) -> Result<Mapping, HwError>;

    /// Cumulative counters of the scheduler's cross-decision evaluation
    /// cache, if it has one (`None` for cache-less schedulers). Surfaced
    /// on `RunOutcome` next to the runtime's decision-memo stats so
    /// serving-path cache effectiveness is observable per run.
    fn eval_cache_stats(&self) -> Option<EvalCacheStats> {
        None
    }

    /// Extra state the runtime must fold into its decision-memo key
    /// beyond the scheduler name and workload shape. `0` — the default —
    /// means the next decision depends on nothing else; schedulers whose
    /// decisions are steered by armed per-call context (e.g. SLO floor
    /// vectors) return a digest of that context so a memoized mapping is
    /// only ever replayed under the exact context that produced it.
    fn memo_salt(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_is_mean_of_per_dnn() {
        let r = ThroughputReport::new(vec![2.0, 4.0], [0.0; 3]);
        assert_eq!(r.average, 3.0);
    }

    #[test]
    fn empty_report_has_zero_average() {
        let r = ThroughputReport::new(vec![], [0.0; 3]);
        assert_eq!(r.average, 0.0);
    }
}
