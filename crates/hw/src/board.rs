//! The board: device specs, interconnect, memory and saturation behaviour.

use crate::des::DesSimulator;
use crate::device::{Device, DeviceKind, DeviceSpec};
use crate::error::HwError;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};

/// Shared memory bus / interconnect carrying inter-stage activation
/// transfers (CPU↔GPU traffic crosses the SoC's coherent interconnect).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusSpec {
    /// Sustained transfer bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Fixed per-transfer latency in milliseconds (driver + cache
    /// maintenance; dominates small transfers).
    pub latency_ms: f64,
}

impl BusSpec {
    /// Time in milliseconds to move `bytes` across the bus.
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        self.latency_ms + bytes as f64 / (self.bandwidth_gbs * 1e6)
    }
}

/// Memory-controller saturation behaviour.
///
/// When the number of concurrently active pipeline stages on a device
/// exceeds its knee, effective service rates degrade superlinearly —
/// the mechanism behind the paper's observation that mapping everything
/// on the GPU "saturates" it (§I) and that 4-DNN all-GPU baselines
/// collapse (Fig. 5b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaturationModel {
    /// Penalty slope per excess concurrent stage on a device (quadratic,
    /// mild): command-queue / scheduler interference.
    pub count_alpha: f64,
    /// Cap on the count-based excess inflation.
    pub count_max_excess: f64,
    /// Penalty slope on relative working-set overcommit (quadratic,
    /// strong): cache/TLB/memory-controller thrash once the layers
    /// resident on a device outgrow its [`crate::DeviceSpec::ws_capacity_bytes`].
    pub ws_alpha: f64,
    /// Cap on the working-set excess inflation (thrash plateaus once
    /// every access misses).
    pub ws_max_excess: f64,
    /// Global penalty slope per concurrent DNN beyond the comfortable
    /// count (models memory-controller pressure shared by all devices).
    pub global_alpha: f64,
    /// Concurrent-DNN count beyond which the global penalty applies.
    pub global_knee: usize,
}

impl SaturationModel {
    /// Count-based service-time inflation for a device hosting `active`
    /// stages with saturation knee `knee`.
    pub fn device_factor(&self, active: usize, knee: usize) -> f64 {
        let excess = active.saturating_sub(knee) as f64;
        1.0 + (self.count_alpha * excess * excess).min(self.count_max_excess)
    }

    /// Working-set inflation for a device with `resident` bytes of mapped
    /// layers against `capacity` bytes of comfortable reach.
    pub fn ws_factor(&self, resident: u64, capacity: u64) -> f64 {
        if capacity == 0 || resident <= capacity {
            return 1.0;
        }
        let excess = resident as f64 / capacity as f64 - 1.0;
        1.0 + (self.ws_alpha * excess * excess).min(self.ws_max_excess)
    }

    /// Global inflation factor for `dnns` concurrent networks.
    pub fn global_factor(&self, dnns: usize) -> f64 {
        let excess = dnns.saturating_sub(self.global_knee) as f64;
        1.0 + self.global_alpha * excess
    }
}

/// A heterogeneous embedded board: three computing components, a shared
/// interconnect, a memory budget and a concurrency ceiling.
///
/// ```
/// use omniboost_hw::{Board, Device};
///
/// let board = Board::hikey970();
/// assert!(board.device(Device::Gpu).peak_gflops > board.device(Device::BigCpu).peak_gflops);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Board {
    devices: [DeviceSpec; Device::COUNT],
    /// Per-device availability mask: `true` marks a component lost to a
    /// partial failure (driver crash, thermal shutdown of one
    /// accelerator). The device keeps its slot — `Device::COUNT` layout,
    /// mappings and caches stay shape-compatible — but every kernel
    /// priced on it is penalized so hard
    /// ([`crate::cost::DISABLED_DEVICE_PENALTY`]) that searches,
    /// analytic evaluation and the DES all route around it, and
    /// [`Board::total_peak_gflops`] no longer counts its capacity.
    disabled: [bool; Device::COUNT],
    /// Interconnect carrying pipeline-stage transfers.
    pub bus: BusSpec,
    /// Saturation behaviour.
    pub saturation: SaturationModel,
    /// Bytes of memory available to DNN working sets.
    pub memory_budget_bytes: u64,
    /// Maximum concurrent DNNs before the board becomes unresponsive
    /// (the paper observed 6 to be fatal on the HiKey970).
    pub max_concurrent_dnns: usize,
}

impl Board {
    /// The calibrated HiKey970 stand-in used throughout the reproduction.
    ///
    /// Calibration targets (see DESIGN.md §5): GPU ≫ big ≫ LITTLE on a
    /// single heavy DNN; GPU collapses superlinearly past one resident
    /// heavy stage; the board refuses more than five concurrent DNNs.
    pub fn hikey970() -> Self {
        Self {
            devices: [
                DeviceSpec {
                    name: "Mali-G72 MP12".into(),
                    kind: DeviceKind::EmbeddedGpu,
                    peak_gflops: 240.0,
                    mem_bandwidth_gbs: 12.0,
                    kernel_overhead_ms: 0.06,
                    saturation_knee: 1,
                    ws_capacity_bytes: 900 << 20,
                },
                DeviceSpec {
                    name: "Cortex-A73 x4 @ 2.36 GHz".into(),
                    kind: DeviceKind::BigCore,
                    peak_gflops: 38.0,
                    mem_bandwidth_gbs: 8.0,
                    kernel_overhead_ms: 0.008,
                    saturation_knee: 2,
                    ws_capacity_bytes: 350 << 20,
                },
                DeviceSpec {
                    name: "Cortex-A53 x4 @ 1.8 GHz".into(),
                    kind: DeviceKind::LittleCore,
                    peak_gflops: 11.0,
                    mem_bandwidth_gbs: 5.0,
                    kernel_overhead_ms: 0.008,
                    saturation_knee: 2,
                    ws_capacity_bytes: 250 << 20,
                },
            ],
            disabled: [false; Device::COUNT],
            bus: BusSpec {
                bandwidth_gbs: 6.0,
                latency_ms: 0.25,
            },
            saturation: SaturationModel {
                count_alpha: 0.01,
                count_max_excess: 1.5,
                ws_alpha: 4.0,
                ws_max_excess: 2.2,
                global_alpha: 0.15,
                global_knee: 3,
            },
            // 4 GiB usable by DNN working sets (6 GB LPDDR4X minus OS +
            // framework overhead).
            memory_budget_bytes: 4 * 1024 * 1024 * 1024,
            max_concurrent_dnns: 5,
        }
    }

    /// A **degraded** HiKey970 profile for heterogeneous fleets: the
    /// same SoC with the GPU thermally capped to ~40% of its peak, the
    /// big-core cluster halved (two of four A73s parked), a slower
    /// interconnect and a tighter concurrency ceiling — the kind of
    /// binned/throttled board a real deployment mixes with full ones.
    ///
    /// Placement scoring stays honest across the mix because
    /// [`Board::load_score_flops`] normalizes by each board's own
    /// [`Board::total_peak_gflops`]: a job that is "one of three" on a
    /// lite board costs more headroom than on a full board, so
    /// least-loaded placement compares true throughput headroom rather
    /// than job counts.
    pub fn hikey970_lite() -> Self {
        let mut board = Self::hikey970();
        {
            let gpu = &mut board.devices[Device::Gpu.index()];
            gpu.name = "Mali-G72 MP12 (capped)".into();
            gpu.peak_gflops = 96.0;
            gpu.mem_bandwidth_gbs = 8.0;
        }
        {
            let big = &mut board.devices[Device::BigCpu.index()];
            big.name = "Cortex-A73 x2 @ 2.36 GHz".into();
            big.peak_gflops = 19.0;
            big.saturation_knee = 1;
        }
        board.bus.bandwidth_gbs = 4.0;
        board.memory_budget_bytes = 3 * 1024 * 1024 * 1024;
        board.max_concurrent_dnns = 4;
        board
    }

    /// A **device-loss** brown-out profile: the full HiKey970 with its
    /// GPU masked out (driver crash / thermal shutdown of the Mali
    /// alone). The device keeps its slot so mappings and caches stay
    /// shape-compatible, but capacity, placement scoring and every
    /// evaluation path see the loss; the concurrency ceiling drops with
    /// the compute (two CPU clusters cannot carry five DNNs).
    pub fn hikey970_gpu_down() -> Self {
        let mut board = Self::hikey970();
        board.disabled[Device::Gpu.index()] = true;
        board.max_concurrent_dnns = 3;
        board
    }

    /// Returns this board with `device` masked out (see
    /// [`Board::hikey970_gpu_down`] for the semantics).
    ///
    /// # Panics
    ///
    /// Panics if the mask would disable every device — a board with no
    /// compute cannot serve anything.
    pub fn with_device_disabled(mut self, device: Device) -> Self {
        self.disabled[device.index()] = true;
        assert!(
            self.disabled.iter().any(|d| !d),
            "cannot disable every device"
        );
        self
    }

    /// Whether `device` is available (not lost to a partial failure).
    pub fn device_enabled(&self, device: Device) -> bool {
        !self.disabled[device.index()]
    }

    /// Spec of one computing component.
    pub fn device(&self, d: Device) -> &DeviceSpec {
        &self.devices[d.index()]
    }

    /// All device specs in [`Device::ALL`] order.
    pub fn devices(&self) -> &[DeviceSpec; Device::COUNT] {
        &self.devices
    }

    /// Admission control: checks the workload is runnable at all,
    /// regardless of mapping.
    ///
    /// # Errors
    ///
    /// [`HwError::EmptyWorkload`], [`HwError::Unresponsive`] (too many
    /// concurrent DNNs) or [`HwError::OutOfMemory`].
    pub fn admit(&self, workload: &Workload) -> Result<(), HwError> {
        self.admit_totals(workload.len(), workload.total_weight_bytes())
    }

    /// [`Board::admit`] from pre-aggregated totals — admission only ever
    /// looks at the DNN count and the resident weight bytes, so callers
    /// that track those incrementally (fleet placement probing every
    /// board per arrival) can check admission without materializing a
    /// hypothetical [`Workload`].
    ///
    /// # Errors
    ///
    /// Same as [`Board::admit`].
    pub fn admit_totals(&self, dnns: usize, weight_bytes: u64) -> Result<(), HwError> {
        if dnns == 0 {
            return Err(HwError::EmptyWorkload);
        }
        if dnns > self.max_concurrent_dnns {
            return Err(HwError::Unresponsive {
                dnns,
                max: self.max_concurrent_dnns,
            });
        }
        if weight_bytes > self.memory_budget_bytes {
            return Err(HwError::OutOfMemory {
                required: weight_bytes,
                budget: self.memory_budget_bytes,
            });
        }
        Ok(())
    }

    /// The board's discrete-event simulator with default fidelity — the
    /// reproduction's equivalent of "running on the board".
    pub fn simulator(&self) -> DesSimulator {
        DesSimulator::new(self.clone(), crate::des::DesConfig::default())
    }

    /// Combined peak compute across the board's components, in GFLOP/s —
    /// the capacity denominator fleet placement uses to score load on
    /// possibly heterogeneous boards.
    pub fn total_peak_gflops(&self) -> f64 {
        self.devices
            .iter()
            .zip(&self.disabled)
            .filter(|(_, off)| !**off)
            .map(|(d, _)| d.peak_gflops)
            .sum()
    }

    /// A load proxy for fleet placement: seconds of aggregate peak
    /// compute one inference of every DNN in `workload` would consume on
    /// this board (0 for an empty workload). Lower means more headroom;
    /// comparable across boards of different sizes because the
    /// denominator is each board's own capacity.
    pub fn load_score(&self, workload: &Workload) -> f64 {
        self.load_score_flops(workload.dnns().iter().map(|d| d.total_flops()).sum())
    }

    /// [`Board::load_score`] from a pre-aggregated FLOP total (see
    /// [`Board::admit_totals`] for why callers track totals).
    pub fn load_score_flops(&self, flops: u64) -> f64 {
        flops as f64 / (self.total_peak_gflops() * 1e9).max(1.0)
    }

    /// Stable 64-bit fingerprint of the full hardware description —
    /// every device spec, the bus, the saturation model and the board
    /// limits. Process-independent (FNV-1a over a canonical byte
    /// encoding), so persisted caches keyed on it can be validated
    /// against the board they were collected on across process restarts.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = crate::Fnv1a::default();
        let f = |h: &mut crate::Fnv1a, v: f64| h.write(&v.to_bits().to_le_bytes());
        for d in &self.devices {
            h.write(d.name.as_bytes());
            h.write(&[0xFF, d.kind as u8]);
            f(&mut h, d.peak_gflops);
            f(&mut h, d.mem_bandwidth_gbs);
            f(&mut h, d.kernel_overhead_ms);
            h.write(&(d.saturation_knee as u64).to_le_bytes());
            h.write(&d.ws_capacity_bytes.to_le_bytes());
        }
        f(&mut h, self.bus.bandwidth_gbs);
        f(&mut h, self.bus.latency_ms);
        f(&mut h, self.saturation.count_alpha);
        f(&mut h, self.saturation.count_max_excess);
        f(&mut h, self.saturation.ws_alpha);
        f(&mut h, self.saturation.ws_max_excess);
        f(&mut h, self.saturation.global_alpha);
        h.write(&(self.saturation.global_knee as u64).to_le_bytes());
        h.write(&self.memory_budget_bytes.to_le_bytes());
        h.write(&(self.max_concurrent_dnns as u64).to_le_bytes());
        // Only an active mask contributes bytes: unmasked boards keep
        // the fingerprints (and cache-archive segments) they had before
        // device masking existed.
        if self.disabled.iter().any(|d| *d) {
            h.write(b"disabled");
            for off in &self.disabled {
                h.write(&[*off as u8]);
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omniboost_models::ModelId;

    #[test]
    fn hikey970_performance_ordering() {
        let b = Board::hikey970();
        assert!(b.device(Device::Gpu).peak_gflops > b.device(Device::BigCpu).peak_gflops);
        assert!(b.device(Device::BigCpu).peak_gflops > b.device(Device::LittleCpu).peak_gflops);
    }

    #[test]
    fn six_dnns_are_unresponsive() {
        let b = Board::hikey970();
        let w = Workload::from_ids(vec![ModelId::AlexNet; 6]);
        assert!(matches!(
            b.admit(&w),
            Err(HwError::Unresponsive { dnns: 6, max: 5 })
        ));
    }

    #[test]
    fn five_dnns_are_admitted() {
        let b = Board::hikey970();
        let w = Workload::from_ids(vec![ModelId::Vgg19; 5]);
        b.admit(&w).unwrap();
    }

    #[test]
    fn empty_workload_rejected() {
        let b = Board::hikey970();
        assert_eq!(b.admit(&Workload::new(vec![])), Err(HwError::EmptyWorkload));
    }

    #[test]
    fn saturation_factors_grow() {
        let s = Board::hikey970().saturation;
        assert_eq!(s.device_factor(1, 1), 1.0);
        assert!(s.device_factor(3, 1) > s.device_factor(2, 1));
        assert!(s.global_factor(5) > s.global_factor(4));
        assert_eq!(s.global_factor(2), 1.0);
    }

    #[test]
    fn ws_factor_kicks_in_past_capacity() {
        let s = Board::hikey970().saturation;
        let gib = 1u64 << 30;
        assert_eq!(s.ws_factor(gib / 2, gib), 1.0);
        assert_eq!(s.ws_factor(gib, gib), 1.0);
        let f15 = s.ws_factor(gib + gib / 2, gib);
        let f20 = s.ws_factor(2 * gib, gib);
        assert!(f15 > 1.5, "50% overcommit should hurt: {f15}");
        assert!(f20 > f15);
        // The cap binds eventually.
        assert_eq!(s.ws_factor(100 * gib, gib), 1.0 + s.ws_max_excess);
    }

    #[test]
    fn count_factor_is_mild() {
        // Fair sharing must dominate the count penalty (Fig. 1 regime).
        let s = Board::hikey970().saturation;
        assert!(s.device_factor(4, 1) < 1.6);
    }

    #[test]
    fn fingerprint_distinguishes_hardware() {
        let a = Board::hikey970();
        assert_eq!(a.fingerprint(), Board::hikey970().fingerprint());
        let mut b = Board::hikey970();
        b.max_concurrent_dnns += 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = Board::hikey970();
        c.bus.latency_ms += 0.01;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn lite_profile_is_strictly_weaker_and_fingerprints_apart() {
        let full = Board::hikey970();
        let lite = Board::hikey970_lite();
        assert!(lite.total_peak_gflops() < full.total_peak_gflops());
        assert!(lite.max_concurrent_dnns < full.max_concurrent_dnns);
        assert_ne!(full.fingerprint(), lite.fingerprint());
        assert_eq!(lite.fingerprint(), Board::hikey970_lite().fingerprint());
        // The same workload consumes more of the lite board's headroom,
        // which is what makes least-loaded placement profile-aware.
        let w = Workload::from_ids([ModelId::ResNet34]);
        assert!(lite.load_score(&w) > full.load_score(&w));
    }

    #[test]
    fn device_mask_drops_capacity_and_changes_the_fingerprint() {
        let full = Board::hikey970();
        let masked = Board::hikey970_gpu_down();
        assert!(full.device_enabled(Device::Gpu));
        assert!(!masked.device_enabled(Device::Gpu));
        assert!(masked.device_enabled(Device::BigCpu));
        // Capacity loses exactly the GPU's contribution.
        let gpu = full.device(Device::Gpu).peak_gflops;
        assert!((full.total_peak_gflops() - masked.total_peak_gflops() - gpu).abs() < 1e-9);
        // Masked boards fingerprint apart (cache segments must not mix)
        // and deterministically.
        assert_ne!(full.fingerprint(), masked.fingerprint());
        assert_eq!(
            masked.fingerprint(),
            Board::hikey970_gpu_down().fingerprint()
        );
        assert_ne!(
            masked.fingerprint(),
            Board::hikey970()
                .with_device_disabled(Device::BigCpu)
                .fingerprint()
        );
        // The same workload consumes more of the masked board's headroom.
        let w = Workload::from_ids([ModelId::ResNet34]);
        assert!(masked.load_score(&w) > full.load_score(&w));
    }

    #[test]
    #[should_panic(expected = "cannot disable every device")]
    fn disabling_every_device_panics() {
        let _ = Board::hikey970()
            .with_device_disabled(Device::Gpu)
            .with_device_disabled(Device::BigCpu)
            .with_device_disabled(Device::LittleCpu);
    }

    #[test]
    fn load_score_grows_with_workload() {
        let b = Board::hikey970();
        assert_eq!(b.load_score(&Workload::new(vec![])), 0.0);
        let light = b.load_score(&Workload::from_ids([ModelId::SqueezeNet]));
        let heavy = b.load_score(&Workload::from_ids([ModelId::SqueezeNet, ModelId::Vgg19]));
        assert!(light > 0.0);
        assert!(heavy > light);
        assert!(b.total_peak_gflops() > 240.0, "sum across components");
    }

    #[test]
    fn transfer_time_has_latency_floor() {
        let bus = Board::hikey970().bus;
        assert!(bus.transfer_ms(0) >= 0.25);
        assert!(bus.transfer_ms(60_000_000) > 10.0 * bus.transfer_ms(0));
    }
}
