//! Design-time kernel profiling: produces the per-layer, per-device
//! execution-time tables that feed the distributed embeddings tensor
//! (§IV-A of the paper).

use crate::board::Board;
use crate::cost;
use crate::device::Device;
use crate::noise::NoiseModel;
use omniboost_models::DnnModel;
use serde::{Deserialize, Serialize};

/// Per-layer execution times of one DNN on every device — the
/// performance vectors `p_α^m` of Eq. 2, stacked for all three devices.
///
/// ```
/// use omniboost_hw::{Board, Device, LayerTimeTable, NoiseModel};
/// use omniboost_models::{zoo, ModelId};
///
/// let board = Board::hikey970();
/// let dnn = zoo::build(ModelId::AlexNet);
/// let t = LayerTimeTable::profile(&board, &dnn, NoiseModel::none());
/// assert_eq!(t.num_layers(), 11);
/// assert!(t.time_ms(Device::LittleCpu, 0) > t.time_ms(Device::Gpu, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerTimeTable {
    model_name: String,
    /// `times_ms[device][layer]`.
    times_ms: [Vec<f64>; Device::COUNT],
}

impl LayerTimeTable {
    /// Benchmarks every layer of `dnn` on every device of `board`,
    /// applying measurement jitter from `noise`.
    pub fn profile(board: &Board, dnn: &DnnModel, noise: NoiseModel) -> Self {
        let mut times_ms: [Vec<f64>; Device::COUNT] = Default::default();
        for dev in Device::ALL {
            let col = dnn
                .layers()
                .iter()
                .enumerate()
                .map(|(li, layer)| {
                    cost::layer_time_ms(board, dev, layer)
                        * noise.factor(dnn.name(), li, dev.index())
                })
                .collect();
            times_ms[dev.index()] = col;
        }
        Self {
            model_name: dnn.name().to_owned(),
            times_ms,
        }
    }

    /// Name of the profiled model.
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// Number of profiled layers.
    pub fn num_layers(&self) -> usize {
        self.times_ms[0].len()
    }

    /// Profiled time of one layer on one device (ms) — `B_l^α`.
    pub fn time_ms(&self, device: Device, layer: usize) -> f64 {
        self.times_ms[device.index()][layer]
    }

    /// The whole per-device row (all layers) — the performance vector
    /// `p_α^m` of Eq. 2.
    pub fn device_row(&self, device: Device) -> &[f64] {
        &self.times_ms[device.index()]
    }

    /// Sum of layer times on a device (single-device whole-model latency).
    pub fn device_total_ms(&self, device: Device) -> f64 {
        self.times_ms[device.index()].iter().sum()
    }

    /// Largest layer time anywhere in the table (normalization scale for
    /// the embeddings tensor).
    pub fn max_time_ms(&self) -> f64 {
        self.times_ms
            .iter()
            .flat_map(|r| r.iter())
            .fold(0.0f64, |a, b| a.max(*b))
    }
}

/// Profiles an entire model set (the `P_α` matrices of Eq. 3).
pub fn profile_all(board: &Board, dnns: &[DnnModel], noise: NoiseModel) -> Vec<LayerTimeTable> {
    dnns.iter()
        .map(|d| LayerTimeTable::profile(board, d, noise))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use omniboost_models::{zoo, ModelId};

    #[test]
    fn profile_covers_all_layers_and_devices() {
        let board = Board::hikey970();
        let dnn = zoo::build(ModelId::SqueezeNet);
        let t = LayerTimeTable::profile(&board, &dnn, NoiseModel::none());
        assert_eq!(t.num_layers(), dnn.num_layers());
        for dev in Device::ALL {
            assert_eq!(t.device_row(dev).len(), dnn.num_layers());
            assert!(t.device_row(dev).iter().all(|x| *x > 0.0));
        }
    }

    #[test]
    fn totals_match_cost_model_without_noise() {
        let board = Board::hikey970();
        let dnn = zoo::build(ModelId::AlexNet);
        let t = LayerTimeTable::profile(&board, &dnn, NoiseModel::none());
        let direct = cost::dnn_time_ms(&board, Device::BigCpu, &dnn);
        assert!((t.device_total_ms(Device::BigCpu) - direct).abs() < 1e-9);
    }

    #[test]
    fn noise_perturbs_within_bounds() {
        let board = Board::hikey970();
        let dnn = zoo::build(ModelId::AlexNet);
        let clean = LayerTimeTable::profile(&board, &dnn, NoiseModel::none());
        let noisy = LayerTimeTable::profile(&board, &dnn, NoiseModel::new(0.05, 9));
        for dev in Device::ALL {
            for l in 0..dnn.num_layers() {
                let c = clean.time_ms(dev, l);
                let n = noisy.time_ms(dev, l);
                assert!((n / c - 1.0).abs() <= 0.05 + 1e-12);
            }
        }
    }

    #[test]
    fn max_time_bounds_every_entry() {
        let board = Board::hikey970();
        let dnn = zoo::build(ModelId::Vgg16);
        let t = LayerTimeTable::profile(&board, &dnn, NoiseModel::none());
        let m = t.max_time_ms();
        for dev in Device::ALL {
            for l in 0..t.num_layers() {
                assert!(t.time_ms(dev, l) <= m);
            }
        }
    }
}
