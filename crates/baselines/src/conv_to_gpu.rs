//! CNNDroid-style static heuristic (§III related work): map the
//! computationally heavy *convolutional* layers to the GPU and leave the
//! rest (pools, FC classifiers) on the big CPU.
//!
//! The OmniBoost paper's criticism of this family — "the process followed
//! is static and the GPU workload can quickly reach saturation point
//! while managing multiple CNN applications" — falls out naturally: the
//! policy ignores both co-location pressure and the transfer cost of the
//! many stage boundaries it creates.

use omniboost_hw::{Board, Device, HwError, Mapping, Scheduler, Workload};

/// The convs-to-GPU static scheduler.
///
/// ```
/// use omniboost_baselines::ConvToGpu;
/// use omniboost_hw::{Board, Device, Scheduler, Workload};
/// use omniboost_models::ModelId;
///
/// let mut s = ConvToGpu::new();
/// let w = Workload::from_ids([ModelId::AlexNet]);
/// let m = s.decide(&Board::hikey970(), &w)?;
/// // AlexNet's 3 FC layers land on the big CPU.
/// assert_eq!(m.layers_on(Device::BigCpu), 6); // 3 pools + 3 fc
/// # Ok::<(), omniboost_hw::HwError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvToGpu;

impl ConvToGpu {
    /// Creates the heuristic.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for ConvToGpu {
    fn name(&self) -> &str {
        "conv-to-gpu"
    }

    fn decide(&mut self, board: &Board, workload: &Workload) -> Result<Mapping, HwError> {
        board.admit(workload)?;
        let assignments = workload
            .dnns()
            .iter()
            .map(|dnn| {
                dnn.layers()
                    .iter()
                    .map(|l| {
                        if l.kind().is_convolutional() {
                            Device::Gpu
                        } else {
                            Device::BigCpu
                        }
                    })
                    .collect()
            })
            .collect();
        Ok(Mapping::new(assignments))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omniboost_hw::ThroughputModel;
    use omniboost_models::ModelId;

    #[test]
    fn convs_go_to_gpu_rest_to_big() {
        let mut s = ConvToGpu::new();
        let board = Board::hikey970();
        let w = Workload::from_ids([ModelId::Vgg16]);
        let m = s.decide(&board, &w).unwrap();
        // VGG-16: 13 convs on GPU, 5 pools + 3 fcs on big CPU.
        assert_eq!(m.layers_on(Device::Gpu), 13);
        assert_eq!(m.layers_on(Device::BigCpu), 8);
        assert_eq!(m.layers_on(Device::LittleCpu), 0);
    }

    #[test]
    fn produces_many_pipeline_stages() {
        // The static policy creates a stage boundary at every conv/pool
        // alternation — the transfer-cost weakness the paper points out.
        let mut s = ConvToGpu::new();
        let board = Board::hikey970();
        let w = Workload::from_ids([ModelId::Vgg16]);
        let m = s.decide(&board, &w).unwrap();
        assert!(
            m.max_stages() > 3,
            "expected > 3 stages, got {}",
            m.max_stages()
        );
    }

    #[test]
    fn helps_a_little_but_stays_saturated_on_heavy_mixes() {
        // The static policy happens to offload the FC classifiers' huge
        // weights, which relieves the GPU slightly — but it still stacks
        // every conv of every DNN there, so under a heavy mix it stays in
        // the saturated regime, far below what a workload-aware spread
        // achieves (the §III criticism).
        let board = Board::hikey970();
        let sim = board.simulator();
        let w = Workload::from_ids([
            ModelId::Vgg19,
            ModelId::ResNet50,
            ModelId::InceptionV3,
            ModelId::Vgg16,
        ]);
        let mut s = ConvToGpu::new();
        let split = sim.evaluate(&w, &s.decide(&board, &w).unwrap()).unwrap();
        let gpu = sim.evaluate(&w, &Mapping::all_on(&w, Device::Gpu)).unwrap();
        // No worse than the baseline...
        assert!(split.average >= gpu.average * 0.8);
        // ...but nowhere near a contention-aware spread.
        let spread = Mapping::new(vec![
            vec![Device::LittleCpu; 24],
            vec![Device::Gpu; 20],
            vec![Device::Gpu; 20],
            vec![Device::BigCpu; 21],
        ]);
        let good = sim.evaluate(&w, &spread).unwrap();
        assert!(
            good.average > split.average * 1.5,
            "spread {} vs conv-to-gpu {}",
            good.average,
            split.average
        );
    }
}
