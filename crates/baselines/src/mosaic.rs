//! The MOSAIC baseline (Han et al., PACT 2019): linear-regression layer
//! latency modelling plus communication-aware model slicing.
//!
//! Design-time: fit one per-device linear model `time ≈ w · dims` on a
//! large profiled corpus (§V-B of the OmniBoost paper quotes "more than
//! 14,000 data points", a notable collection cost). Run-time: a single
//! cheap query — greedy slicing of each DNN into ≤3 segments, balancing
//! *additive* predicted loads across devices. The additive-linear view
//! ignores contention and saturation, which is why MOSAIC overloads the
//! GPU on heavy mixes (Fig. 5b of the paper).

use crate::linreg::LinearRegression;
use omniboost_hw::{cost, Board, Device, HwError, Mapping, NoiseModel, Scheduler, Workload};
use omniboost_models::{DnnModelBuilder, Layer, TensorShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// MOSAIC configuration.
#[derive(Debug, Clone)]
pub struct MosaicConfig {
    /// Profiled samples across all devices (paper: >14,000).
    pub training_samples: usize,
    /// Ridge damping for the regression.
    pub ridge: f64,
    /// Measurement-noise amplitude during profiling.
    pub noise_amplitude: f64,
    /// RNG seed for the synthetic profiling sweep.
    pub seed: u64,
    /// Maximum slices per DNN.
    pub max_stages: usize,
}

impl Default for MosaicConfig {
    fn default() -> Self {
        Self {
            training_samples: 14_000,
            ridge: 1e-6,
            noise_amplitude: 0.05,
            seed: 0x305A1C,
            max_stages: 3,
        }
    }
}

/// The MOSAIC scheduler.
///
/// ```no_run
/// use omniboost_baselines::Mosaic;
/// use omniboost_hw::{Board, Scheduler, Workload};
/// use omniboost_models::ModelId;
///
/// let board = Board::hikey970();
/// let mut mosaic = Mosaic::new();
/// let w = Workload::from_ids([ModelId::AlexNet, ModelId::Vgg19]);
/// let mapping = mosaic.decide(&board, &w)?;
/// assert!(mapping.max_stages() <= 3);
/// # Ok::<(), omniboost_hw::HwError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mosaic {
    config: MosaicConfig,
    models: Option<[LinearRegression; 3]>,
}

impl Default for Mosaic {
    fn default() -> Self {
        Self::new()
    }
}

impl Mosaic {
    /// Creates an untrained scheduler with default configuration; the
    /// (expensive) regression fit runs on the first decision.
    pub fn new() -> Self {
        Self::with_config(MosaicConfig::default())
    }

    /// Creates a scheduler with explicit configuration.
    pub fn with_config(config: MosaicConfig) -> Self {
        Self {
            config,
            models: None,
        }
    }

    /// Whether the design-time regression has been fitted.
    pub fn is_trained(&self) -> bool {
        self.models.is_some()
    }

    /// Feature vector of a layer: GFLOPs, activation MB in/out, weight MB
    /// — the "dimensions of input matrices" MOSAIC regresses on.
    fn features(layer: &Layer) -> Vec<f64> {
        let bytes_in: u64 = layer.kernels().iter().map(|k| k.bytes_in()).sum();
        let bytes_out: u64 = layer.kernels().iter().map(|k| k.bytes_out()).sum();
        vec![
            layer.flops() as f64 / 1e9,
            bytes_in as f64 / 1e6,
            bytes_out as f64 / 1e6,
            layer.weight_bytes() as f64 / 1e6,
            layer.kernels().len() as f64,
        ]
    }

    /// Profiles `training_samples` synthetic layers on the board and fits
    /// one regression per device — the paper's time-consuming data
    /// collection step.
    pub fn train(&mut self, board: &Board) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let noise = NoiseModel::new(self.config.noise_amplitude, self.config.seed);
        let per_device = (self.config.training_samples / Device::COUNT).max(1);
        let mut models = Vec::with_capacity(Device::COUNT);
        for dev in Device::ALL {
            let mut xs = Vec::with_capacity(per_device);
            let mut ys = Vec::with_capacity(per_device);
            for i in 0..per_device {
                let layer = random_layer(&mut rng);
                let t = cost::layer_time_ms(board, dev, &layer)
                    * noise.factor("mosaic-sweep", i, dev.index());
                xs.push(Self::features(&layer));
                ys.push(t);
            }
            models.push(LinearRegression::fit(&xs, &ys, self.config.ridge));
        }
        self.models = Some(
            models
                .try_into()
                .unwrap_or_else(|_| unreachable!("exactly 3 devices")),
        );
    }

    fn predict_ms(&self, dev: Device, layer: &Layer) -> f64 {
        let models = self.models.as_ref().expect("trained before predict");
        models[dev.index()]
            .predict(&Self::features(layer))
            .max(1e-6)
    }
}

/// A random synthetic convolution or FC layer spanning realistic mobile
/// dimension ranges.
fn random_layer(rng: &mut StdRng) -> Layer {
    let conv = rng.gen_bool(0.8);
    if conv {
        let cin = *[16usize, 32, 64, 128, 256, 512]
            .get(rng.gen_range(0..6usize))
            .unwrap();
        let cout = *[16usize, 32, 64, 128, 256, 512]
            .get(rng.gen_range(0..6usize))
            .unwrap();
        let hw = *[7usize, 14, 28, 56, 112]
            .get(rng.gen_range(0..5usize))
            .unwrap();
        let k = *[1usize, 3, 5].get(rng.gen_range(0..3usize)).unwrap();
        let model = DnnModelBuilder::new(TensorShape::new(cin, hw, hw))
            .conv("probe", cout, k, 1, k / 2)
            .build("probe-net")
            .expect("probe layer is valid");
        model.layers()[0].clone()
    } else {
        let fin = *[256usize, 1024, 4096, 9216]
            .get(rng.gen_range(0..4usize))
            .unwrap();
        let fout = *[128usize, 1000, 4096]
            .get(rng.gen_range(0..3usize))
            .unwrap();
        let model = DnnModelBuilder::new(TensorShape::flat(fin))
            .fc("probe", fout)
            .build("probe-net")
            .expect("probe layer is valid");
        model.layers()[0].clone()
    }
}

impl Scheduler for Mosaic {
    fn name(&self) -> &str {
        "mosaic"
    }

    /// Greedy communication-aware slicing: DNNs are processed in order;
    /// for each, every (≤ `max_stages`)-segmentation × device tuple is
    /// scored by the *additive* predicted makespan plus transfer cost,
    /// and the cheapest is kept.
    fn decide(&mut self, board: &Board, workload: &Workload) -> Result<Mapping, HwError> {
        board.admit(workload)?;
        if self.models.is_none() {
            self.train(board);
        }
        let mut loads = [0.0f64; Device::COUNT];
        let mut assignments: Vec<Vec<Device>> = Vec::with_capacity(workload.len());

        for dnn in workload.dnns() {
            let n = dnn.num_layers();
            // Prefix-summed predicted times per device.
            let mut prefix = vec![[0.0f64; Device::COUNT]; n + 1];
            for (l, layer) in dnn.layers().iter().enumerate() {
                for dev in Device::ALL {
                    prefix[l + 1][dev.index()] =
                        prefix[l][dev.index()] + self.predict_ms(dev, layer);
                }
            }
            let seg_time =
                |dev: Device, a: usize, b: usize| prefix[b][dev.index()] - prefix[a][dev.index()];

            type Slicing = Vec<(Device, usize, usize)>;
            let mut best: Option<(f64, Slicing)> = None;
            let mut consider = |segs: &[(Device, usize, usize)]| {
                let mut new_loads = loads;
                let mut transfer = 0.0;
                for (i, (dev, a, b)) in segs.iter().enumerate() {
                    new_loads[dev.index()] += seg_time(*dev, *a, *b);
                    if i + 1 < segs.len() {
                        transfer += board.bus.transfer_ms(dnn.cut_bytes(*b - 1) as u64);
                    }
                }
                let makespan = new_loads.iter().fold(0.0f64, |m, v| m.max(*v)) + transfer;
                if best.as_ref().is_none_or(|(c, _)| makespan < *c) {
                    best = Some((makespan, segs.to_vec()));
                }
            };

            // 1 segment.
            for d in Device::ALL {
                consider(&[(d, 0, n)]);
            }
            if self.config.max_stages >= 2 && n >= 2 {
                for cut in 1..n {
                    for d1 in Device::ALL {
                        for d2 in Device::ALL {
                            if d1 != d2 {
                                consider(&[(d1, 0, cut), (d2, cut, n)]);
                            }
                        }
                    }
                }
            }
            if self.config.max_stages >= 3 && n >= 3 {
                for c1 in 1..n - 1 {
                    for c2 in (c1 + 1)..n {
                        for d1 in Device::ALL {
                            for d2 in Device::ALL {
                                if d2 == d1 {
                                    continue;
                                }
                                for d3 in Device::ALL {
                                    if d3 != d2 {
                                        consider(&[(d1, 0, c1), (d2, c1, c2), (d3, c2, n)]);
                                    }
                                }
                            }
                        }
                    }
                }
            }

            let (_, segs) = best.expect("at least the single-segment options exist");
            let mut devices = vec![Device::Gpu; n];
            for (dev, a, b) in &segs {
                for d in &mut devices[*a..*b] {
                    *d = *dev;
                }
                loads[dev.index()] += seg_time(*dev, *a, *b);
            }
            assignments.push(devices);
        }
        Ok(Mapping::new(assignments))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omniboost_models::{zoo, ModelId};

    fn quick_config() -> MosaicConfig {
        MosaicConfig {
            training_samples: 900,
            ..MosaicConfig::default()
        }
    }

    #[test]
    fn regression_orders_devices_correctly() {
        let board = Board::hikey970();
        let mut m = Mosaic::with_config(quick_config());
        m.train(&board);
        // A big dense conv must be predicted fastest on the GPU.
        let vgg = zoo::build(ModelId::Vgg19);
        let conv = &vgg.layers()[2];
        let gpu = m.predict_ms(Device::Gpu, conv);
        let little = m.predict_ms(Device::LittleCpu, conv);
        assert!(gpu < little, "gpu {gpu} vs little {little}");
    }

    #[test]
    fn regression_error_is_moderate_on_zoo_layers() {
        // Linear models can't capture the roofline max(), but should be
        // within ~2x on most dense layers.
        let board = Board::hikey970();
        let mut m = Mosaic::with_config(quick_config());
        m.train(&board);
        let vgg = zoo::build(ModelId::Vgg16);
        let mut within = 0usize;
        let mut total = 0usize;
        for layer in vgg.layers() {
            let truth = cost::layer_time_ms(&board, Device::BigCpu, layer);
            let pred = m.predict_ms(Device::BigCpu, layer);
            total += 1;
            if pred / truth < 3.0 && truth / pred < 3.0 {
                within += 1;
            }
        }
        assert!(within * 2 > total, "only {within}/{total} within 3x");
    }

    #[test]
    fn slicing_respects_stage_cap_and_shape() {
        let board = Board::hikey970();
        let mut m = Mosaic::with_config(quick_config());
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet, ModelId::MobileNet]);
        let mapping = m.decide(&board, &w).unwrap();
        mapping.validate(&w).unwrap();
        assert!(mapping.max_stages() <= 3);
    }

    #[test]
    fn multi_dnn_mix_spreads_load_somewhat() {
        // With 4 heavy DNNs, greedy load balancing must use more than one
        // device (even though it underestimates contention).
        let board = Board::hikey970();
        let mut m = Mosaic::with_config(quick_config());
        let w = Workload::from_ids([
            ModelId::Vgg19,
            ModelId::Vgg16,
            ModelId::ResNet50,
            ModelId::InceptionV3,
        ]);
        let mapping = m.decide(&board, &w).unwrap();
        assert!(mapping.devices_used().len() >= 2, "{mapping}");
    }

    #[test]
    fn training_is_lazy_and_cached() {
        let board = Board::hikey970();
        let mut m = Mosaic::with_config(quick_config());
        assert!(!m.is_trained());
        let w = Workload::from_ids([ModelId::AlexNet]);
        let _ = m.decide(&board, &w).unwrap();
        assert!(m.is_trained());
    }
}
