//! Random layer splitting — the set-up generator of the motivational
//! study (§II, Fig. 1).

use omniboost_hw::{Board, HwError, Mapping, Scheduler, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Draws a random segment-structured mapping (each DNN split into at most
/// `max_stages` contiguous stages on random devices), like the 200 random
/// set-ups of Fig. 1.
///
/// Each [`Scheduler::decide`] call consumes fresh randomness, so calling
/// it 200 times reproduces the motivational sweep.
#[derive(Debug, Clone)]
pub struct RandomSplit {
    max_stages: usize,
    rng: StdRng,
}

impl RandomSplit {
    /// Creates a splitter with the paper's 3-stage structure.
    pub fn new(seed: u64) -> Self {
        Self::with_max_stages(3, seed)
    }

    /// Creates a splitter with a custom stage cap.
    pub fn with_max_stages(max_stages: usize, seed: u64) -> Self {
        Self {
            max_stages: max_stages.max(1),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomSplit {
    fn name(&self) -> &str {
        "random-split"
    }

    fn decide(&mut self, board: &Board, workload: &Workload) -> Result<Mapping, HwError> {
        board.admit(workload)?;
        Ok(Mapping::random(workload, self.max_stages, &mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omniboost_models::ModelId;

    #[test]
    fn successive_decisions_differ() {
        let mut s = RandomSplit::new(5);
        let board = Board::hikey970();
        let w = Workload::from_ids([ModelId::Vgg19, ModelId::AlexNet]);
        let a = s.decide(&board, &w).unwrap();
        let b = s.decide(&board, &w).unwrap();
        assert_ne!(a, b, "two draws should almost surely differ");
    }

    #[test]
    fn respects_stage_cap() {
        let mut s = RandomSplit::with_max_stages(2, 9);
        let board = Board::hikey970();
        let w = Workload::from_ids([ModelId::SqueezeNet]);
        for _ in 0..20 {
            let m = s.decide(&board, &w).unwrap();
            assert!(m.max_stages() <= 2);
        }
    }

    #[test]
    fn seeded_reproducibility() {
        let board = Board::hikey970();
        let w = Workload::from_ids([ModelId::MobileNet]);
        let a = RandomSplit::new(3).decide(&board, &w).unwrap();
        let b = RandomSplit::new(3).decide(&board, &w).unwrap();
        assert_eq!(a, b);
    }
}
