//! # omniboost-baselines
//!
//! The comparison schedulers of the OmniBoost evaluation (§V):
//!
//! * [`GpuOnly`] — the "common scheduling approach": every layer of every
//!   DNN on the GPU. This is the normalization baseline of Figs. 1 and 5.
//! * [`RandomSplit`] — the random layer-splitting generator behind the
//!   motivational study of Fig. 1 (200 random set-ups).
//! * [`Mosaic`] — the linear-regression approach of MOSAIC (Han et al.,
//!   PACT 2019): per-device layer-latency regression fitted on ~14,000
//!   profiled samples, plus communication-aware greedy model slicing.
//!   Its linearity assumption ignores contention, which is exactly the
//!   weakness the paper exploits (§III, §V-A).
//! * [`ConvToGpu`] — the CNNDroid-style static policy (convolutional
//!   layers to the GPU, the rest to the big CPU), included because §III
//!   names it as the archetypal static approach OmniBoost improves on.
//! * [`Genetic`] — the GA scheduler of Kang et al. (IEEE Access 2020)
//!   with the stage-merging repair layer the paper describes; it
//!   "retrains" (re-runs evolution, measuring on the board) for every
//!   queried workload, which is why its decision latency is minutes.
//!
//! All of them implement [`omniboost_hw::Scheduler`], so the benchmark
//! harness can sweep schedulers uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv_to_gpu;
mod ga;
mod gpu_only;
mod linreg;
mod mosaic;
mod random;

pub use conv_to_gpu::ConvToGpu;
pub use ga::{Genetic, GeneticConfig};
pub use gpu_only::GpuOnly;
pub use linreg::LinearRegression;
pub use mosaic::{Mosaic, MosaicConfig};
pub use random::RandomSplit;
