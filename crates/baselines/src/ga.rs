//! The genetic-algorithm scheduler (Kang et al., IEEE Access 2020), as
//! described in §III/§V of the OmniBoost paper: per-workload evolution
//! with board-in-the-loop fitness, plus the stage-merging optimization
//! layer OmniBoost's authors added to keep chromosomes pipeline-sane.
//!
//! The GA's two documented costs are reproduced by construction: it
//! *re-evolves for every queried workload* (fitness = measuring candidate
//! mappings on the board — here the discrete-event simulator), and its
//! mutation operator damages elite chromosomes by introducing redundant
//! pipeline stages, which the repair layer then merges away.

use omniboost_estimator::{BoardScopedCache, EvalCache};
use omniboost_hw::{
    Board, Device, EvalCacheStats, HwError, Mapping, Scheduler, ThroughputModel, Workload,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Genetic-algorithm hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneticConfig {
    /// Population size.
    pub population: usize,
    /// Generations evolved per decision.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Probability of applying crossover to a selected pair.
    pub crossover_rate: f64,
    /// Elite chromosomes copied unchanged each generation.
    pub elitism: usize,
    /// Pipeline-stage cap enforced by the repair layer.
    pub max_stages: usize,
    /// RNG seed.
    pub seed: u64,
    /// Capacity of the cross-decision evaluation cache (0 disables).
    /// Elites are re-measured every generation and recurring workloads
    /// re-evolve from the same seed population, so the GA benefits from
    /// the same `(workload, mapping)` memoization OmniBoost's serving
    /// path uses — keeping decision-latency comparisons fair.
    pub eval_cache_capacity: usize,
}

impl Default for GeneticConfig {
    /// Defaults sized to the paper's operating point: on the physical
    /// board one fitness evaluation means deploying and measuring a
    /// mapping (~5-10 s), so the "approximately 5 minutes for each mix"
    /// of §V-B corresponds to a few dozen evaluations. The default
    /// population/generation product reproduces that *measurement
    /// budget* (≈60 board evaluations per decision), not the wall-clock.
    fn default() -> Self {
        Self {
            population: 10,
            generations: 5,
            tournament: 3,
            mutation_rate: 0.05,
            crossover_rate: 0.9,
            elitism: 2,
            max_stages: 3,
            seed: 0x6E7E71C,
            eval_cache_capacity: 8192,
        }
    }
}

/// The GA scheduler.
///
/// ```no_run
/// use omniboost_baselines::{Genetic, GeneticConfig};
/// use omniboost_hw::{Board, Scheduler, Workload};
/// use omniboost_models::ModelId;
///
/// let mut ga = Genetic::new(GeneticConfig { generations: 10, ..GeneticConfig::default() });
/// let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
/// let mapping = ga.decide(&Board::hikey970(), &w)?;
/// assert!(mapping.max_stages() <= 3);
/// # Ok::<(), omniboost_hw::HwError>(())
/// ```
#[derive(Debug)]
pub struct Genetic {
    config: GeneticConfig,
    /// Fitness evaluations performed by the last `decide` call (the
    /// run-time cost driver discussed in §V-B). With the cache enabled
    /// this counts *actual* board measurements — cache hits are free.
    last_evaluations: usize,
    /// Cross-decision evaluation cache, board-scoped: a `decide` call
    /// against a different board drops every entry, so stale fitness
    /// from other hardware can never be replayed.
    eval_cache: BoardScopedCache,
}

impl Clone for Genetic {
    /// Clones get a *fresh* cache: sharing one would let concurrent
    /// clones corrupt each other's `last_evaluations` accounting (and
    /// the cache refills on first decision anyway).
    fn clone(&self) -> Self {
        Self::new(self.config)
    }
}

impl Genetic {
    /// Creates a GA scheduler.
    pub fn new(config: GeneticConfig) -> Self {
        Self {
            config,
            last_evaluations: 0,
            eval_cache: BoardScopedCache::new(config.eval_cache_capacity),
        }
    }

    /// Fitness evaluations (board measurements) in the last decision.
    pub fn last_evaluations(&self) -> usize {
        self.last_evaluations
    }

    /// The configuration.
    pub fn config(&self) -> &GeneticConfig {
        &self.config
    }

    /// The cross-decision evaluation cache.
    pub fn eval_cache(&self) -> &EvalCache {
        self.eval_cache.cache()
    }
}

type Chromosome = Vec<Device>;

fn decode(workload: &Workload, chromosome: &Chromosome) -> Mapping {
    let mut assignments = Vec::with_capacity(workload.len());
    let mut off = 0usize;
    for dnn in workload.dnns() {
        let n = dnn.num_layers();
        assignments.push(chromosome[off..off + n].to_vec());
        off += n;
    }
    Mapping::new(assignments)
}

/// The optimization layer: merge redundant pipeline stages until each DNN
/// respects the stage cap. The smallest segment is absorbed into its
/// larger neighbour, removing one transfer per merge.
fn repair(workload: &Workload, chromosome: &mut Chromosome, max_stages: usize) {
    let mut off = 0usize;
    for dnn in workload.dnns() {
        let n = dnn.num_layers();
        let genes = &mut chromosome[off..off + n];
        loop {
            // Segment boundaries.
            let mut segs: Vec<(usize, usize)> = Vec::new();
            let mut start = 0usize;
            for i in 1..=n {
                if i == n || genes[i] != genes[start] {
                    segs.push((start, i));
                    start = i;
                }
            }
            if segs.len() <= max_stages {
                break;
            }
            // Find the shortest segment and absorb it into the longer
            // adjacent neighbour.
            let (si, _) = segs
                .iter()
                .enumerate()
                .min_by_key(|(_, (a, b))| b - a)
                .expect("at least one segment");
            let (a, b) = segs[si];
            let take_left = if si == 0 {
                false
            } else if si == segs.len() - 1 {
                true
            } else {
                let left = segs[si - 1];
                let right = segs[si + 1];
                (left.1 - left.0) >= (right.1 - right.0)
            };
            let fill = if take_left {
                genes[segs[si - 1].0]
            } else {
                genes[segs[si + 1].0]
            };
            for g in &mut genes[a..b] {
                *g = fill;
            }
        }
        off += n;
    }
}

impl Scheduler for Genetic {
    fn name(&self) -> &str {
        "ga"
    }

    fn decide(&mut self, board: &Board, workload: &Workload) -> Result<Mapping, HwError> {
        board.admit(workload)?;
        // Every fitness measurement flows through the board-scoped
        // cross-decision cache (a no-op when capacity is 0): the scope
        // flushes on board change — entries are valid for exactly one
        // board — and re-measured elites within a decision plus
        // recurring workloads across decisions both amortize, mirroring
        // OmniBoost's serving path.
        let scope = self.eval_cache.begin(board);
        let sim = scope.wrap(board.simulator());
        let total = workload.total_layers();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let cfg = self.config;
        self.last_evaluations = 0;

        let fitness_of = |c: &Chromosome, evals: &mut usize| -> f64 {
            *evals += 1;
            sim.evaluate(workload, &decode(workload, c))
                .map(|r| r.average)
                .unwrap_or(0.0)
        };

        // Seed population: whole-workload single-device mappings plus
        // random stage-structured ones.
        let mut population: Vec<Chromosome> = Vec::with_capacity(cfg.population);
        for d in Device::ALL {
            population.push(vec![d; total]);
        }
        while population.len() < cfg.population.max(4) {
            let m = Mapping::random(workload, cfg.max_stages, &mut rng);
            let mut c: Chromosome = m.assignments().iter().flatten().copied().collect();
            repair(workload, &mut c, cfg.max_stages);
            population.push(c);
        }

        let mut evals = 0usize;
        let mut scores: Vec<f64> = population
            .iter()
            .map(|c| fitness_of(c, &mut evals))
            .collect();

        for _gen in 0..cfg.generations {
            // Elitism.
            let mut order: Vec<usize> = (0..population.len()).collect();
            order.sort_by(|a, b| scores[*b].total_cmp(&scores[*a]));
            let mut next: Vec<Chromosome> = order
                .iter()
                .take(cfg.elitism)
                .map(|i| population[*i].clone())
                .collect();

            while next.len() < cfg.population {
                // Tournament selection.
                let mut pick = || {
                    let mut best = rng.gen_range(0..population.len());
                    for _ in 1..cfg.tournament.max(1) {
                        let c = rng.gen_range(0..population.len());
                        if scores[c] > scores[best] {
                            best = c;
                        }
                    }
                    best
                };
                let (p1, p2) = (pick(), pick());
                let mut child = if rng.gen_bool(cfg.crossover_rate) {
                    // Single-point crossover.
                    let cut = rng.gen_range(1..total);
                    let mut c = population[p1][..cut].to_vec();
                    c.extend_from_slice(&population[p2][cut..]);
                    c
                } else {
                    population[p1].clone()
                };
                // Mutation: random device per gene — this is the operator
                // the paper notes "damages" candidates by adding stages.
                for g in child.iter_mut() {
                    if rng.gen_bool(cfg.mutation_rate) {
                        *g = Device::ALL[rng.gen_range(0..Device::COUNT)];
                    }
                }
                repair(workload, &mut child, cfg.max_stages);
                next.push(child);
            }
            population = next;
            scores = population
                .iter()
                .map(|c| fitness_of(c, &mut evals))
                .collect();
        }

        // Report real board measurements: with the cache enabled only
        // misses ran the simulator, matching OmniBoost's accounting.
        self.last_evaluations = scope.fresh_evaluations(evals);
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty population");
        Ok(decode(workload, &population[best]))
    }

    fn eval_cache_stats(&self) -> Option<EvalCacheStats> {
        self.eval_cache.stats_if_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omniboost_models::ModelId;

    fn tiny_config() -> GeneticConfig {
        GeneticConfig {
            population: 8,
            generations: 4,
            seed: 5,
            ..GeneticConfig::default()
        }
    }

    #[test]
    fn repair_enforces_stage_cap() {
        let w = Workload::from_ids([ModelId::AlexNet]);
        // Fully alternating chromosome: 11 stages.
        let mut c: Chromosome = (0..11).map(|i| Device::ALL[i % 3]).collect();
        repair(&w, &mut c, 3);
        let m = decode(&w, &c);
        assert!(m.max_stages() <= 3, "{m}");
    }

    #[test]
    fn repair_is_idempotent() {
        let w = Workload::from_ids([ModelId::SqueezeNet]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let mut c: Chromosome = (0..22)
                .map(|_| Device::ALL[rng.gen_range(0..3usize)])
                .collect();
            repair(&w, &mut c, 3);
            let once = c.clone();
            repair(&w, &mut c, 3);
            assert_eq!(once, c);
        }
    }

    #[test]
    fn repair_leaves_compliant_chromosomes_unchanged() {
        let w = Workload::from_ids([ModelId::AlexNet]);
        let mut c: Chromosome = vec![Device::Gpu; 11];
        let before = c.clone();
        repair(&w, &mut c, 3);
        assert_eq!(before, c);
    }

    #[test]
    fn decide_returns_valid_capped_mapping() {
        let board = Board::hikey970();
        let mut ga = Genetic::new(tiny_config());
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let m = ga.decide(&board, &w).unwrap();
        m.validate(&w).unwrap();
        assert!(m.max_stages() <= 3);
        assert!(ga.last_evaluations() > 0);
    }

    /// The GA re-evolves per decision, so a recurring workload replays
    /// the exact same candidate sequence — a fully-warm decision runs
    /// zero fresh board measurements.
    #[test]
    fn recurring_decisions_amortize_through_the_eval_cache() {
        let board = Board::hikey970();
        let mut ga = Genetic::new(tiny_config());
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet]);
        let m1 = ga.decide(&board, &w).unwrap();
        let cold = ga.eval_cache_stats().expect("cache enabled by default");
        assert!(cold.misses > 0);
        let cold_evals = ga.last_evaluations();
        assert!(cold_evals > 0);
        // Within a single decision, elites are re-measured every
        // generation, so even the cold decision saves work.
        assert!(cold.hits > 0, "elite re-measurement should hit: {cold:?}");
        let m2 = ga.decide(&board, &w).unwrap();
        assert_eq!(m1, m2, "deterministic per seed");
        let warm = ga.eval_cache_stats().unwrap();
        assert_eq!(warm.misses, cold.misses, "no new measurements when warm");
        assert_eq!(ga.last_evaluations(), 0, "fully-warm decision is free");
    }

    /// Cached fitness is valid for one board only: deciding against
    /// different hardware must flush, never replay stale throughputs.
    #[test]
    fn board_change_flushes_the_eval_cache() {
        let board_a = Board::hikey970();
        let mut board_b = Board::hikey970();
        board_b.max_concurrent_dnns += 1; // distinct hardware
        let mut ga = Genetic::new(tiny_config());
        let w = Workload::from_ids([ModelId::AlexNet]);
        ga.decide(&board_a, &w).unwrap();
        let warm = ga.eval_cache_stats().unwrap();
        ga.decide(&board_b, &w).unwrap();
        let after = ga.eval_cache_stats().unwrap();
        assert!(
            after.misses > warm.misses,
            "different board must re-measure: {warm:?} -> {after:?}"
        );
        assert!(ga.last_evaluations() > 0);
        // And clones never share cache state.
        let clone = ga.clone();
        assert!(clone.eval_cache().is_empty());
    }

    #[test]
    fn zero_capacity_disables_the_eval_cache() {
        let board = Board::hikey970();
        let mut ga = Genetic::new(GeneticConfig {
            eval_cache_capacity: 0,
            ..tiny_config()
        });
        let w = Workload::from_ids([ModelId::AlexNet]);
        ga.decide(&board, &w).unwrap();
        assert_eq!(ga.eval_cache_stats(), None);
        assert!(ga.last_evaluations() > 0, "uncached counting still works");
    }

    #[test]
    fn ga_beats_gpu_only_on_heavy_mix() {
        let board = Board::hikey970();
        let mut ga = Genetic::new(GeneticConfig {
            population: 12,
            generations: 8,
            seed: 11,
            ..GeneticConfig::default()
        });
        let w = Workload::from_ids([
            ModelId::Vgg19,
            ModelId::ResNet50,
            ModelId::InceptionV3,
            ModelId::Vgg16,
        ]);
        let sim = board.simulator();
        let ga_mapping = ga.decide(&board, &w).unwrap();
        let ga_t = sim.evaluate(&w, &ga_mapping).unwrap().average;
        let base_t = sim
            .evaluate(&w, &Mapping::all_on(&w, Device::Gpu))
            .unwrap()
            .average;
        assert!(
            ga_t > base_t * 1.5,
            "GA {ga_t} should clearly beat saturated baseline {base_t}"
        );
    }
}
