//! The "common scheduling approach" baseline: everything on the GPU.

use omniboost_hw::{Board, Device, HwError, Mapping, Scheduler, Workload};

/// Maps every layer of every DNN onto the GPU — the highest-performing
/// single device, and the paper's normalization baseline.
///
/// ```
/// use omniboost_baselines::GpuOnly;
/// use omniboost_hw::{Board, Device, Scheduler, Workload};
/// use omniboost_models::ModelId;
///
/// let mut s = GpuOnly::new();
/// let w = Workload::from_ids([ModelId::AlexNet]);
/// let m = s.decide(&Board::hikey970(), &w)?;
/// assert!(m.assignments()[0].iter().all(|d| *d == Device::Gpu));
/// # Ok::<(), omniboost_hw::HwError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GpuOnly;

impl GpuOnly {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for GpuOnly {
    fn name(&self) -> &str {
        "baseline"
    }

    fn decide(&mut self, board: &Board, workload: &Workload) -> Result<Mapping, HwError> {
        board.admit(workload)?;
        Ok(Mapping::all_on(workload, Device::Gpu))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omniboost_models::ModelId;

    #[test]
    fn single_stage_gpu_mapping() {
        let mut s = GpuOnly::new();
        let w = Workload::from_ids([ModelId::Vgg19, ModelId::MobileNet]);
        let m = s.decide(&Board::hikey970(), &w).unwrap();
        assert_eq!(m.max_stages(), 1);
        assert_eq!(m.devices_used(), vec![Device::Gpu]);
    }

    #[test]
    fn decision_is_instant_but_rejects_inadmissible() {
        let mut s = GpuOnly::new();
        let w = Workload::from_ids(vec![ModelId::AlexNet; 6]);
        assert!(matches!(
            s.decide(&Board::hikey970(), &w),
            Err(HwError::Unresponsive { .. })
        ));
    }
}
