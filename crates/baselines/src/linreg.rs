//! Ordinary least squares with ridge damping — MOSAIC's model family.
//!
//! MOSAIC (Han et al.) assumes DNN layer execution time is *linearly*
//! correlated with layer dimensions. The paper under reproduction argues
//! this assumption breaks under multi-DNN contention (§III); we implement
//! the regression faithfully so that the breakdown is observable.

/// A ridge-regularized linear model `y ≈ w · x + b` fitted in closed form
/// via the normal equations.
///
/// ```
/// use omniboost_baselines::LinearRegression;
///
/// // y = 2 x0 + 1.
/// let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
/// let ys = vec![1.0, 3.0, 5.0, 7.0];
/// let model = LinearRegression::fit(&xs, &ys, 1e-9);
/// assert!((model.predict(&[10.0]) - 21.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    /// Weights, one per feature, with the intercept appended last.
    weights: Vec<f64>,
}

impl LinearRegression {
    /// Fits the model on rows `xs` with targets `ys`.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty, lengths mismatch, or rows have
    /// inconsistent widths.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], ridge: f64) -> Self {
        assert!(!xs.is_empty(), "empty design matrix");
        assert_eq!(xs.len(), ys.len(), "row/target count mismatch");
        let d = xs[0].len() + 1; // + intercept
        assert!(xs.iter().all(|r| r.len() == d - 1), "ragged rows");

        // Normal equations: (XᵀX + λI) w = Xᵀy, X augmented with 1s.
        let mut xtx = vec![vec![0.0f64; d]; d];
        let mut xty = vec![0.0f64; d];
        for (row, &y) in xs.iter().zip(ys) {
            let aug: Vec<f64> = row.iter().copied().chain(std::iter::once(1.0)).collect();
            for i in 0..d {
                xty[i] += aug[i] * y;
                for j in 0..d {
                    xtx[i][j] += aug[i] * aug[j];
                }
            }
        }
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += ridge.max(1e-12);
        }
        let weights = solve(xtx, xty);
        Self { weights }
    }

    /// Predicts the target for a feature row.
    ///
    /// # Panics
    ///
    /// Panics if the feature width differs from the fitted width.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len() + 1, self.weights.len(), "feature width mismatch");
        x.iter().zip(&self.weights).map(|(a, b)| a * b).sum::<f64>()
            + self.weights[self.weights.len() - 1]
    }

    /// The fitted weights (intercept last).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// Gaussian elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        assert!(diag.abs() > 1e-30, "singular system despite ridge");
        let (pivot_rows, elim_rows) = a.split_at_mut(col + 1);
        let pivot_row = &pivot_rows[col];
        for (off, row) in elim_rows.iter_mut().enumerate() {
            let f = row[col] / diag;
            if f == 0.0 {
                continue;
            }
            for (rk, pk) in row[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *rk -= f * pk;
            }
            b[col + 1 + off] -= f * b[col];
        }
    }
    // Back-substitution.
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for (ak, xk) in a[col][(col + 1)..n].iter().zip(&x[(col + 1)..n]) {
            acc -= ak * xk;
        }
        x[col] = acc / a[col][col];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_multivariate_plane() {
        // y = 3 x0 - 2 x1 + 0.5.
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64 * 0.3, (i % 5) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 0.5).collect();
        let m = LinearRegression::fit(&xs, &ys, 1e-9);
        assert!((m.weights()[0] - 3.0).abs() < 1e-6);
        assert!((m.weights()[1] + 2.0).abs() < 1e-6);
        assert!((m.weights()[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ridge_stabilizes_duplicate_features() {
        // Two identical features would make XᵀX singular without ridge.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        let m = LinearRegression::fit(&xs, &ys, 1e-6);
        assert!((m.predict(&[5.0, 5.0]) - 10.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "row/target count mismatch")]
    fn mismatched_lengths_panic() {
        let _ = LinearRegression::fit(&[vec![1.0]], &[1.0, 2.0], 1e-6);
    }
}
