//! Search budget: the knob the paper highlights for run-time flexibility
//! ("budgetary constraints can be adjusted for any use-case scenario",
//! §V-B).

use serde::{Deserialize, Serialize};

/// Computational budget and exploration constants for the tree search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchBudget {
    /// Number of MCTS iterations — each ends in one estimator query
    /// (the paper sets 500).
    pub iterations: usize,
    /// Maximum rollout depth in actions (the paper sets 100); rollouts
    /// that exceed it count as losses.
    pub max_depth: usize,
    /// UCT exploration constant.
    pub exploration: f64,
}

impl Default for SearchBudget {
    /// The paper's configuration: 500 iterations, depth 100.
    fn default() -> Self {
        Self {
            iterations: 500,
            max_depth: 100,
            exploration: std::f64::consts::SQRT_2,
        }
    }
}

impl SearchBudget {
    /// Creates a budget with the given iteration count, keeping the
    /// paper's depth and exploration defaults.
    pub fn with_iterations(iterations: usize) -> Self {
        Self {
            iterations,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let b = SearchBudget::default();
        assert_eq!(b.iterations, 500);
        assert_eq!(b.max_depth, 100);
    }

    #[test]
    fn with_iterations_overrides_only_iterations() {
        let b = SearchBudget::with_iterations(50);
        assert_eq!(b.iterations, 50);
        assert_eq!(b.max_depth, 100);
    }
}
