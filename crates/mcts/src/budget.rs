//! Search budget: the knob the paper highlights for run-time flexibility
//! ("budgetary constraints can be adjusted for any use-case scenario",
//! §V-B).

use serde::{Deserialize, Serialize};

/// Computational budget and exploration constants for the tree search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchBudget {
    /// Number of MCTS iterations — each ends in one estimator query
    /// (the paper sets 500).
    pub iterations: usize,
    /// Maximum rollout depth in actions (the paper sets 100); rollouts
    /// that exceed it count as losses.
    pub max_depth: usize,
    /// UCT exploration constant.
    pub exploration: f64,
    /// Leaf rollouts collected per estimator round trip. `1` reproduces
    /// the classic one-query-per-iteration loop; larger values gather
    /// `batch_size` pending rollouts under virtual-loss bookkeeping and
    /// score them through one `evaluate_batch` call, amortizing per-query
    /// overhead (§V-B's dominant cost).
    pub batch_size: usize,
    /// Independent root-parallel trees sharing the iteration budget.
    /// Each tree gets `iterations / parallelism` iterations and a
    /// deterministically derived seed; results merge into one
    /// [`crate::SearchResult`].
    pub parallelism: usize,
}

impl Default for SearchBudget {
    /// The paper's search size (500 iterations, depth 100) on the batched
    /// pipeline (16 rollouts per estimator round trip, single tree).
    fn default() -> Self {
        Self {
            iterations: 500,
            max_depth: 100,
            exploration: std::f64::consts::SQRT_2,
            batch_size: 16,
            parallelism: 1,
        }
    }
}

impl SearchBudget {
    /// Creates a budget with the given iteration count, keeping the
    /// paper's depth and exploration defaults.
    pub fn with_iterations(iterations: usize) -> Self {
        Self {
            iterations,
            ..Self::default()
        }
    }

    /// The same budget with a different evaluation batch size
    /// (`1` = the scalar one-query-per-iteration pipeline).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// The same budget split across `parallelism` root-parallel trees.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// The scalar (pre-batching) pipeline: one estimator query per
    /// iteration, one tree. Kept as the baseline the batched pipeline is
    /// benchmarked against.
    pub fn scalar(iterations: usize) -> Self {
        Self::with_iterations(iterations).with_batch_size(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let b = SearchBudget::default();
        assert_eq!(b.iterations, 500);
        assert_eq!(b.max_depth, 100);
    }

    #[test]
    fn with_iterations_overrides_only_iterations() {
        let b = SearchBudget::with_iterations(50);
        assert_eq!(b.iterations, 50);
        assert_eq!(b.max_depth, 100);
    }

    #[test]
    fn scalar_budget_disables_batching() {
        let b = SearchBudget::scalar(120);
        assert_eq!(b.batch_size, 1);
        assert_eq!(b.parallelism, 1);
        assert_eq!(b.iterations, 120);
    }

    #[test]
    fn builders_clamp_to_one() {
        let b = SearchBudget::default()
            .with_batch_size(0)
            .with_parallelism(0);
        assert_eq!(b.batch_size, 1);
        assert_eq!(b.parallelism, 1);
    }
}
