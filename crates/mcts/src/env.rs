//! The environment abstraction the tree search explores.

use rand::{Rng, RngCore};

/// Terminal status of a state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Status {
    /// More decisions remain.
    Ongoing,
    /// The episode ended; the payload is the reward.
    Terminal {
        /// Reward of the terminal state (higher is better; losing states
        /// receive 0).
        reward: f64,
    },
}

/// A deterministic, fixed-branching decision process.
///
/// States are cheap to clone; `apply` is pure (no interior mutation of
/// the environment), which lets the search replay and branch freely.
pub trait Environment {
    /// State type.
    type State: Clone;

    /// The initial (empty-assignment) state.
    fn initial(&self) -> Self::State;

    /// Number of actions available at every decision point (the device
    /// count for scheduling).
    fn num_actions(&self) -> usize;

    /// Applies an action, producing the successor state.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `action >= num_actions()` or if the
    /// state is terminal.
    fn apply(&self, state: &Self::State, action: usize) -> Self::State;

    /// Whether the state is terminal (win or loss).
    fn is_terminal(&self, state: &Self::State) -> bool;

    /// Whether the state is a **known loss**: terminal with reward 0,
    /// decidable without consulting the evaluator (for scheduling, the
    /// §IV-C stage-cap rule).
    ///
    /// The search prunes losing children at expansion time — their value
    /// is exact, so spending iterations on them is pure waste, and
    /// pruning is sound because a loss can never score above any live
    /// terminal. Environments without cheap loss detection keep the
    /// default `false` (nothing is pruned).
    ///
    /// Implementations must guarantee `is_losing(s) ⇒ is_terminal(s) &&
    /// reward(s) == 0`.
    fn is_losing(&self, state: &Self::State) -> bool {
        let _ = state;
        false
    }

    /// Reward of a terminal state. Calling this is the expensive step —
    /// for scheduling it invokes the throughput estimator — so the search
    /// counts these calls against its budget.
    ///
    /// # Panics
    ///
    /// Implementations may panic on non-terminal states.
    fn reward(&self, state: &Self::State) -> f64;

    /// Rewards a batch of terminal states in one call.
    ///
    /// The batched search hands every pending leaf rollout of a round to
    /// this hook. The default loops over [`Environment::reward`];
    /// environments whose evaluator has a cheap batch path (the CNN
    /// estimator's minibatched forward, the simulator's parallel batch)
    /// override it. Element `i` must equal `self.reward(&states[i])`.
    fn reward_batch(&self, states: &[Self::State]) -> Vec<f64> {
        states.iter().map(|s| self.reward(s)).collect()
    }

    /// Like [`Environment::reward_batch`], but also reports how many of
    /// the rewards actually **queried the evaluator** (as opposed to
    /// being answered by a memo, a within-batch duplicate, or a dead
    /// state's constant 0).
    ///
    /// The search uses this to account estimator work truthfully: a
    /// terminal rollout is not an evaluation if no evaluator ran for it.
    /// The default assumes every state costs one query, matching the
    /// default `reward_batch` loop; environments with memoization or
    /// free-scoring states override it alongside `reward_batch`.
    fn reward_batch_counted(&self, states: &[Self::State]) -> (Vec<f64>, usize) {
        (self.reward_batch(states), states.len())
    }

    /// Draws the next action during a *simulation rollout*.
    ///
    /// Defaults to uniform random. Environments with sparse winning
    /// regions (like stage-capped scheduling, where uniformly random
    /// device choices alternate pipeline stages into the losing rule
    /// almost surely) override this with heavier playout policies (the
    /// scheduling environment's stage-budget-aware rule); tree
    /// *expansion* still enumerates every action, so optimality pressure
    /// is unaffected.
    fn rollout_action(&self, state: &Self::State, rng: &mut dyn RngCore) -> usize {
        let _ = state;
        rng.gen_range(0..self.num_actions())
    }

    /// Status helper combining the two queries.
    fn status(&self, state: &Self::State) -> Status {
        if self.is_terminal(state) {
            Status::Terminal {
                reward: self.reward(state),
            }
        } else {
            Status::Ongoing
        }
    }
}

#[cfg(test)]
pub(crate) mod test_env {
    use super::*;

    /// A toy environment: binary decisions of fixed depth; reward is the
    /// fraction of 1-bits, so the optimum is all-ones.
    pub struct CountOnes {
        pub depth: usize,
    }

    impl Environment for CountOnes {
        type State = Vec<usize>;

        fn initial(&self) -> Vec<usize> {
            Vec::new()
        }

        fn num_actions(&self) -> usize {
            2
        }

        fn apply(&self, state: &Vec<usize>, action: usize) -> Vec<usize> {
            assert!(action < 2);
            let mut s = state.clone();
            s.push(action);
            s
        }

        fn is_terminal(&self, state: &Vec<usize>) -> bool {
            state.len() >= self.depth
        }

        fn reward(&self, state: &Vec<usize>) -> f64 {
            assert!(self.is_terminal(state));
            state.iter().sum::<usize>() as f64 / self.depth as f64
        }
    }

    #[test]
    fn default_counted_batch_charges_every_state() {
        let env = CountOnes { depth: 2 };
        let t = env.apply(&env.apply(&env.initial(), 1), 0);
        let (rewards, queries) = env.reward_batch_counted(&[t.clone(), t]);
        assert_eq!(queries, 2, "default accounting is one query per state");
        assert_eq!(rewards.len(), 2);
    }

    #[test]
    fn toy_env_contract() {
        let env = CountOnes { depth: 3 };
        let s0 = env.initial();
        assert!(!env.is_terminal(&s0));
        let s = env.apply(&env.apply(&env.apply(&s0, 1), 1), 0);
        assert!(env.is_terminal(&s));
        assert!((env.reward(&s) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(env.status(&s0), Status::Ongoing);
    }
}
