//! # omniboost-mcts
//!
//! Budgeted Monte-Carlo Tree Search and the multi-DNN scheduling
//! environment of OmniBoost (§IV-C of the DAC 2023 paper).
//!
//! The paper frames layer-to-device assignment as a game tree:
//!
//! * **Actions** — one per computing component (3 on the HiKey970).
//! * **Decision order** — the first decision for each DNN places the
//!   *whole* network on a device; subsequent decisions re-place layers
//!   2..n one at a time; DNNs are scheduled one after another (their
//!   order is irrelevant since they ultimately run concurrently).
//! * **Winning state** — every layer of every DNN assigned.
//! * **Losing state** — a pipeline with more stages than the device count
//!   `x` (redundant stages mean extra transfers and delay). The search
//!   prunes such children at expansion time ([`Environment::is_losing`]):
//!   their reward is exactly 0 without consulting the evaluator, and a
//!   decided prefix's stages can never merge again, so pruning is sound.
//! * **Evaluation** — completed mappings are scored by a throughput
//!   estimator; the search is budgeted (the paper uses 500 iterations,
//!   depth 100). [`SearchResult::evaluations`] counts the queries that
//!   actually reached the evaluator (memo hits, within-batch duplicates
//!   and dead states are free).
//! * **Rollouts** — simulation playouts use the stage-budget-aware
//!   policy, which provably reaches a live terminal from any live state,
//!   so the batched pipeline's evaluation batches actually fill. (The
//!   historical 90%-sticky A/B baseline was removed once nothing
//!   benchmarked against it.)
//! * **Warm starts** — [`Mcts::search_from`] roots the tree at an
//!   explicit state; [`SchedState::from_partial_mapping`] builds that
//!   root from a previous decision's surviving device paths, so online
//!   rescheduling after a single-job workload delta explores only the
//!   new DNN's decisions instead of searching cold.
//!
//! The search ([`Mcts`]) is generic over an [`Environment`], and the
//! scheduling environment ([`SchedulingEnv`]) is generic over any
//! [`omniboost_hw::ThroughputModel`], so the same code runs with the CNN
//! estimator (the paper's configuration) or with the simulator as an
//! oracle (the estimator-vs-oracle ablation).
//!
//! ```
//! use omniboost_hw::{AnalyticModel, Board, Workload};
//! use omniboost_mcts::{Mcts, SchedulingEnv, SearchBudget};
//! use omniboost_models::ModelId;
//!
//! let board = Board::hikey970();
//! let workload = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet]);
//! let evaluator = AnalyticModel::new(board);
//! let env = SchedulingEnv::new(&workload, &evaluator, 3)?;
//! let result = Mcts::new(SearchBudget::default()).search(&env, 77);
//! let mapping = env.mapping_of(&result.best_state);
//! assert!(mapping.validate(&workload).is_ok());
//! # Ok::<(), omniboost_hw::HwError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod env;
mod sched_env;
mod tree;

pub use budget::SearchBudget;
pub use env::{Environment, Status};
pub use sched_env::{SchedState, SchedulingEnv};
pub use tree::{Mcts, SearchResult};
