//! The multi-DNN scheduling environment (§IV-C).

use crate::env::Environment;
use omniboost_hw::{Device, HwError, Mapping, ThroughputModel, Workload};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Partial layer-to-device assignment under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedState {
    /// Flattened per-layer devices (all DNNs concatenated).
    devices: Vec<Device>,
    /// Next decision index.
    decision: usize,
    /// Whether a losing condition (stage-cap violation) was hit.
    dead: bool,
}

impl SchedState {
    /// Whether the state hit the losing rule.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Decisions already taken.
    pub fn decisions_taken(&self) -> usize {
        self.decision
    }
}

/// One decision point: either place a whole DNN or re-place one layer.
#[derive(Debug, Clone, Copy)]
enum Decision {
    /// (dnn): assign every layer of the DNN to the chosen device.
    WholeDnn(usize),
    /// (dnn, layer): re-assign one layer (layer ≥ 1).
    Layer(usize, usize),
}

/// The scheduling environment: states are partial mappings, actions are
/// devices, terminal rewards come from a throughput model.
///
/// Losing states (§IV-C): as soon as any DNN's decided prefix contains
/// more pipeline stages than `stage_cap` (= the device count on the
/// board), the state is dead and rewards 0 — stages in a decided prefix
/// can never merge again, so pruning is sound.
pub struct SchedulingEnv<'a, M: ThroughputModel> {
    workload: &'a Workload,
    evaluator: &'a M,
    stage_cap: usize,
    decisions: Vec<Decision>,
    offsets: Vec<usize>,
    reference: f64,
    /// Bonus added to every winning reward so completion dominates death.
    win_bonus: f64,
    /// Reward memo for the batched pipeline: completed assignments the
    /// search revisits (UCT re-selects good terminals many times, and
    /// sticky rollouts recreate the same completions) are answered
    /// without re-querying the evaluator. Scoped to this environment,
    /// i.e. to one scheduling decision — the evaluator is deterministic,
    /// so memoized rewards are exactly what a fresh query would return.
    reward_memo: Mutex<HashMap<Vec<Device>, f64>>,
    memo_hits: AtomicUsize,
    memo_misses: AtomicUsize,
}

impl<'a, M: ThroughputModel> SchedulingEnv<'a, M> {
    /// Builds the environment, normalizing rewards against the GPU-only
    /// mapping (the paper's baseline).
    ///
    /// # Errors
    ///
    /// Propagates the evaluator's error for inadmissible workloads.
    pub fn new(
        workload: &'a Workload,
        evaluator: &'a M,
        stage_cap: usize,
    ) -> Result<Self, HwError> {
        if workload.is_empty() {
            return Err(HwError::EmptyWorkload);
        }
        let baseline = Mapping::all_on(workload, Device::Gpu);
        let reference = evaluator.evaluate(workload, &baseline)?.average.max(1e-9);
        let mut decisions = Vec::with_capacity(workload.total_layers());
        let mut offsets = Vec::with_capacity(workload.len());
        let mut off = 0usize;
        for (di, dnn) in workload.dnns().iter().enumerate() {
            offsets.push(off);
            decisions.push(Decision::WholeDnn(di));
            for l in 1..dnn.num_layers() {
                decisions.push(Decision::Layer(di, l));
            }
            off += dnn.num_layers();
        }
        Ok(Self {
            workload,
            evaluator,
            stage_cap: stage_cap.max(1),
            decisions,
            offsets,
            reference,
            win_bonus: 0.1,
            reward_memo: Mutex::new(HashMap::new()),
            memo_hits: AtomicUsize::new(0),
            memo_misses: AtomicUsize::new(0),
        })
    }

    /// Batched-pipeline reward queries answered from the memo (repeat
    /// visits of an already-scored assignment).
    pub fn memo_hits(&self) -> usize {
        self.memo_hits.load(Ordering::Relaxed)
    }

    /// Batched-pipeline reward queries that reached the evaluator.
    pub fn memo_misses(&self) -> usize {
        self.memo_misses.load(Ordering::Relaxed)
    }

    /// Number of decisions needed to complete a mapping (= total layers).
    pub fn num_decisions(&self) -> usize {
        self.decisions.len()
    }

    /// The baseline (GPU-only) throughput used for reward normalization.
    pub fn reference_throughput(&self) -> f64 {
        self.reference
    }

    /// The stage cap `x` of the losing rule.
    pub fn stage_cap(&self) -> usize {
        self.stage_cap
    }

    /// Converts a (possibly partial) state into a mapping; undecided DNNs
    /// default to the GPU.
    pub fn mapping_of(&self, state: &SchedState) -> Mapping {
        let mut assignments = Vec::with_capacity(self.workload.len());
        for (di, dnn) in self.workload.dnns().iter().enumerate() {
            let off = self.offsets[di];
            assignments.push(state.devices[off..off + dnn.num_layers()].to_vec());
        }
        Mapping::new(assignments)
    }

    /// Stage count of the decided prefix of DNN `di` when layers
    /// `0..=last` are final.
    fn prefix_stages(&self, state: &SchedState, di: usize, last: usize) -> usize {
        let off = self.offsets[di];
        let devs = &state.devices[off..=off + last];
        1 + devs.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

impl<M: ThroughputModel> Environment for SchedulingEnv<'_, M> {
    type State = SchedState;

    fn initial(&self) -> SchedState {
        SchedState {
            devices: vec![Device::Gpu; self.workload.total_layers()],
            decision: 0,
            dead: false,
        }
    }

    fn num_actions(&self) -> usize {
        Device::COUNT
    }

    fn apply(&self, state: &SchedState, action: usize) -> SchedState {
        assert!(!self.is_terminal(state), "apply on terminal state");
        let device = Device::from_index(action).expect("action is a device index");
        let mut next = state.clone();
        match self.decisions[state.decision] {
            Decision::WholeDnn(di) => {
                let off = self.offsets[di];
                let n = self.workload.dnn(di).num_layers();
                for d in &mut next.devices[off..off + n] {
                    *d = device;
                }
                // A whole-DNN placement is always 1 stage: no prune check.
            }
            Decision::Layer(di, l) => {
                next.devices[self.offsets[di] + l] = device;
                if self.prefix_stages(&next, di, l) > self.stage_cap {
                    next.dead = true;
                }
            }
        }
        next.decision += 1;
        next
    }

    fn is_terminal(&self, state: &SchedState) -> bool {
        state.dead || state.decision >= self.decisions.len()
    }

    fn reward(&self, state: &SchedState) -> f64 {
        assert!(self.is_terminal(state), "reward on non-terminal state");
        if state.dead {
            return 0.0;
        }
        let mapping = self.mapping_of(state);
        match self.evaluator.evaluate(self.workload, &mapping) {
            Ok(report) => self.win_bonus + report.average / self.reference,
            Err(_) => 0.0,
        }
    }

    /// The batched evaluation pipeline: dead states score 0 immediately,
    /// repeat assignments are answered from the reward memo, and the
    /// remaining unique mappings go to the evaluator as **one**
    /// `evaluate_batch` call (minibatched CNN forward / parallel
    /// simulation). Element `i` equals `self.reward(&states[i])` because
    /// the evaluator is deterministic.
    fn reward_batch(&self, states: &[SchedState]) -> Vec<f64> {
        let mut out = vec![0.0f64; states.len()];
        // Indices still needing an evaluator query, deduplicated by
        // assignment (first occurrence wins; duplicates share the slot).
        let mut unique: HashMap<&[Device], usize> = HashMap::new();
        let mut fresh: Vec<(Vec<usize>, Mapping)> = Vec::new();
        let mut hits = 0usize;
        {
            // Memo lookups under the lock; the guard is dropped before
            // the evaluator runs so concurrent root-parallel trees don't
            // serialize on (or deadlock around) the expensive batch call.
            let memo = self.reward_memo.lock().unwrap_or_else(|e| e.into_inner());
            for (i, state) in states.iter().enumerate() {
                debug_assert!(self.is_terminal(state), "reward on non-terminal state");
                if state.dead {
                    continue;
                }
                if let Some(r) = memo.get(state.devices.as_slice()) {
                    out[i] = *r;
                    hits += 1;
                    continue;
                }
                match unique.get(state.devices.as_slice()) {
                    Some(&slot) => {
                        fresh[slot].0.push(i);
                        hits += 1;
                    }
                    None => {
                        unique.insert(state.devices.as_slice(), fresh.len());
                        fresh.push((vec![i], self.mapping_of(state)));
                    }
                }
            }
        }
        self.memo_hits.fetch_add(hits, Ordering::Relaxed);
        self.memo_misses.fetch_add(fresh.len(), Ordering::Relaxed);
        if fresh.is_empty() {
            return out;
        }
        let mappings: Vec<Mapping> = fresh.iter().map(|(_, m)| m.clone()).collect();
        // Unlocked: two trees may race to evaluate the same assignment,
        // but the evaluator is deterministic, so both insert the same
        // reward — wasted work at worst, never wrong answers.
        let reports = self.evaluator.evaluate_batch(self.workload, &mappings);
        let mut memo = self.reward_memo.lock().unwrap_or_else(|e| e.into_inner());
        for ((indices, _), report) in fresh.iter().zip(reports) {
            let reward = match report {
                Ok(r) => self.win_bonus + r.average / self.reference,
                Err(_) => 0.0,
            };
            memo.insert(states[indices[0]].devices.clone(), reward);
            for &i in indices {
                out[i] = reward;
            }
        }
        out
    }

    /// Sticky rollout policy: when re-placing layer `l`, repeat layer
    /// `l-1`'s device with high probability. Uniform play alternates
    /// devices ~2/3 of the time and runs into the stage-cap losing rule
    /// almost surely on deep networks; stickiness keeps playouts alive
    /// while the tree itself still enumerates every action.
    fn rollout_action(&self, state: &SchedState, rng: &mut dyn rand::RngCore) -> usize {
        const STICKINESS_PERCENT: u32 = 90;
        if let Decision::Layer(di, l) = self.decisions[state.decision] {
            if rng.next_u32() % 100 < STICKINESS_PERCENT {
                return state.devices[self.offsets[di] + l - 1].index();
            }
        }
        (rng.next_u32() as usize) % Device::COUNT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::SearchBudget;
    use crate::tree::Mcts;
    use omniboost_hw::{AnalyticModel, Board};
    use omniboost_models::ModelId;

    fn setup() -> (Workload, AnalyticModel) {
        let board = Board::hikey970();
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet]);
        (w, AnalyticModel::new(board))
    }

    #[test]
    fn decision_count_equals_total_layers() {
        let (w, ev) = setup();
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        assert_eq!(env.num_decisions(), 11 + 22);
    }

    #[test]
    fn whole_dnn_decision_fills_all_layers() {
        let (w, ev) = setup();
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        let s = env.apply(&env.initial(), Device::LittleCpu.index());
        let m = env.mapping_of(&s);
        assert!(m.assignments()[0].iter().all(|d| *d == Device::LittleCpu));
    }

    #[test]
    fn exceeding_stage_cap_kills_the_state() {
        let (w, ev) = setup();
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        // Alternate devices layer by layer: stages grow 1 per decision,
        // so after 3 alternations the prefix has 4 stages -> dead.
        let mut s = env.apply(&env.initial(), 0); // whole dnn on GPU
        for (i, a) in [1usize, 0, 1].iter().enumerate() {
            assert!(!s.dead, "died too early at {i}");
            s = env.apply(&s, *a);
        }
        assert!(s.dead);
        assert!(env.is_terminal(&s));
        assert_eq!(env.reward(&s), 0.0);
    }

    #[test]
    fn completed_states_win_and_score_positive() {
        let (w, ev) = setup();
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        // All decisions pick GPU: 1 stage everywhere, reward ≈ bonus + 1.
        let mut s = env.initial();
        while !env.is_terminal(&s) {
            s = env.apply(&s, Device::Gpu.index());
        }
        assert!(!s.dead);
        let r = env.reward(&s);
        assert!((r - 1.1).abs() < 0.05, "gpu-only reward = {r}");
    }

    #[test]
    fn search_returns_valid_cap_respecting_mapping() {
        let (w, ev) = setup();
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        let result = Mcts::new(SearchBudget::with_iterations(150)).search(&env, 5);
        let mapping = env.mapping_of(&result.best_state);
        mapping.validate(&w).unwrap();
        assert!(mapping.max_stages() <= 3);
        assert!(result.best_reward > 0.0);
    }

    #[test]
    fn search_beats_or_matches_baseline_on_heavy_mix() {
        // Under a heavy 4-DNN mix the GPU-only baseline saturates; MCTS
        // must find something strictly better.
        let board = Board::hikey970();
        let w = Workload::from_ids([
            ModelId::Vgg19,
            ModelId::ResNet50,
            ModelId::InceptionV3,
            ModelId::AlexNet,
        ]);
        let ev = AnalyticModel::new(board);
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        let result = Mcts::new(SearchBudget::with_iterations(300)).search(&env, 11);
        // Reward = bonus + T/T_baseline, so > bonus + 1 means "beat it".
        assert!(
            result.best_reward > 1.1,
            "best reward {} did not beat the baseline",
            result.best_reward
        );
    }

    #[test]
    fn empty_workload_is_rejected() {
        let board = Board::hikey970();
        let ev = AnalyticModel::new(board);
        let w = Workload::new(vec![]);
        assert!(matches!(
            SchedulingEnv::new(&w, &ev, 3),
            Err(HwError::EmptyWorkload)
        ));
    }
}
