//! The multi-DNN scheduling environment (§IV-C).

use crate::env::Environment;
use omniboost_hw::{Device, HwError, Mapping, ThroughputModel, Workload};
use rand::Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Partial layer-to-device assignment under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedState {
    /// Flattened per-layer devices (all DNNs concatenated).
    devices: Vec<Device>,
    /// Next decision index.
    decision: usize,
    /// Pipeline-stage count of the decided prefix of the DNN currently
    /// being edited (decisions run DNN by DNN, so one counter suffices).
    /// Maintained incrementally by `apply` — this is what makes both the
    /// losing-rule check and the budget-aware rollout policy O(1).
    stages: usize,
    /// Whether a losing condition (stage-cap violation) was hit.
    dead: bool,
    /// Per-DNN freeze flags: `apply` skips every decision belonging to a
    /// frozen DNN, so its carried device path survives the search
    /// verbatim. Empty means nothing is frozen (the common cold-search
    /// case pays nothing for the feature). Unlike the decision pointer —
    /// which can only express *prefix* freezing — this supports any
    /// subset, e.g. releasing one mid-workload carried DNN back into the
    /// warm search space while its neighbours stay pinned.
    frozen: Vec<bool>,
}

impl SchedState {
    /// Builds a **partially decided** state whose first `decided_dnns`
    /// DNNs take their per-layer device paths from `previous` — the
    /// warm-start seed of online rescheduling: when a workload changes by
    /// one job, the surviving DNNs keep the mapping the last decision
    /// found, and [`crate::Mcts::search_from`] only explores the
    /// still-open decisions (the new DNN's layers) instead of searching
    /// cold.
    ///
    /// `previous` must carry one row per decided DNN (extra rows are
    /// ignored), each matching that DNN's layer count in the
    /// environment's workload. Undecided DNNs default to the GPU exactly
    /// like [`Environment::initial`]. If a carried path violates the
    /// environment's stage cap (possible when the previous decision ran
    /// under a looser cap), the returned state is dead — callers check
    /// [`SchedState::is_dead`] and fall back to a cold search.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::MappingShape`] when `previous` has fewer than
    /// `decided_dnns` rows or a row's layer count mismatches.
    pub fn from_partial_mapping<M: ThroughputModel>(
        env: &SchedulingEnv<'_, M>,
        previous: &Mapping,
        decided_dnns: usize,
    ) -> Result<SchedState, HwError> {
        let decided = decided_dnns.min(env.workload.len());
        let mut frozen = vec![false; env.workload.len()];
        for f in frozen.iter_mut().take(decided) {
            *f = true;
        }
        Self::from_frozen_subset(env, previous, &frozen)
    }

    /// Generalization of [`SchedState::from_partial_mapping`] to an
    /// **arbitrary subset** of frozen DNNs: every DNN `di` with
    /// `frozen[di]` takes its per-layer device path from `previous`'s row
    /// `di` and is skipped by the search entirely; every other DNN stays
    /// open (defaulting to the GPU like [`Environment::initial`]), even
    /// when it sits *between* frozen ones.
    ///
    /// This is what lets warm-started rescheduling release the
    /// worst-placed carried DNN back into the search space alongside an
    /// arriving job: freeze all carried paths except the released one,
    /// and the warm search re-decides exactly two DNNs while the rest of
    /// the deployment is pinned. A prefix freeze is the special case
    /// `frozen = [true; k] ++ [false; n-k]`.
    ///
    /// `frozen` may be shorter than the workload (missing entries are
    /// open); `previous` needs a shape-matching row at every frozen
    /// index (rows of open DNNs are ignored). If a frozen path violates
    /// the environment's stage cap the state comes back dead — callers
    /// check [`SchedState::is_dead`] and fall back to a cold search.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::MappingShape`] when a frozen index has no row
    /// in `previous` or its layer count mismatches the workload.
    pub fn from_frozen_subset<M: ThroughputModel>(
        env: &SchedulingEnv<'_, M>,
        previous: &Mapping,
        frozen: &[bool],
    ) -> Result<SchedState, HwError> {
        let workload = env.workload;
        let n = workload.len();
        let frozen: Vec<bool> = (0..n)
            .map(|di| frozen.get(di).copied().unwrap_or(false))
            .collect();
        let counts = workload.layer_counts();
        let expected: Vec<usize> = (0..n)
            .filter(|di| frozen[*di])
            .map(|di| counts[di])
            .collect();
        let found: Vec<usize> = (0..n)
            .filter(|di| frozen[*di])
            .map(|di| previous.assignments().get(di).map_or(0, Vec::len))
            .collect();
        if expected != found {
            return Err(HwError::MappingShape { expected, found });
        }
        let mut state = env.initial();
        state.frozen = frozen;
        // The incremental stage counter tracks the DNN currently being
        // edited; the first open decision is always a whole-DNN
        // placement (which resets it), so auditing the frozen rows
        // against the cap — remembering the last one's count for the
        // all-frozen (terminal) case — keeps the counter exact.
        for di in 0..n {
            if !state.frozen[di] {
                continue;
            }
            let row = &previous.assignments()[di];
            let off = env.offsets[di];
            state.devices[off..off + row.len()].copy_from_slice(row);
            let stages = env.prefix_stages(&state, di, row.len() - 1);
            if stages > env.stage_cap {
                state.dead = true;
            }
            state.stages = stages;
        }
        env.skip_frozen(&mut state);
        Ok(state)
    }

    /// Whether the state hit the losing rule.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Decisions already taken.
    pub fn decisions_taken(&self) -> usize {
        self.decision
    }

    /// Pipeline stages in the decided prefix of the DNN currently being
    /// edited (0 before the first decision).
    pub fn current_dnn_stages(&self) -> usize {
        self.stages
    }
}

/// One decision point: either place a whole DNN or re-place one layer.
#[derive(Debug, Clone, Copy)]
enum Decision {
    /// (dnn): assign every layer of the DNN to the chosen device.
    WholeDnn(usize),
    /// (dnn, layer): re-assign one layer (layer ≥ 1).
    Layer(usize, usize),
}

/// The scheduling environment: states are partial mappings, actions are
/// devices, terminal rewards come from a throughput model.
///
/// Losing states (§IV-C): as soon as any DNN's decided prefix contains
/// more pipeline stages than `stage_cap` (= the device count on the
/// board), the state is dead and rewards 0 — stages in a decided prefix
/// can never merge again, so pruning is sound.
pub struct SchedulingEnv<'a, M: ThroughputModel> {
    workload: &'a Workload,
    evaluator: &'a M,
    stage_cap: usize,
    decisions: Vec<Decision>,
    offsets: Vec<usize>,
    reference: f64,
    /// Bonus added to every winning reward so completion dominates death.
    win_bonus: f64,
    /// Per-DNN throughput floors in inferences/s (empty = no floors —
    /// the historical reward, bit-for-bit). A mapping that leaves DNN
    /// `i` below `floors[i]` is penalized in proportion to the
    /// normalized shortfall, so the search prefers mappings honoring
    /// every floor over marginally higher aggregates that starve a
    /// guaranteed job. See [`SchedulingEnv::with_floors`].
    floors: Vec<f64>,
    /// Reward memo for the batched pipeline: completed assignments the
    /// search revisits (UCT re-selects good terminals many times, and
    /// rollout policies recreate the same completions) are answered
    /// without re-querying the evaluator. Scoped to this environment,
    /// i.e. to one scheduling decision — the evaluator is deterministic,
    /// so memoized rewards are exactly what a fresh query would return.
    /// (Cross-decision reuse is the estimator-side `EvalCache`'s job.)
    reward_memo: Mutex<HashMap<Vec<Device>, f64>>,
    /// Reward queries answered from the memo (a previous round scored
    /// the same assignment).
    memo_hits: AtomicUsize,
    /// Reward queries answered by deduplication *within* one batch (two
    /// pending rollouts of the same round completed identically). Kept
    /// separate from `memo_hits` so cache-effectiveness numbers don't
    /// conflate "the memo worked" with "the round duplicated itself".
    batch_dedup_hits: AtomicUsize,
    memo_misses: AtomicUsize,
}

impl<'a, M: ThroughputModel> SchedulingEnv<'a, M> {
    /// Builds the environment, normalizing rewards against the GPU-only
    /// mapping (the paper's baseline).
    ///
    /// # Errors
    ///
    /// Propagates the evaluator's error for inadmissible workloads.
    pub fn new(
        workload: &'a Workload,
        evaluator: &'a M,
        stage_cap: usize,
    ) -> Result<Self, HwError> {
        if workload.is_empty() {
            return Err(HwError::EmptyWorkload);
        }
        let baseline = Mapping::all_on(workload, Device::Gpu);
        let reference = evaluator.evaluate(workload, &baseline)?.average.max(1e-9);
        let mut decisions = Vec::with_capacity(workload.total_layers());
        let mut offsets = Vec::with_capacity(workload.len());
        let mut off = 0usize;
        for (di, dnn) in workload.dnns().iter().enumerate() {
            offsets.push(off);
            decisions.push(Decision::WholeDnn(di));
            for l in 1..dnn.num_layers() {
                decisions.push(Decision::Layer(di, l));
            }
            off += dnn.num_layers();
        }
        Ok(Self {
            workload,
            evaluator,
            stage_cap: stage_cap.max(1),
            decisions,
            offsets,
            reference,
            win_bonus: 0.1,
            floors: Vec::new(),
            reward_memo: Mutex::new(HashMap::new()),
            memo_hits: AtomicUsize::new(0),
            batch_dedup_hits: AtomicUsize::new(0),
            memo_misses: AtomicUsize::new(0),
        })
    }

    /// Attaches per-DNN throughput floors (inferences/s, one entry per
    /// workload DNN; `0.0` = best-effort, no floor). With any positive
    /// floor, rewards divide by `1 + 4 × Σ normalized shortfall`, so
    /// the search trades a little aggregate throughput to keep
    /// guaranteed DNNs above their floors — and a mapping meeting every
    /// floor scores exactly the historical reward. An all-zero vector
    /// is dropped, keeping the reward (and the search it drives)
    /// bit-for-bit the floorless one.
    ///
    /// # Panics
    ///
    /// Panics if `floors.len()` differs from the workload's DNN count.
    #[must_use]
    pub fn with_floors(mut self, floors: Vec<f64>) -> Self {
        assert_eq!(
            floors.len(),
            self.workload.len(),
            "one floor per workload DNN"
        );
        self.floors = if floors.iter().any(|f| *f > 0.0) {
            floors
        } else {
            Vec::new()
        };
        self
    }

    /// The reward of a measured report: normalized average throughput
    /// plus the win bonus, shrunk by the floor-shortfall penalty when
    /// [`SchedulingEnv::with_floors`] armed any floors.
    fn score(&self, report: &omniboost_hw::ThroughputReport) -> f64 {
        let base = self.win_bonus + report.average / self.reference;
        if self.floors.is_empty() {
            return base;
        }
        let shortfall: f64 = report
            .per_dnn
            .iter()
            .zip(&self.floors)
            .filter(|(_, floor)| **floor > 0.0)
            .map(|(tps, floor)| ((floor - tps) / floor).clamp(0.0, 1.0))
            .sum();
        base / (1.0 + 4.0 * shortfall)
    }

    /// Batched-pipeline reward queries answered from the cross-round
    /// memo (repeat visits of an assignment scored in an earlier round).
    pub fn memo_hits(&self) -> usize {
        self.memo_hits.load(Ordering::Relaxed)
    }

    /// Batched-pipeline reward queries answered by within-batch
    /// deduplication (two rollouts of the *same* round completed the
    /// same assignment — not a memo hit).
    pub fn batch_dedup_hits(&self) -> usize {
        self.batch_dedup_hits.load(Ordering::Relaxed)
    }

    /// Batched-pipeline reward queries that reached the evaluator.
    pub fn memo_misses(&self) -> usize {
        self.memo_misses.load(Ordering::Relaxed)
    }

    /// Number of decisions needed to complete a mapping (= total layers).
    pub fn num_decisions(&self) -> usize {
        self.decisions.len()
    }

    /// The baseline (GPU-only) throughput used for reward normalization.
    pub fn reference_throughput(&self) -> f64 {
        self.reference
    }

    /// The stage cap `x` of the losing rule.
    pub fn stage_cap(&self) -> usize {
        self.stage_cap
    }

    /// Converts a (possibly partial) state into a mapping; undecided DNNs
    /// default to the GPU.
    pub fn mapping_of(&self, state: &SchedState) -> Mapping {
        let mut assignments = Vec::with_capacity(self.workload.len());
        for (di, dnn) in self.workload.dnns().iter().enumerate() {
            let off = self.offsets[di];
            assignments.push(state.devices[off..off + dnn.num_layers()].to_vec());
        }
        Mapping::new(assignments)
    }

    /// Stage count of the decided prefix of DNN `di` when layers
    /// `0..=last` are final.
    fn prefix_stages(&self, state: &SchedState, di: usize, last: usize) -> usize {
        let off = self.offsets[di];
        let devs = &state.devices[off..=off + last];
        1 + devs.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// The DNN a decision index belongs to.
    fn decision_dnn(&self, idx: usize) -> usize {
        match self.decisions[idx] {
            Decision::WholeDnn(di) | Decision::Layer(di, _) => di,
        }
    }

    /// Advances the decision pointer past every decision belonging to a
    /// frozen DNN. Frozen DNNs start at a whole-DNN decision and own a
    /// contiguous decision run, so after skipping, the pointer sits on
    /// an open DNN's whole-DNN decision (or past the end).
    fn skip_frozen(&self, state: &mut SchedState) {
        if state.frozen.is_empty() {
            return;
        }
        while state.decision < self.decisions.len()
            && state.frozen[self.decision_dnn(state.decision)]
        {
            state.decision += 1;
        }
    }
}

impl<M: ThroughputModel> Environment for SchedulingEnv<'_, M> {
    type State = SchedState;

    fn initial(&self) -> SchedState {
        SchedState {
            devices: vec![Device::Gpu; self.workload.total_layers()],
            decision: 0,
            stages: 0,
            dead: false,
            frozen: Vec::new(),
        }
    }

    fn num_actions(&self) -> usize {
        Device::COUNT
    }

    fn apply(&self, state: &SchedState, action: usize) -> SchedState {
        assert!(!self.is_terminal(state), "apply on terminal state");
        let device = Device::from_index(action).expect("action is a device index");
        let mut next = state.clone();
        match self.decisions[state.decision] {
            Decision::WholeDnn(di) => {
                let off = self.offsets[di];
                let n = self.workload.dnn(di).num_layers();
                for d in &mut next.devices[off..off + n] {
                    *d = device;
                }
                // A whole-DNN placement is always 1 stage: no prune check.
                next.stages = 1;
            }
            Decision::Layer(di, l) => {
                let off = self.offsets[di];
                // Re-placing layer `l` adds a stage boundary exactly when
                // it differs from the (final) layer `l-1`; layers after
                // `l` are not yet decided, so the incremental count stays
                // exact.
                if device != next.devices[off + l - 1] {
                    next.stages += 1;
                    if next.stages > self.stage_cap {
                        next.dead = true;
                    }
                }
                next.devices[off + l] = device;
                debug_assert_eq!(
                    next.stages,
                    self.prefix_stages(&next, di, l),
                    "incremental stage count drifted from the prefix scan"
                );
            }
        }
        next.decision += 1;
        self.skip_frozen(&mut next);
        next
    }

    fn is_terminal(&self, state: &SchedState) -> bool {
        state.dead || state.decision >= self.decisions.len()
    }

    /// The §IV-C losing rule is decidable without the evaluator, so the
    /// search can prune stage-cap-violating children at expansion time.
    fn is_losing(&self, state: &SchedState) -> bool {
        state.dead
    }

    fn reward(&self, state: &SchedState) -> f64 {
        assert!(self.is_terminal(state), "reward on non-terminal state");
        if state.dead {
            return 0.0;
        }
        let mapping = self.mapping_of(state);
        match self.evaluator.evaluate(self.workload, &mapping) {
            Ok(report) => self.score(&report),
            Err(_) => 0.0,
        }
    }

    /// The batched evaluation pipeline: dead states score 0 immediately,
    /// repeat assignments are answered from the reward memo, and the
    /// remaining unique mappings go to the evaluator as **one**
    /// `evaluate_batch` call (minibatched CNN forward / parallel
    /// simulation). Element `i` equals `self.reward(&states[i])` because
    /// the evaluator is deterministic.
    fn reward_batch(&self, states: &[SchedState]) -> Vec<f64> {
        self.reward_batch_counted(states).0
    }

    /// [`SchedulingEnv::reward_batch`] plus truthful accounting: the
    /// second element is the number of **actual evaluator queries**
    /// (unique, un-memoized, live assignments) — dead states, memo hits
    /// and within-batch duplicates are answered for free.
    fn reward_batch_counted(&self, states: &[SchedState]) -> (Vec<f64>, usize) {
        let mut out = vec![0.0f64; states.len()];
        // Indices still needing an evaluator query, deduplicated by
        // assignment (first occurrence wins; duplicates share the slot).
        let mut unique: HashMap<&[Device], usize> = HashMap::new();
        let mut fresh: Vec<(Vec<usize>, Mapping)> = Vec::new();
        let mut memo_hits = 0usize;
        let mut dedup_hits = 0usize;
        {
            // Memo lookups under the lock; the guard is dropped before
            // the evaluator runs so concurrent root-parallel trees don't
            // serialize on (or deadlock around) the expensive batch call.
            let memo = self.reward_memo.lock().unwrap_or_else(|e| e.into_inner());
            for (i, state) in states.iter().enumerate() {
                debug_assert!(self.is_terminal(state), "reward on non-terminal state");
                if state.dead {
                    continue;
                }
                if let Some(r) = memo.get(state.devices.as_slice()) {
                    out[i] = *r;
                    memo_hits += 1;
                    continue;
                }
                match unique.get(state.devices.as_slice()) {
                    Some(&slot) => {
                        fresh[slot].0.push(i);
                        dedup_hits += 1;
                    }
                    None => {
                        unique.insert(state.devices.as_slice(), fresh.len());
                        fresh.push((vec![i], self.mapping_of(state)));
                    }
                }
            }
        }
        self.memo_hits.fetch_add(memo_hits, Ordering::Relaxed);
        self.batch_dedup_hits
            .fetch_add(dedup_hits, Ordering::Relaxed);
        self.memo_misses.fetch_add(fresh.len(), Ordering::Relaxed);
        let queries = fresh.len();
        if fresh.is_empty() {
            return (out, queries);
        }
        let mappings: Vec<Mapping> = fresh.iter().map(|(_, m)| m.clone()).collect();
        // Unlocked: two trees may race to evaluate the same assignment,
        // but the evaluator is deterministic, so both insert the same
        // reward — wasted work at worst, never wrong answers.
        let reports = self.evaluator.evaluate_batch(self.workload, &mappings);
        let mut memo = self.reward_memo.lock().unwrap_or_else(|e| e.into_inner());
        for ((indices, _), report) in fresh.iter().zip(reports) {
            let reward = match report {
                Ok(r) => self.score(&r),
                Err(_) => 0.0,
            };
            memo.insert(states[indices[0]].devices.clone(), reward);
            for &i in indices {
                out[i] = reward;
            }
        }
        (out, queries)
    }

    /// Stage-budget-aware simulation playouts: whole-DNN placements draw
    /// uniformly (they always reset to 1 stage). When re-placing layer
    /// `l`, compute the remaining stage budget `b = stage_cap -
    /// stages(prefix)` in O(1) from the state's tracked counter. `b == 0`
    /// forces the previous layer's device — the only moves that could
    /// kill the playout are never taken, so **every playout from a live
    /// state reaches a live terminal**. While `b > 0`, switch devices
    /// with probability `b / (remaining_layers + b)` (uniform over the
    /// other devices), spreading splits across the network's remaining
    /// depth. The denominator keeps the probability strictly below 1 at
    /// every depth: the playout may *leave budget unspent*, so mappings
    /// with fewer than `stage_cap` stages (a whole DNN on one device,
    /// say) stay sampleable — a `b / remaining` rule would force
    /// exactly-`stage_cap`-stage terminals and bias the search away from
    /// low-stage optima.
    fn rollout_action(&self, state: &SchedState, rng: &mut dyn rand::RngCore) -> usize {
        match self.decisions[state.decision] {
            Decision::WholeDnn(_) => rng.gen_range(0..Device::COUNT),
            Decision::Layer(di, l) => {
                let prev = state.devices[self.offsets[di] + l - 1];
                // Live state ⇒ stages ≤ cap, so this never underflows.
                let budget = self.stage_cap - state.stages;
                if budget == 0 {
                    return prev.index();
                }
                let remaining = self.workload.dnn(di).num_layers() - l;
                // Strictly below 1 (see doc): keeping the previous
                // device must stay possible at every depth so
                // sub-cap-stage mappings remain in the playout
                // distribution.
                let p_switch = budget as f64 / (remaining + budget) as f64;
                if rng.gen_bool(p_switch) {
                    // Uniform over the devices other than `prev`, so a
                    // "switch" draw always spends budget.
                    let k = rng.gen_range(0..Device::COUNT - 1);
                    if k >= prev.index() {
                        k + 1
                    } else {
                        k
                    }
                } else {
                    prev.index()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::SearchBudget;
    use crate::tree::Mcts;
    use omniboost_hw::{AnalyticModel, Board};
    use omniboost_models::ModelId;
    use rand::SeedableRng;

    fn setup() -> (Workload, AnalyticModel) {
        let board = Board::hikey970();
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet]);
        (w, AnalyticModel::new(board))
    }

    #[test]
    fn decision_count_equals_total_layers() {
        let (w, ev) = setup();
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        assert_eq!(env.num_decisions(), 11 + 22);
    }

    #[test]
    fn whole_dnn_decision_fills_all_layers() {
        let (w, ev) = setup();
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        let s = env.apply(&env.initial(), Device::LittleCpu.index());
        let m = env.mapping_of(&s);
        assert!(m.assignments()[0].iter().all(|d| *d == Device::LittleCpu));
    }

    #[test]
    fn exceeding_stage_cap_kills_the_state() {
        let (w, ev) = setup();
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        // Alternate devices layer by layer: stages grow 1 per decision,
        // so after 3 alternations the prefix has 4 stages -> dead.
        let mut s = env.apply(&env.initial(), 0); // whole dnn on GPU
        for (i, a) in [1usize, 0, 1].iter().enumerate() {
            assert!(!s.dead, "died too early at {i}");
            s = env.apply(&s, *a);
        }
        assert!(s.dead);
        assert!(env.is_terminal(&s));
        assert_eq!(env.reward(&s), 0.0);
    }

    #[test]
    fn completed_states_win_and_score_positive() {
        let (w, ev) = setup();
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        // All decisions pick GPU: 1 stage everywhere, reward ≈ bonus + 1.
        let mut s = env.initial();
        while !env.is_terminal(&s) {
            s = env.apply(&s, Device::Gpu.index());
        }
        assert!(!s.dead);
        let r = env.reward(&s);
        assert!((r - 1.1).abs() < 0.05, "gpu-only reward = {r}");
    }

    #[test]
    fn search_returns_valid_cap_respecting_mapping() {
        let (w, ev) = setup();
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        let result = Mcts::new(SearchBudget::with_iterations(150)).search(&env, 5);
        let mapping = env.mapping_of(&result.best_state);
        mapping.validate(&w).unwrap();
        assert!(mapping.max_stages() <= 3);
        assert!(result.best_reward > 0.0);
    }

    #[test]
    fn search_beats_or_matches_baseline_on_heavy_mix() {
        // Under a heavy 4-DNN mix the GPU-only baseline saturates; MCTS
        // must find something strictly better.
        let board = Board::hikey970();
        let w = Workload::from_ids([
            ModelId::Vgg19,
            ModelId::ResNet50,
            ModelId::InceptionV3,
            ModelId::AlexNet,
        ]);
        let ev = AnalyticModel::new(board);
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        let result = Mcts::new(SearchBudget::with_iterations(300)).search(&env, 11);
        // Reward = bonus + T/T_baseline, so > bonus + 1 means "beat it".
        assert!(
            result.best_reward > 1.1,
            "best reward {} did not beat the baseline",
            result.best_reward
        );
    }

    #[test]
    fn empty_workload_is_rejected() {
        let board = Board::hikey970();
        let ev = AnalyticModel::new(board);
        let w = Workload::new(vec![]);
        assert!(matches!(
            SchedulingEnv::new(&w, &ev, 3),
            Err(HwError::EmptyWorkload)
        ));
    }

    #[test]
    fn stage_counter_tracks_prefix_scan() {
        let (w, ev) = setup();
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        use rand::Rng as _;
        for _ in 0..50 {
            let mut s = env.initial();
            while !env.is_terminal(&s) {
                s = env.apply(&s, rng.gen_range(0..Device::COUNT));
            }
            // The debug_assert inside `apply` checks the counter against
            // the O(n) scan at every step; reaching a terminal without
            // panicking is the property.
            assert!(env.is_terminal(&s));
        }
    }

    fn rollout_to_terminal<M: ThroughputModel>(
        env: &SchedulingEnv<'_, M>,
        mut s: SchedState,
        rng: &mut rand::rngs::StdRng,
    ) -> SchedState {
        while !env.is_terminal(&s) {
            let a = env.rollout_action(&s, rng);
            s = env.apply(&s, a);
        }
        s
    }

    #[test]
    fn budget_aware_rollouts_never_die_from_live_states() {
        // From ANY live state — including prefixes that already spent the
        // whole stage budget — budget-aware playouts must reach a live
        // terminal. Drive to random live states first (tree-style uniform
        // actions, retrying past deaths), then roll out.
        let board = Board::hikey970();
        let w = Workload::from_ids([
            ModelId::Vgg19,
            ModelId::ResNet50,
            ModelId::InceptionV3,
            ModelId::AlexNet,
        ]);
        let ev = AnalyticModel::new(board);
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        use rand::Rng as _;
        for trial in 0..200 {
            // Random live prefix of random length.
            let target = rng.gen_range(0..env.num_decisions());
            let mut s = env.initial();
            while s.decisions_taken() < target && !env.is_terminal(&s) {
                let next = env.apply(&s, rng.gen_range(0..Device::COUNT));
                if next.is_dead() {
                    continue; // that action kills; try another draw
                }
                s = next;
            }
            let t = rollout_to_terminal(&env, s, &mut rng);
            assert!(
                !t.is_dead(),
                "trial {trial}: budget-aware rollout died on the stage cap"
            );
            assert!(env.reward(&t) > 0.0);
        }
    }

    #[test]
    fn budget_aware_forces_previous_device_when_budget_exhausted() {
        let (w, ev) = setup();
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        // Burn the whole budget: place DNN 0, then alternate twice.
        let mut s = env.apply(&env.initial(), Device::Gpu.index());
        s = env.apply(&s, Device::BigCpu.index());
        s = env.apply(&s, Device::LittleCpu.index());
        assert_eq!(s.current_dnn_stages(), 3);
        assert!(!s.is_dead());
        // Every rollout draw must now repeat the previous layer's device.
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let a = env.rollout_action(&s, &mut rng);
            assert_eq!(a, Device::LittleCpu.index(), "forced move violated");
        }
    }

    #[test]
    fn budget_aware_playouts_sample_sub_cap_mappings_too() {
        // The playout distribution must not force every terminal to the
        // full stage cap: single-stage (whole-DNN) completions have to
        // remain reachable or the search can never return low-stage
        // optima from its rollouts.
        let (w, ev) = setup();
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut saw_sub_cap = false;
        let mut saw_full_cap = false;
        for _ in 0..200 {
            let t = rollout_to_terminal(&env, env.initial(), &mut rng);
            assert!(!t.is_dead());
            let stages = env.mapping_of(&t).max_stages();
            saw_sub_cap |= stages < 3;
            saw_full_cap |= stages == 3;
        }
        assert!(saw_sub_cap, "playouts never leave stage budget unspent");
        assert!(saw_full_cap, "playouts never use the full stage budget");
    }

    #[test]
    fn budget_aware_yield_fills_the_batch_on_heavy_mix() {
        // On the heavy 4-DNN mix with cap 3, budget-aware playouts
        // essentially all reach live terminals (the PR 2 tentpole claim;
        // the sticky A/B baseline they beat 7× is gone now).
        let board = Board::hikey970();
        let w = Workload::from_ids([
            ModelId::Vgg19,
            ModelId::ResNet50,
            ModelId::InceptionV3,
            ModelId::AlexNet,
        ]);
        let ev = AnalyticModel::new(board);
        let budget = SearchBudget::with_iterations(500).with_batch_size(16);
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        let aware = Mcts::new(budget).search(&env, 42);
        assert!(
            aware.live_terminal_rollouts >= 450,
            "budget-aware yield {}/500 below the 450 bar",
            aware.live_terminal_rollouts
        );
        assert!(aware.best_reward > 0.0);
    }

    #[test]
    fn partial_mapping_state_freezes_carried_paths() {
        let (w, ev) = setup();
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        // Previous decision: AlexNet split GPU -> BigCpu after layer 5.
        let mut prev = Mapping::all_on(&w, Device::Gpu);
        for l in 6..11 {
            prev.assign(0, l, Device::BigCpu);
        }
        let s = SchedState::from_partial_mapping(&env, &prev, 1).unwrap();
        assert!(!s.is_dead());
        assert_eq!(s.decisions_taken(), 11, "DNN 0 fully decided");
        assert!(!env.is_terminal(&s));
        // Search from the partial root: DNN 0's carried path survives in
        // every mapping the warm search can return.
        let result = Mcts::new(SearchBudget::with_iterations(80)).search_from(&env, s, 7);
        assert!(result.best_reward > 0.0);
        let mapping = env.mapping_of(&result.best_state);
        assert_eq!(mapping.assignments()[0], prev.assignments()[0]);
        mapping.validate(&w).unwrap();
        assert!(mapping.max_stages() <= 3);
    }

    #[test]
    fn frozen_subset_pins_a_mid_workload_dnn() {
        // Freeze DNN 0 and DNN 2 of a 3-DNN mix; only DNN 1 (between
        // them) stays open — the shape prefix freezing cannot express.
        let board = Board::hikey970();
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet, ModelId::MobileNet]);
        let ev = AnalyticModel::new(board);
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        let mut prev = Mapping::all_on(&w, Device::Gpu);
        for l in 6..11 {
            prev.assign(0, l, Device::BigCpu);
        }
        for l in 0..w.dnn(2).num_layers() {
            prev.assign(2, l, Device::LittleCpu);
        }
        let s = SchedState::from_frozen_subset(&env, &prev, &[true, false, true]).unwrap();
        assert!(!s.is_dead());
        // The pointer sits on DNN 1's whole-DNN decision: DNN 0's 11
        // decisions are skipped, DNN 1's 22 are open.
        assert_eq!(s.decisions_taken(), 11);
        let result = Mcts::new(SearchBudget::with_iterations(60)).search_from(&env, s, 3);
        assert!(result.best_reward > 0.0);
        let mapping = env.mapping_of(&result.best_state);
        mapping.validate(&w).unwrap();
        assert!(mapping.max_stages() <= 3);
        assert_eq!(mapping.assignments()[0], prev.assignments()[0]);
        assert_eq!(mapping.assignments()[2], prev.assignments()[2]);
    }

    #[test]
    fn frozen_subset_validates_rows_and_audits_caps() {
        let (w, ev) = setup();
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        // Frozen index 1 needs a matching row; a 1-row mapping fails.
        let short = Mapping::new(vec![vec![Device::Gpu; 11]]);
        assert!(matches!(
            SchedState::from_frozen_subset(&env, &short, &[false, true]),
            Err(HwError::MappingShape { .. })
        ));
        // An over-cap frozen row comes back dead even when it is not the
        // prefix.
        let mut overcap = Mapping::all_on(&w, Device::Gpu);
        overcap.assign(1, 2, Device::BigCpu);
        overcap.assign(1, 5, Device::LittleCpu);
        overcap.assign(1, 8, Device::BigCpu);
        assert!(overcap.stage_count(1) > 3);
        let s = SchedState::from_frozen_subset(&env, &overcap, &[false, true]).unwrap();
        assert!(s.is_dead());
        // A short `frozen` slice leaves the remaining DNNs open.
        let ok = SchedState::from_frozen_subset(&env, &overcap, &[]).unwrap();
        assert!(!ok.is_dead());
        assert_eq!(ok.decisions_taken(), 0);
    }

    #[test]
    fn frozen_subset_all_frozen_is_terminal_and_matches_prefix_path() {
        let (w, ev) = setup();
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        let prev = Mapping::all_on(&w, Device::BigCpu);
        let subset = SchedState::from_frozen_subset(&env, &prev, &[true, true]).unwrap();
        assert!(env.is_terminal(&subset));
        assert_eq!(env.mapping_of(&subset), prev);
        // The prefix constructor is the special case of the subset one.
        let prefix = SchedState::from_partial_mapping(&env, &prev, 2).unwrap();
        assert_eq!(env.mapping_of(&prefix), env.mapping_of(&subset));
        assert_eq!(prefix.decisions_taken(), subset.decisions_taken());
    }

    #[test]
    fn fully_decided_partial_state_is_terminal() {
        let (w, ev) = setup();
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        let prev = Mapping::all_on(&w, Device::BigCpu);
        let s = SchedState::from_partial_mapping(&env, &prev, w.len()).unwrap();
        assert!(env.is_terminal(&s));
        assert!(!s.is_dead());
        assert_eq!(env.mapping_of(&s), prev);
        assert!(env.reward(&s) > 0.0);
    }

    #[test]
    fn partial_mapping_rejects_shape_mismatch_and_flags_cap_violations() {
        let (w, ev) = setup();
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        // Wrong layer count for DNN 0.
        let bad = Mapping::new(vec![vec![Device::Gpu; 3]]);
        assert!(matches!(
            SchedState::from_partial_mapping(&env, &bad, 1),
            Err(HwError::MappingShape { .. })
        ));
        // A carried path with 4 stages under cap 3 must come back dead,
        // never silently searchable.
        let mut overcap = Mapping::all_on(&w, Device::Gpu);
        overcap.assign(0, 2, Device::BigCpu);
        overcap.assign(0, 5, Device::LittleCpu);
        overcap.assign(0, 8, Device::BigCpu);
        assert_eq!(overcap.stage_count(0), 7);
        let s = SchedState::from_partial_mapping(&env, &overcap, 1).unwrap();
        assert!(s.is_dead());
        assert!(env.is_terminal(&s));
    }

    /// Counts every mapping that reaches the evaluator.
    struct CountingModel {
        inner: AnalyticModel,
        queries: AtomicUsize,
    }

    impl ThroughputModel for CountingModel {
        fn evaluate(
            &self,
            workload: &Workload,
            mapping: &Mapping,
        ) -> Result<omniboost_hw::ThroughputReport, HwError> {
            self.queries.fetch_add(1, Ordering::Relaxed);
            self.inner.evaluate(workload, mapping)
        }

        fn evaluate_batch(
            &self,
            workload: &Workload,
            mappings: &[Mapping],
        ) -> Vec<Result<omniboost_hw::ThroughputReport, HwError>> {
            self.queries.fetch_add(mappings.len(), Ordering::Relaxed);
            self.inner.evaluate_batch(workload, mappings)
        }
    }

    #[test]
    fn search_evaluations_equal_actual_evaluator_queries() {
        // The §V-B accounting invariant: `SearchResult::evaluations` must
        // equal the number of mappings the evaluator actually scored —
        // dead states, memo hits and within-batch duplicates are free.
        let board = Board::hikey970();
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet]);
        let counting = CountingModel {
            inner: AnalyticModel::new(board),
            queries: AtomicUsize::new(0),
        };
        for batch in [1usize, 16] {
            let env = SchedulingEnv::new(&w, &counting, 3).unwrap();
            let before = counting.queries.load(Ordering::Relaxed);
            let result = Mcts::new(SearchBudget::with_iterations(200).with_batch_size(batch))
                .search(&env, 9);
            let actual = counting.queries.load(Ordering::Relaxed) - before;
            assert_eq!(
                result.evaluations, actual,
                "batch {batch}: reported {} vs actual {actual}",
                result.evaluations
            );
            // Cross-check against the env's own counters.
            assert_eq!(result.evaluations, env.memo_misses());
            assert!(result.live_terminal_rollouts <= result.terminal_rollouts);
            assert!(result.terminal_rollouts <= result.iterations);
        }
    }

    #[test]
    fn memo_and_dedup_counters_are_split() {
        let (w, ev) = setup();
        let env = SchedulingEnv::new(&w, &ev, 3).unwrap();
        let mut s = env.initial();
        while !env.is_terminal(&s) {
            s = env.apply(&s, Device::Gpu.index());
        }
        // Three copies in one batch: 1 evaluator query + 2 dedup hits.
        let (r, queries) = env.reward_batch_counted(&[s.clone(), s.clone(), s.clone()]);
        assert_eq!(queries, 1);
        assert!((r[0] - r[1]).abs() < 1e-12 && (r[1] - r[2]).abs() < 1e-12);
        assert_eq!(env.memo_misses(), 1);
        assert_eq!(env.batch_dedup_hits(), 2);
        assert_eq!(env.memo_hits(), 0, "same-round dups are not memo hits");
        // A later batch with the same assignment: a true memo hit.
        let (_, queries) = env.reward_batch_counted(&[s.clone()]);
        assert_eq!(queries, 0);
        assert_eq!(env.memo_hits(), 1);
        assert_eq!(env.batch_dedup_hits(), 2);
        assert_eq!(env.memo_misses(), 1);
    }
}
