//! UCT tree search over an [`Environment`].

use crate::budget::SearchBudget;
use crate::env::Environment;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of a search.
#[derive(Debug, Clone)]
pub struct SearchResult<S> {
    /// Best terminal state discovered (the paper's "mapping with highest
    /// reward", Fig. 2 step 8).
    pub best_state: S,
    /// Its reward.
    pub best_reward: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Estimator (reward) evaluations performed — the dominant run-time
    /// cost the paper discusses in §V-B.
    pub evaluations: usize,
}

struct Node<S> {
    state: S,
    parent: Option<usize>,
    /// child node index per action; `None` = unexpanded.
    children: Vec<Option<usize>>,
    visits: u64,
    total_reward: f64,
    terminal: bool,
}

/// Monte-Carlo Tree Search with UCT selection, single-child expansion,
/// uniform random rollouts and mean-reward backpropagation.
///
/// See the crate docs for a complete example.
#[derive(Debug, Clone, Copy)]
pub struct Mcts {
    budget: SearchBudget,
}

impl Mcts {
    /// Creates a search with the given budget.
    pub fn new(budget: SearchBudget) -> Self {
        Self { budget }
    }

    /// The configured budget.
    pub fn budget(&self) -> SearchBudget {
        self.budget
    }

    /// Runs the search from the environment's initial state.
    ///
    /// # Panics
    ///
    /// Panics if the initial state is terminal and the environment
    /// rewards it as unreachable, or if `num_actions() == 0`.
    pub fn search<E: Environment>(&self, env: &E, seed: u64) -> SearchResult<E::State> {
        assert!(env.num_actions() > 0, "environment must have actions");
        let mut rng = StdRng::seed_from_u64(seed);
        let root_state = env.initial();
        let mut nodes: Vec<Node<E::State>> = vec![Node {
            terminal: env.is_terminal(&root_state),
            state: root_state.clone(),
            parent: None,
            children: vec![None; env.num_actions()],
            visits: 0,
            total_reward: 0.0,
        }];
        let mut best_state: Option<E::State> = None;
        let mut best_reward = 0.0f64;
        let mut evaluations = 0usize;

        for _ in 0..self.budget.iterations {
            // 1. Selection: descend while fully expanded and non-terminal.
            let mut idx = 0usize;
            loop {
                if nodes[idx].terminal {
                    break;
                }
                let unexpanded: Vec<usize> = nodes[idx]
                    .children
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.is_none())
                    .map(|(a, _)| a)
                    .collect();
                if !unexpanded.is_empty() {
                    // 2. Expansion: add one random unexpanded child.
                    let action = unexpanded[rng.gen_range(0..unexpanded.len())];
                    let child_state = env.apply(&nodes[idx].state, action);
                    let terminal = env.is_terminal(&child_state);
                    let child = Node {
                        state: child_state,
                        parent: Some(idx),
                        children: vec![None; env.num_actions()],
                        visits: 0,
                        total_reward: 0.0,
                        terminal,
                    };
                    nodes.push(child);
                    let cidx = nodes.len() - 1;
                    nodes[idx].children[action] = Some(cidx);
                    idx = cidx;
                    break;
                }
                // UCT descent.
                let ln_n = ((nodes[idx].visits.max(1)) as f64).ln();
                let mut best_child = None;
                let mut best_uct = f64::NEG_INFINITY;
                for c in nodes[idx].children.iter().flatten() {
                    let ch = &nodes[*c];
                    let mean = if ch.visits == 0 {
                        0.0
                    } else {
                        ch.total_reward / ch.visits as f64
                    };
                    let uct = mean
                        + self.budget.exploration * (ln_n / (ch.visits.max(1)) as f64).sqrt();
                    if uct > best_uct {
                        best_uct = uct;
                        best_child = Some(*c);
                    }
                }
                idx = best_child.expect("fully expanded node has children");
            }

            // 3. Simulation: random rollout to a terminal state (depth
            //    capped; overruns count as losses).
            let mut rollout = nodes[idx].state.clone();
            let mut depth = 0usize;
            let reward = loop {
                if env.is_terminal(&rollout) {
                    evaluations += 1;
                    break env.reward(&rollout);
                }
                if depth >= self.budget.max_depth {
                    break 0.0;
                }
                let action = env.rollout_action(&rollout, &mut rng);
                rollout = env.apply(&rollout, action);
                depth += 1;
            };
            // Only positive-reward terminals qualify as solutions: losing
            // states (reward 0) must never be returned as "best".
            if env.is_terminal(&rollout) && reward > best_reward {
                best_reward = reward;
                best_state = Some(rollout);
            }

            // 4. Backpropagation.
            let mut cur = Some(idx);
            while let Some(i) = cur {
                nodes[i].visits += 1;
                nodes[i].total_reward += reward;
                cur = nodes[i].parent;
            }
        }

        SearchResult {
            best_state: best_state.unwrap_or(root_state),
            best_reward,
            iterations: self.budget.iterations,
            evaluations,
        }
    }

    /// Root-parallel search: runs one independent tree per seed on its own
    /// thread and returns the best result across trees.
    ///
    /// Root parallelism is the classic low-communication MCTS
    /// parallelization — each tree explores with different randomness, so
    /// wall-clock time stays one search while solution quality approaches
    /// a `seeds.len()`-times larger budget. The environment only needs to
    /// be `Sync` (the CNN estimator is: it locks internally).
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn search_parallel<E>(&self, env: &E, seeds: &[u64]) -> SearchResult<E::State>
    where
        E: Environment + Sync,
        E::State: Send,
    {
        assert!(!seeds.is_empty(), "need at least one seed");
        let mut results: Vec<SearchResult<E::State>> = std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .iter()
                .map(|seed| {
                    let seed = *seed;
                    scope.spawn(move || self.search(env, seed))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("search worker panicked"))
                .collect()
        });
        let mut best = results.pop().expect("at least one result");
        for r in results {
            best.iterations += r.iterations;
            best.evaluations += r.evaluations;
            if r.best_reward > best.best_reward {
                best.best_reward = r.best_reward;
                best.best_state = r.best_state;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_env::CountOnes;

    #[test]
    fn finds_optimum_of_toy_problem() {
        let env = CountOnes { depth: 8 };
        let mcts = Mcts::new(SearchBudget {
            iterations: 400,
            max_depth: 16,
            exploration: std::f64::consts::SQRT_2,
        });
        let result = mcts.search(&env, 1);
        assert_eq!(result.best_reward, 1.0, "should find all-ones");
        assert!(result.best_state.iter().all(|b| *b == 1));
    }

    #[test]
    fn respects_iteration_budget() {
        let env = CountOnes { depth: 4 };
        let result = Mcts::new(SearchBudget::with_iterations(37)).search(&env, 2);
        assert_eq!(result.iterations, 37);
        assert!(result.evaluations <= 37);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let env = CountOnes { depth: 6 };
        let mcts = Mcts::new(SearchBudget::with_iterations(100));
        let a = mcts.search(&env, 9);
        let b = mcts.search(&env, 9);
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.best_reward, b.best_reward);
    }

    #[test]
    fn more_budget_is_no_worse_on_average() {
        let env = CountOnes { depth: 10 };
        let small: f64 = (0..5)
            .map(|s| Mcts::new(SearchBudget::with_iterations(10)).search(&env, s).best_reward)
            .sum();
        let large: f64 = (0..5)
            .map(|s| Mcts::new(SearchBudget::with_iterations(300)).search(&env, s).best_reward)
            .sum();
        assert!(large >= small);
    }

    #[test]
    fn parallel_search_aggregates_trees() {
        let env = CountOnes { depth: 8 };
        let mcts = Mcts::new(SearchBudget::with_iterations(50));
        let result = mcts.search_parallel(&env, &[1, 2, 3, 4]);
        assert_eq!(result.iterations, 200);
        // Best across 4 trees is at least as good as any single tree.
        let single = mcts.search(&env, 1);
        assert!(result.best_reward >= single.best_reward);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn parallel_search_requires_seeds() {
        let env = CountOnes { depth: 4 };
        let _ = Mcts::new(SearchBudget::with_iterations(5)).search_parallel(&env, &[]);
    }

    #[test]
    fn depth_cap_turns_overruns_into_losses() {
        // Depth cap smaller than the problem depth: every rollout from
        // the root overruns, so rewards stay 0 — but the search must
        // still terminate and return the root state.
        let env = CountOnes { depth: 50 };
        let result = Mcts::new(SearchBudget {
            iterations: 30,
            max_depth: 5,
            exploration: 1.0,
        })
        .search(&env, 3);
        assert_eq!(result.best_reward, 0.0);
        assert_eq!(result.evaluations, 0);
    }
}
