//! UCT tree search over an [`Environment`].

use crate::budget::SearchBudget;
use crate::env::Environment;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of a search.
#[derive(Debug, Clone)]
pub struct SearchResult<S> {
    /// Best terminal state discovered (the paper's "mapping with highest
    /// reward", Fig. 2 step 8).
    pub best_state: S,
    /// Its reward.
    pub best_reward: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// **Actual evaluator queries** performed — the dominant run-time
    /// cost the paper discusses in §V-B. Counted by the environment
    /// ([`Environment::reward_batch_counted`]): terminal rollouts
    /// answered by a memo, by within-batch deduplication, or scored 0 as
    /// dead states never reach the evaluator and are not counted here.
    pub evaluations: usize,
    /// Rollouts that reached *any* terminal state (live or dead) within
    /// the depth cap.
    pub terminal_rollouts: usize,
    /// Rollouts that reached a **live** terminal (positive reward) — the
    /// yield that determines how full each evaluation batch actually is.
    pub live_terminal_rollouts: usize,
    /// Batched scoring rounds performed (per root tree, accumulated by
    /// the root-parallel merge) — `live_terminal_rollouts / rounds` is
    /// the effective evaluation batch fill.
    pub rounds: usize,
}

/// Per-action slot of a node.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Child {
    /// Not tried yet.
    Unexplored,
    /// Tried and found to be a known loss ([`Environment::is_losing`]);
    /// its exact value is 0, so no node is materialized and selection
    /// never descends here.
    Pruned,
    /// Expanded into a tree node.
    Node(usize),
}

struct Node<S> {
    state: S,
    parent: Option<usize>,
    /// Child slot per action.
    children: Vec<Child>,
    visits: u64,
    total_reward: f64,
    terminal: bool,
}

/// Monte-Carlo Tree Search with UCT selection, single-child expansion
/// with known-loss pruning ([`Environment::is_losing`]), policy-driven
/// rollouts and mean-reward backpropagation.
///
/// See the crate docs for a complete example.
#[derive(Debug, Clone, Copy)]
pub struct Mcts {
    budget: SearchBudget,
}

impl Mcts {
    /// Creates a search with the given budget.
    pub fn new(budget: SearchBudget) -> Self {
        Self { budget }
    }

    /// The configured budget.
    pub fn budget(&self) -> SearchBudget {
        self.budget
    }

    /// Runs the search from the environment's initial state.
    ///
    /// Iterations proceed in rounds of up to `budget.batch_size` leaf
    /// rollouts. Within a round, each selected path receives a *virtual
    /// loss* (its visit count is pre-incremented with zero reward), which
    /// keeps UCT selection sound while rewards are pending and steers
    /// concurrent selections apart; the round's terminal rollouts are
    /// then scored through **one** [`Environment::reward_batch`] call and
    /// backpropagated, leaving node statistics exactly as if each
    /// iteration had been resolved individually. With `batch_size == 1`
    /// this reproduces the classic scalar loop draw-for-draw.
    ///
    /// # Panics
    ///
    /// Panics if the initial state is terminal and the environment
    /// rewards it as unreachable, or if `num_actions() == 0`.
    pub fn search<E: Environment>(&self, env: &E, seed: u64) -> SearchResult<E::State> {
        self.search_from(env, env.initial(), seed)
    }

    /// Runs the search from an explicit **root state** instead of
    /// [`Environment::initial`] — the warm-start entry point of the
    /// online rescheduling path: a partially decided state (for
    /// scheduling, the previous mapping's surviving device paths) shrinks
    /// the effective search space to the still-open decisions, so far
    /// fewer iterations reach the same solution quality.
    ///
    /// Semantics are identical to [`Mcts::search`] with the tree rooted
    /// at `root_state`; a terminal root returns immediately (its reward
    /// is the best and only result, costing one evaluator query).
    pub fn search_from<E: Environment>(
        &self,
        env: &E,
        root_state: E::State,
        seed: u64,
    ) -> SearchResult<E::State> {
        assert!(env.num_actions() > 0, "environment must have actions");
        if env.is_terminal(&root_state) {
            let (reward, evaluations) = if env.is_losing(&root_state) {
                (0.0, 0)
            } else {
                (env.reward(&root_state), 1)
            };
            return SearchResult {
                best_state: root_state,
                best_reward: reward,
                iterations: 0,
                evaluations,
                terminal_rollouts: 1,
                live_terminal_rollouts: usize::from(reward > 0.0),
                rounds: 0,
            };
        }
        let batch_size = self.budget.batch_size.max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nodes: Vec<Node<E::State>> = vec![Node {
            terminal: env.is_terminal(&root_state),
            state: root_state.clone(),
            parent: None,
            children: vec![Child::Unexplored; env.num_actions()],
            visits: 0,
            total_reward: 0.0,
        }];
        let mut best_state: Option<E::State> = None;
        let mut best_reward = 0.0f64;
        let mut evaluations = 0usize;
        let mut terminal_rollouts = 0usize;
        let mut live_terminal_rollouts = 0usize;
        let mut rounds = 0usize;
        let mut done = 0usize;

        while done < self.budget.iterations {
            let quota = batch_size.min(self.budget.iterations - done);
            // Pending leaf rollouts of this round: (leaf node, rollout
            // state, rollout reached a terminal).
            let mut pending: Vec<(usize, E::State, bool)> = Vec::with_capacity(quota);
            for _ in 0..quota {
                // 1. Selection: descend while fully expanded and
                //    non-terminal.
                let mut idx = 0usize;
                loop {
                    if nodes[idx].terminal {
                        break;
                    }
                    let mut unexplored: Vec<usize> = nodes[idx]
                        .children
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| **c == Child::Unexplored)
                        .map(|(a, _)| a)
                        .collect();
                    // 2. Expansion: try random unexplored actions,
                    //    pruning known losses (their value is exactly 0;
                    //    materializing them would burn an iteration per
                    //    loss) until a live child expands. A loss is only
                    //    kept if it is the node's very last option, so
                    //    every non-terminal node on a path always ends up
                    //    with at least one real child.
                    let mut expanded = None;
                    while !unexplored.is_empty() {
                        let pick = rng.gen_range(0..unexplored.len());
                        let action = unexplored.swap_remove(pick);
                        let child_state = env.apply(&nodes[idx].state, action);
                        if env.is_losing(&child_state)
                            && (!unexplored.is_empty()
                                || nodes[idx]
                                    .children
                                    .iter()
                                    .any(|c| matches!(c, Child::Node(_))))
                        {
                            nodes[idx].children[action] = Child::Pruned;
                            continue;
                        }
                        let terminal = env.is_terminal(&child_state);
                        let child = Node {
                            state: child_state,
                            parent: Some(idx),
                            children: vec![Child::Unexplored; env.num_actions()],
                            visits: 0,
                            total_reward: 0.0,
                            terminal,
                        };
                        nodes.push(child);
                        let cidx = nodes.len() - 1;
                        nodes[idx].children[action] = Child::Node(cidx);
                        expanded = Some(cidx);
                        break;
                    }
                    if let Some(cidx) = expanded {
                        idx = cidx;
                        break;
                    }
                    // UCT descent (pending virtual visits make in-flight
                    // paths look pessimistic, diversifying the round).
                    let ln_n = ((nodes[idx].visits.max(1)) as f64).ln();
                    let mut best_child = None;
                    let mut best_uct = f64::NEG_INFINITY;
                    for c in &nodes[idx].children {
                        let Child::Node(c) = c else { continue };
                        let ch = &nodes[*c];
                        let mean = if ch.visits == 0 {
                            0.0
                        } else {
                            ch.total_reward / ch.visits as f64
                        };
                        let uct = mean
                            + self.budget.exploration * (ln_n / (ch.visits.max(1)) as f64).sqrt();
                        if uct > best_uct {
                            best_uct = uct;
                            best_child = Some(*c);
                        }
                    }
                    idx = best_child.expect("fully expanded node has children");
                }

                // 3. Simulation: random rollout to a terminal state
                //    (depth capped; overruns count as losses).
                let mut rollout = nodes[idx].state.clone();
                let mut depth = 0usize;
                let mut terminal = false;
                loop {
                    if env.is_terminal(&rollout) {
                        terminal = true;
                        break;
                    }
                    if depth >= self.budget.max_depth {
                        break;
                    }
                    let action = env.rollout_action(&rollout, &mut rng);
                    rollout = env.apply(&rollout, action);
                    depth += 1;
                }

                // Virtual loss: pre-count the visit with zero reward so
                // later selections in this round see the path as taken.
                let mut cur = Some(idx);
                while let Some(i) = cur {
                    nodes[i].visits += 1;
                    cur = nodes[i].parent;
                }
                pending.push((idx, rollout, terminal));
            }

            // 4. Batched evaluation: one round trip for every terminal
            //    rollout of the round (overruns score 0 without a query).
            //    The environment reports how many states actually cost an
            //    evaluator query (memo hits / dedup / dead are free).
            let to_score: Vec<E::State> = pending
                .iter()
                .filter(|(_, _, terminal)| *terminal)
                .map(|(_, state, _)| state.clone())
                .collect();
            let rewards = if to_score.is_empty() {
                Vec::new()
            } else {
                let (rewards, queries) = env.reward_batch_counted(&to_score);
                evaluations += queries;
                rewards
            };

            // 5. Backpropagation: convert each virtual loss into the real
            //    outcome (the visit is already counted).
            let mut ri = 0usize;
            for (idx, rollout, terminal) in pending {
                let reward = if terminal {
                    let r = rewards[ri];
                    ri += 1;
                    terminal_rollouts += 1;
                    if r > 0.0 {
                        live_terminal_rollouts += 1;
                    }
                    r
                } else {
                    0.0
                };
                // Only positive-reward terminals qualify as solutions:
                // losing states (reward 0) must never be returned as
                // "best".
                if terminal && reward > best_reward {
                    best_reward = reward;
                    best_state = Some(rollout);
                }
                let mut cur = Some(idx);
                while let Some(i) = cur {
                    nodes[i].total_reward += reward;
                    cur = nodes[i].parent;
                }
            }
            done += quota;
            rounds += 1;
        }

        SearchResult {
            best_state: best_state.unwrap_or(root_state),
            best_reward,
            iterations: self.budget.iterations,
            evaluations,
            terminal_rollouts,
            live_terminal_rollouts,
            rounds,
        }
    }

    /// Dispatches on the budget: `parallelism == 1` runs [`Mcts::search`]
    /// directly; otherwise the iteration budget is split across
    /// `parallelism` root-parallel trees with deterministically derived
    /// per-root seeds, and their results merge into one
    /// [`SearchResult`] (total iterations preserved). Merging scans trees
    /// in seed order, so the outcome is independent of thread timing.
    pub fn run<E>(&self, env: &E, seed: u64) -> SearchResult<E::State>
    where
        E: Environment + Sync,
        E::State: Send,
    {
        let parallelism = self.budget.parallelism.max(1);
        // Single-tree configs and degenerate budgets (0 iterations would
        // leave no root with a share) take the direct path.
        if parallelism == 1 || self.budget.iterations < parallelism {
            return self.search(env, seed);
        }
        use rayon::prelude::*;
        let total = self.budget.iterations;
        let shares: Vec<(u64, usize)> = (0..parallelism)
            .map(|p| {
                let share = total / parallelism + usize::from(p < total % parallelism);
                (derive_root_seed(seed, p), share)
            })
            .filter(|(_, share)| *share > 0)
            .collect();
        let per_root: Vec<SearchResult<E::State>> = shares
            .par_iter()
            .map(|(root_seed, share)| {
                let budget = SearchBudget {
                    iterations: *share,
                    parallelism: 1,
                    ..self.budget
                };
                Mcts::new(budget).search(env, *root_seed)
            })
            .collect();
        merge_results(per_root)
    }

    /// Root-parallel search: runs one independent tree per seed on the
    /// rayon worker pool and returns the best result across trees.
    ///
    /// Root parallelism is the classic low-communication MCTS
    /// parallelization — each tree explores with different randomness, so
    /// wall-clock time stays one search while solution quality approaches
    /// a `seeds.len()`-times larger budget. The environment only needs to
    /// be `Sync` (the CNN estimator is: it locks internally). Unlike
    /// [`Mcts::run`], every tree runs the *full* iteration budget.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn search_parallel<E>(&self, env: &E, seeds: &[u64]) -> SearchResult<E::State>
    where
        E: Environment + Sync,
        E::State: Send,
    {
        assert!(!seeds.is_empty(), "need at least one seed");
        use rayon::prelude::*;
        let results: Vec<SearchResult<E::State>> = seeds
            .par_iter()
            .map(|seed| self.search(env, *seed))
            .collect();
        merge_results(results)
    }
}

/// Per-root seed derivation for [`Mcts::run`]: SplitMix64-style mixing so
/// each root tree gets a well-separated deterministic stream.
fn derive_root_seed(seed: u64, root: usize) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(root as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Merges per-tree results in order: iterations/evaluations/rollout
/// counters accumulate, the strictly best reward wins (first tree on
/// ties, so the merge is deterministic regardless of thread scheduling).
fn merge_results<S>(mut results: Vec<SearchResult<S>>) -> SearchResult<S> {
    let mut best = results.remove(0);
    for r in results {
        best.iterations += r.iterations;
        best.evaluations += r.evaluations;
        best.terminal_rollouts += r.terminal_rollouts;
        best.live_terminal_rollouts += r.live_terminal_rollouts;
        best.rounds += r.rounds;
        if r.best_reward > best.best_reward {
            best.best_reward = r.best_reward;
            best.best_state = r.best_state;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_env::CountOnes;

    #[test]
    fn finds_optimum_of_toy_problem() {
        let env = CountOnes { depth: 8 };
        let mcts = Mcts::new(SearchBudget {
            iterations: 400,
            max_depth: 16,
            ..SearchBudget::default()
        });
        let result = mcts.search(&env, 1);
        assert_eq!(result.best_reward, 1.0, "should find all-ones");
        assert!(result.best_state.iter().all(|b| *b == 1));
    }

    #[test]
    fn batched_search_finds_optimum_too() {
        let env = CountOnes { depth: 8 };
        for batch in [1usize, 4, 16, 64] {
            let mcts = Mcts::new(SearchBudget::with_iterations(400).with_batch_size(batch));
            let result = mcts.search(&env, 1);
            assert_eq!(result.best_reward, 1.0, "batch {batch} missed the optimum");
        }
    }

    #[test]
    fn respects_iteration_budget() {
        let env = CountOnes { depth: 4 };
        let result = Mcts::new(SearchBudget::with_iterations(37)).search(&env, 2);
        assert_eq!(result.iterations, 37);
        assert!(result.evaluations <= 37);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let env = CountOnes { depth: 6 };
        let mcts = Mcts::new(SearchBudget::with_iterations(100));
        let a = mcts.search(&env, 9);
        let b = mcts.search(&env, 9);
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.best_reward, b.best_reward);
    }

    #[test]
    fn more_budget_is_no_worse_on_average() {
        let env = CountOnes { depth: 10 };
        let small: f64 = (0..5)
            .map(|s| {
                Mcts::new(SearchBudget::with_iterations(10))
                    .search(&env, s)
                    .best_reward
            })
            .sum();
        let large: f64 = (0..5)
            .map(|s| {
                Mcts::new(SearchBudget::with_iterations(300))
                    .search(&env, s)
                    .best_reward
            })
            .sum();
        assert!(large >= small);
    }

    #[test]
    fn parallel_search_aggregates_trees() {
        let env = CountOnes { depth: 8 };
        let mcts = Mcts::new(SearchBudget::with_iterations(50));
        let result = mcts.search_parallel(&env, &[1, 2, 3, 4]);
        assert_eq!(result.iterations, 200);
        // Best across 4 trees is at least as good as any single tree.
        let single = mcts.search(&env, 1);
        assert!(result.best_reward >= single.best_reward);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn parallel_search_requires_seeds() {
        let env = CountOnes { depth: 4 };
        let _ = Mcts::new(SearchBudget::with_iterations(5)).search_parallel(&env, &[]);
    }

    #[test]
    fn depth_cap_turns_overruns_into_losses() {
        // Depth cap smaller than the problem depth: every rollout from
        // the root overruns, so rewards stay 0 — but the search must
        // still terminate and return the root state.
        let env = CountOnes { depth: 50 };
        let result = Mcts::new(SearchBudget {
            iterations: 30,
            max_depth: 5,
            exploration: 1.0,
            ..SearchBudget::default()
        })
        .search(&env, 3);
        assert_eq!(result.best_reward, 0.0);
        assert_eq!(result.evaluations, 0);
    }

    #[test]
    fn batch_size_one_matches_legacy_scalar_loop() {
        // The batched implementation with batch_size == 1 must reproduce
        // the classic select→rollout→evaluate→backprop loop draw-for-draw
        // (identical RNG consumption, identical statistics), so the
        // scalar baseline in benchmarks is exactly the historical search.
        let env = CountOnes { depth: 10 };
        let scalar = Mcts::new(SearchBudget::scalar(200)).search(&env, 17);
        let again = Mcts::new(SearchBudget::scalar(200)).search(&env, 17);
        assert_eq!(scalar.best_state, again.best_state);
        assert_eq!(scalar.best_reward, again.best_reward);
        assert_eq!(scalar.evaluations, again.evaluations);
    }

    #[test]
    fn batched_search_is_deterministic_per_seed() {
        let env = CountOnes { depth: 9 };
        let mcts = Mcts::new(SearchBudget::with_iterations(150).with_batch_size(8));
        let a = mcts.search(&env, 21);
        let b = mcts.search(&env, 21);
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.best_reward, b.best_reward);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn run_with_parallelism_splits_budget_and_is_deterministic() {
        let env = CountOnes { depth: 8 };
        let mcts = Mcts::new(
            SearchBudget::with_iterations(200)
                .with_batch_size(4)
                .with_parallelism(4),
        );
        let a = mcts.run(&env, 5);
        let b = mcts.run(&env, 5);
        // Total budget preserved across root trees.
        assert_eq!(a.iterations, 200);
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.best_reward, b.best_reward);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn run_survives_degenerate_budgets() {
        let env = CountOnes { depth: 4 };
        // Zero iterations with parallelism: no root gets a share; must
        // fall back gracefully instead of merging an empty result set.
        let r = Mcts::new(SearchBudget::with_iterations(0).with_parallelism(4)).run(&env, 1);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.evaluations, 0);
        assert_eq!(r.best_reward, 0.0);
        // Fewer iterations than trees: still runs and respects the total.
        let r = Mcts::new(SearchBudget::with_iterations(3).with_parallelism(8)).run(&env, 1);
        assert_eq!(r.iterations, 3);
    }

    #[test]
    fn search_from_partial_root_freezes_the_prefix() {
        let env = CountOnes { depth: 8 };
        // Root with 4 decisions already taken (two zeros, two ones).
        let mut root = env.initial();
        for a in [0, 1, 0, 1] {
            root = env.apply(&root, a);
        }
        let result =
            Mcts::new(SearchBudget::with_iterations(200)).search_from(&env, root.clone(), 3);
        // The prefix is frozen: the best state must extend it, and the
        // suffix optimum (all ones) is found: (2 + 4) / 8.
        assert_eq!(&result.best_state[..4], &[0, 1, 0, 1]);
        assert_eq!(result.best_reward, 6.0 / 8.0);
    }

    #[test]
    fn search_from_terminal_root_returns_it_for_one_query() {
        let env = CountOnes { depth: 3 };
        let mut root = env.initial();
        for a in [1, 1, 1] {
            root = env.apply(&root, a);
        }
        let r = Mcts::new(SearchBudget::with_iterations(50)).search_from(&env, root.clone(), 1);
        assert_eq!(r.best_state, root);
        assert_eq!(r.best_reward, 1.0);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.evaluations, 1);
    }

    #[test]
    fn search_from_initial_matches_plain_search() {
        let env = CountOnes { depth: 7 };
        let mcts = Mcts::new(SearchBudget::with_iterations(120).with_batch_size(8));
        let a = mcts.search(&env, 9);
        let b = mcts.search_from(&env, env.initial(), 9);
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.best_reward, b.best_reward);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn run_without_parallelism_is_plain_search() {
        let env = CountOnes { depth: 7 };
        let mcts = Mcts::new(SearchBudget::with_iterations(120).with_batch_size(8));
        let via_run = mcts.run(&env, 9);
        let via_search = mcts.search(&env, 9);
        assert_eq!(via_run.best_state, via_search.best_state);
        assert_eq!(via_run.best_reward, via_search.best_reward);
    }
}
