//! Property-based tests over the tree search and scheduling environment.

use omniboost_hw::{AnalyticModel, Board, Device, Mapping, Workload};
use omniboost_mcts::{Environment, Mcts, SchedState, SchedulingEnv, SearchBudget};
use omniboost_models::ModelId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_mix() -> impl Strategy<Value = Vec<ModelId>> {
    proptest::sample::subsequence(ModelId::ALL.to_vec(), 1..=3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any sequence of legal actions drives the environment to a terminal
    /// state in exactly `num_decisions` steps (unless the losing rule
    /// fires earlier), and the resulting mapping is always well-formed.
    #[test]
    fn action_sequences_terminate_with_valid_mappings(
        mix in arb_mix(),
        actions in proptest::collection::vec(0usize..3, 150),
    ) {
        let board = Board::hikey970();
        let evaluator = AnalyticModel::new(board);
        let workload = Workload::from_ids(mix);
        let env = SchedulingEnv::new(&workload, &evaluator, 3).unwrap();
        let mut state = env.initial();
        let mut steps = 0usize;
        for a in &actions {
            if env.is_terminal(&state) {
                break;
            }
            state = env.apply(&state, *a);
            steps += 1;
        }
        prop_assert!(env.is_terminal(&state) || steps == actions.len());
        let mapping = env.mapping_of(&state);
        mapping.validate(&workload).unwrap();
        if env.is_terminal(&state) && !state.is_dead() {
            prop_assert!(mapping.max_stages() <= 3);
            prop_assert!(env.reward(&state) > 0.0);
            prop_assert_eq!(steps, env.num_decisions());
        }
    }

    /// The search never returns a dead (stage-cap-violating) state as its
    /// best solution, for any seed.
    #[test]
    fn search_never_returns_losing_states(seed in 0u64..200) {
        let board = Board::hikey970();
        let evaluator = AnalyticModel::new(board);
        let workload = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let env = SchedulingEnv::new(&workload, &evaluator, 3).unwrap();
        let result = Mcts::new(SearchBudget::with_iterations(60)).search(&env, seed);
        prop_assert!(!result.best_state.is_dead());
        let mapping = env.mapping_of(&result.best_state);
        prop_assert!(mapping.max_stages() <= 3);
    }

    /// Rewards are scale-consistent: the GPU-only mapping scores its
    /// win bonus + 1 (it IS the normalization reference).
    #[test]
    fn gpu_only_reward_is_unity_plus_bonus(mix in arb_mix()) {
        let board = Board::hikey970();
        let evaluator = AnalyticModel::new(board);
        let workload = Workload::from_ids(mix);
        let env = SchedulingEnv::new(&workload, &evaluator, 3).unwrap();
        let mut s = env.initial();
        while !env.is_terminal(&s) {
            s = env.apply(&s, Device::Gpu.index());
        }
        let r = env.reward(&s);
        prop_assert!((r - 1.1).abs() < 1e-6, "reward = {r}");
    }

    /// Search rewards are monotone in budget on average (smoke-level:
    /// a 150-iteration search is at least as good as the best of its own
    /// first 25 iterations would imply — we check it's >= a 25-iteration
    /// run with the same seed).
    #[test]
    fn budget_monotonicity_same_seed(seed in 0u64..50) {
        let board = Board::hikey970();
        let evaluator = AnalyticModel::new(board);
        let workload = Workload::from_ids([ModelId::SqueezeNet, ModelId::AlexNet]);
        let env = SchedulingEnv::new(&workload, &evaluator, 3).unwrap();
        let small = Mcts::new(SearchBudget::with_iterations(25)).search(&env, seed);
        let large = Mcts::new(SearchBudget::with_iterations(150)).search(&env, seed);
        prop_assert!(large.best_reward >= small.best_reward - 1e-9);
    }

    /// Budget-aware playouts from ANY reachable live state never die on
    /// the stage cap: drive the environment to a random live state with
    /// arbitrary (death-avoiding) actions, then roll out to a terminal
    /// with the environment's own policy.
    #[test]
    fn budget_aware_rollouts_from_reachable_live_states_never_die(
        mix in arb_mix(),
        prefix_frac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let board = Board::hikey970();
        let evaluator = AnalyticModel::new(board);
        let workload = Workload::from_ids(mix);
        let env = SchedulingEnv::new(&workload, &evaluator, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        // Random reachable live prefix (retry draws that would kill).
        let target = (prefix_frac * env.num_decisions() as f64) as usize;
        let mut state = env.initial();
        while state.decisions_taken() < target {
            let next = env.apply(&state, rng.gen_range(0..Device::COUNT));
            if !next.is_dead() {
                state = next;
            }
        }
        prop_assert!(!env.is_terminal(&state) || !state.is_dead());
        // Policy rollout to the end.
        while !env.is_terminal(&state) {
            let action = env.rollout_action(&state, &mut rng);
            state = env.apply(&state, action);
        }
        prop_assert!(!state.is_dead(), "budget-aware playout died");
        prop_assert!(env.reward(&state) > 0.0);
        prop_assert!(env.mapping_of(&state).max_stages() <= 3);
    }

    /// Batched search under the budget-aware policy is deterministic per
    /// seed, and every rollout of the heavy regime reaches a live
    /// terminal (the batch actually fills).
    #[test]
    fn batched_budget_aware_search_is_deterministic_and_full_yield(
        mix in arb_mix(),
        seed in 0u64..500,
    ) {
        let board = Board::hikey970();
        let evaluator = AnalyticModel::new(board);
        let workload = Workload::from_ids(mix);
        let mcts = Mcts::new(SearchBudget::with_iterations(60).with_batch_size(8));
        let env_a = SchedulingEnv::new(&workload, &evaluator, 3).unwrap();
        let a = mcts.search(&env_a, seed);
        let env_b = SchedulingEnv::new(&workload, &evaluator, 3).unwrap();
        let b = mcts.search(&env_b, seed);
        prop_assert_eq!(&a.best_state, &b.best_state);
        prop_assert_eq!(a.best_reward, b.best_reward);
        prop_assert_eq!(a.evaluations, b.evaluations);
        prop_assert_eq!(a.live_terminal_rollouts, b.live_terminal_rollouts);
        // Small mixes fit the depth cap, so full yield is guaranteed.
        prop_assert_eq!(a.live_terminal_rollouts, a.iterations);
        prop_assert_eq!(a.terminal_rollouts, a.iterations);
    }

    /// Warm-started search seeded from any valid previous mapping's
    /// carried device paths never returns a losing mapping: a live
    /// completion always exists (carry the prefix, put the new DNN
    /// anywhere whole), so the search must return one — and it must
    /// preserve the carried prefix exactly.
    #[test]
    fn warm_started_search_never_returns_losing_mappings(
        mix in arb_mix(),
        new_model in proptest::sample::select(ModelId::ALL.to_vec()),
        seed in 0u64..300,
    ) {
        let board = Board::hikey970();
        let evaluator = AnalyticModel::new(board);
        let mut ids = mix;
        ids.push(new_model); // the arriving job, appended last
        let workload = Workload::from_ids(ids);
        let mut rng = StdRng::seed_from_u64(seed);
        let previous = Mapping::random(&workload, 3, &mut rng);
        let env = SchedulingEnv::new(&workload, &evaluator, 3).unwrap();
        let carried = workload.len() - 1;
        let root = SchedState::from_partial_mapping(&env, &previous, carried).unwrap();
        prop_assert!(!root.is_dead(), "valid previous mapping cannot seed a dead root");
        let result = Mcts::new(SearchBudget::with_iterations(40)).search_from(&env, root, seed);
        prop_assert!(result.best_reward > 0.0, "warm search returned no live mapping");
        prop_assert!(!result.best_state.is_dead());
        let mapping = env.mapping_of(&result.best_state);
        mapping.validate(&workload).unwrap();
        prop_assert!(mapping.max_stages() <= 3);
        for di in 0..carried {
            prop_assert_eq!(&mapping.assignments()[di], &previous.assignments()[di]);
        }
    }

    /// Warm liveness over **arbitrary freeze shapes**: freeze any subset
    /// of the DNNs (not just a prefix) to a valid previous mapping's
    /// device paths and the search must still return a live mapping that
    /// preserves every frozen row exactly — a live completion always
    /// exists (place every open DNN whole on one device).
    #[test]
    fn subset_frozen_search_never_returns_losing_mappings(
        mix in proptest::sample::subsequence(ModelId::ALL.to_vec(), 2..=4),
        mask_bits in 0usize..15,
        seed in 0u64..300,
    ) {
        let board = Board::hikey970();
        let evaluator = AnalyticModel::new(board);
        let workload = Workload::from_ids(mix);
        let frozen: Vec<bool> = (0..workload.len()).map(|di| mask_bits >> di & 1 == 1).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let previous = Mapping::random(&workload, 3, &mut rng);
        let env = SchedulingEnv::new(&workload, &evaluator, 3).unwrap();
        let root = SchedState::from_frozen_subset(&env, &previous, &frozen).unwrap();
        prop_assert!(!root.is_dead(), "valid previous mapping cannot seed a dead root");
        let result = Mcts::new(SearchBudget::with_iterations(40)).search_from(&env, root, seed);
        prop_assert!(result.best_reward > 0.0, "frozen-subset search returned no live mapping");
        prop_assert!(!result.best_state.is_dead());
        let mapping = env.mapping_of(&result.best_state);
        mapping.validate(&workload).unwrap();
        prop_assert!(mapping.max_stages() <= 3);
        for (di, frozen) in frozen.iter().enumerate() {
            if *frozen {
                prop_assert_eq!(&mapping.assignments()[di], &previous.assignments()[di]);
            }
        }
    }

    /// `batch_size == 1` under the budget-aware policy reproduces the
    /// scalar one-query-per-iteration loop draw-for-draw.
    #[test]
    fn batch_size_one_still_matches_scalar_loop(seed in 0u64..200) {
        let board = Board::hikey970();
        let evaluator = AnalyticModel::new(board);
        let workload = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let env_s = SchedulingEnv::new(&workload, &evaluator, 3).unwrap();
        let scalar = Mcts::new(SearchBudget::scalar(50)).search(&env_s, seed);
        let env_b = SchedulingEnv::new(&workload, &evaluator, 3).unwrap();
        let batched = Mcts::new(SearchBudget::with_iterations(50).with_batch_size(1))
            .search(&env_b, seed);
        prop_assert_eq!(&scalar.best_state, &batched.best_state);
        prop_assert_eq!(scalar.best_reward, batched.best_reward);
        prop_assert_eq!(scalar.evaluations, batched.evaluations);
    }
}
