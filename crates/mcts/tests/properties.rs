//! Property-based tests over the tree search and scheduling environment.

use omniboost_hw::{AnalyticModel, Board, Device, Workload};
use omniboost_mcts::{Environment, Mcts, SchedulingEnv, SearchBudget};
use omniboost_models::ModelId;
use proptest::prelude::*;

fn arb_mix() -> impl Strategy<Value = Vec<ModelId>> {
    proptest::sample::subsequence(ModelId::ALL.to_vec(), 1..=3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any sequence of legal actions drives the environment to a terminal
    /// state in exactly `num_decisions` steps (unless the losing rule
    /// fires earlier), and the resulting mapping is always well-formed.
    #[test]
    fn action_sequences_terminate_with_valid_mappings(
        mix in arb_mix(),
        actions in proptest::collection::vec(0usize..3, 150),
    ) {
        let board = Board::hikey970();
        let evaluator = AnalyticModel::new(board);
        let workload = Workload::from_ids(mix);
        let env = SchedulingEnv::new(&workload, &evaluator, 3).unwrap();
        let mut state = env.initial();
        let mut steps = 0usize;
        for a in &actions {
            if env.is_terminal(&state) {
                break;
            }
            state = env.apply(&state, *a);
            steps += 1;
        }
        prop_assert!(env.is_terminal(&state) || steps == actions.len());
        let mapping = env.mapping_of(&state);
        mapping.validate(&workload).unwrap();
        if env.is_terminal(&state) && !state.is_dead() {
            prop_assert!(mapping.max_stages() <= 3);
            prop_assert!(env.reward(&state) > 0.0);
            prop_assert_eq!(steps, env.num_decisions());
        }
    }

    /// The search never returns a dead (stage-cap-violating) state as its
    /// best solution, for any seed.
    #[test]
    fn search_never_returns_losing_states(seed in 0u64..200) {
        let board = Board::hikey970();
        let evaluator = AnalyticModel::new(board);
        let workload = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let env = SchedulingEnv::new(&workload, &evaluator, 3).unwrap();
        let result = Mcts::new(SearchBudget::with_iterations(60)).search(&env, seed);
        prop_assert!(!result.best_state.is_dead());
        let mapping = env.mapping_of(&result.best_state);
        prop_assert!(mapping.max_stages() <= 3);
    }

    /// Rewards are scale-consistent: the GPU-only mapping scores its
    /// win bonus + 1 (it IS the normalization reference).
    #[test]
    fn gpu_only_reward_is_unity_plus_bonus(mix in arb_mix()) {
        let board = Board::hikey970();
        let evaluator = AnalyticModel::new(board);
        let workload = Workload::from_ids(mix);
        let env = SchedulingEnv::new(&workload, &evaluator, 3).unwrap();
        let mut s = env.initial();
        while !env.is_terminal(&s) {
            s = env.apply(&s, Device::Gpu.index());
        }
        let r = env.reward(&s);
        prop_assert!((r - 1.1).abs() < 1e-6, "reward = {r}");
    }

    /// Search rewards are monotone in budget on average (smoke-level:
    /// a 150-iteration search is at least as good as the best of its own
    /// first 25 iterations would imply — we check it's >= a 25-iteration
    /// run with the same seed).
    #[test]
    fn budget_monotonicity_same_seed(seed in 0u64..50) {
        let board = Board::hikey970();
        let evaluator = AnalyticModel::new(board);
        let workload = Workload::from_ids([ModelId::SqueezeNet, ModelId::AlexNet]);
        let env = SchedulingEnv::new(&workload, &evaluator, 3).unwrap();
        let small = Mcts::new(SearchBudget::with_iterations(25)).search(&env, seed);
        let large = Mcts::new(SearchBudget::with_iterations(150)).search(&env, seed);
        prop_assert!(large.best_reward >= small.best_reward - 1e-9);
    }
}
