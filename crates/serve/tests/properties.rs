//! Property-based tests over the online serving subsystem.

use omniboost_hw::{AnalyticModel, Board};
use omniboost_mcts::SearchBudget;
use omniboost_models::{ArrivalProcess, ArrivalTrace, JobEvent, JobSpec, ModelId, TraceConfig};
use omniboost_serve::{
    AdmissionPolicy, DecisionKind, Fleet, Mempool, OnlineConfig, OnlineScheduler, PlacementPolicy,
    QueueOrder, RejectReason, ReschedulePolicy, ServingConfig, ServingSim, SubmitOutcome,
    TenantAccumulator,
};
use proptest::prelude::*;

const HORIZON_MS: u64 = 30_000;

fn quick_online() -> OnlineConfig {
    OnlineConfig {
        cold_budget: SearchBudget::with_iterations(60),
        warm_budget: SearchBudget::with_iterations(24),
        ..OnlineConfig::default()
    }
}

fn trace_config() -> TraceConfig {
    TraceConfig {
        horizon_ms: HORIZON_MS,
        mean_lifetime_ms: 8_000.0,
        ..TraceConfig::default()
    }
}

fn arb_process() -> impl Strategy<Value = ArrivalProcess> {
    proptest::sample::select(vec![
        ArrivalProcess::Poisson { rate_per_s: 0.8 },
        ArrivalProcess::Bursty {
            on_rate_per_s: 1.6,
            on_ms: 5_000,
            off_ms: 7_000,
        },
        ArrivalProcess::DiurnalRamp {
            peak_rate_per_s: 1.6,
            period_ms: HORIZON_MS,
        },
    ])
}

fn run_once(
    process: ArrivalProcess,
    seed: u64,
    policy: ReschedulePolicy,
    placement: PlacementPolicy,
    boards: usize,
) -> omniboost_serve::ServingReport {
    let trace = ArrivalTrace::generate(process, &trace_config(), seed);
    let config = ServingConfig {
        policy,
        placement,
        online: quick_online(),
        use_memo: policy == ReschedulePolicy::WarmStart,
        cache_path: None,
        admission: AdmissionPolicy::default(),
    };
    let mut sim = ServingSim::new(vec![Board::hikey970(); boards], config, AnalyticModel::new);
    sim.run(&trace, HORIZON_MS)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// (i) Replaying the same seeded trace is bit-for-bit deterministic:
    /// two fresh runtimes produce identical digests (mappings, queue
    /// dynamics, migrations and measured throughputs all included; only
    /// wall-clock latency is excluded by construction).
    #[test]
    fn same_seeded_trace_replays_bit_for_bit(
        process in arb_process(),
        seed in 0u64..500,
        warm in proptest::sample::select(vec![true, false]),
    ) {
        let policy = if warm { ReschedulePolicy::WarmStart } else { ReschedulePolicy::ColdRestart };
        let a = run_once(process, seed, policy, PlacementPolicy::LeastLoaded, 2);
        let b = run_once(process, seed, policy, PlacementPolicy::LeastLoaded, 2);
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a.ticks.len(), b.ticks.len());
        prop_assert_eq!(a.summary.migrated_layers, b.summary.migrated_layers);
        prop_assert_eq!(a.summary.mean_aggregate_tps, b.summary.mean_aggregate_tps);
        // A different seed produces different traffic.
        let c = run_once(process, seed + 1000, policy, PlacementPolicy::LeastLoaded, 2);
        prop_assert_ne!(a.digest(), c.digest());
    }

    /// (ii) Warm-started rescheduling never deploys a losing mapping
    /// when a live one exists — and a live one always exists for every
    /// admitted workload, so every decision of a warm run must deliver
    /// positive measured throughput on a non-empty board.
    #[test]
    fn warm_decisions_always_deploy_live_mappings(
        process in arb_process(),
        seed in 0u64..500,
    ) {
        let report = run_once(process, seed, ReschedulePolicy::WarmStart,
                              PlacementPolicy::LeastLoaded, 2);
        let mut warm_seen = 0usize;
        for tick in &report.ticks {
            for d in &tick.decisions {
                prop_assert!(d.jobs > 0, "idle boards produce no decisions");
                prop_assert!(
                    d.throughput > 0.0,
                    "decision {:?} at {}ms deployed a dead mapping",
                    d.kind, tick.at_ms
                );
                if matches!(d.kind, DecisionKind::WarmArrival | DecisionKind::WarmDepart) {
                    warm_seen += 1;
                    prop_assert!(d.single_job_delta,
                        "warm decisions only fire on single-job deltas");
                }
            }
        }
        // Single-job deltas dominate these traces: warm starts must
        // actually engage, not silently fall back to cold everywhere.
        if report.summary.decisions > 4 {
            prop_assert!(warm_seen > 0, "no warm decision in {} decisions",
                report.summary.decisions);
        }
    }

    /// (iii) Fleet placement never assigns a job to a board whose limits
    /// the resulting workload would violate: resident job counts stay
    /// within the board's concurrent-DNN cap at every tick, and a job
    /// only waits in the queue while every board is genuinely full.
    #[test]
    fn placement_respects_board_admission(
        process in arb_process(),
        seed in 0u64..500,
        placement in proptest::sample::select(vec![
            PlacementPolicy::RoundRobin,
            PlacementPolicy::LeastLoaded,
            PlacementPolicy::FairShare,
        ]),
    ) {
        // One board + hot traffic forces the queue path.
        let report = run_once(process, seed, ReschedulePolicy::WarmStart, placement, 1);
        let cap = Board::hikey970().max_concurrent_dnns;
        for tick in &report.ticks {
            for jobs in &tick.board_jobs {
                prop_assert!(*jobs <= cap, "board over its concurrent-DNN cap");
            }
            if tick.queue_depth > 0 {
                // Admission is count-bound for these zoo models (weights
                // fit the memory budget), so a waiting job means every
                // board is at the cap.
                prop_assert!(
                    tick.board_jobs.iter().all(|j| *j == cap),
                    "job queued while a board had headroom: {:?}",
                    tick.board_jobs
                );
            }
        }
    }
}

/// Per-tenant aggregation is internally consistent: every arrival and
/// placement is attributed to exactly one tenant, rows come back sorted,
/// and on a skewed-tenant trace the majority tenant dominates arrivals
/// under both the least-loaded and fair-share policies.
#[test]
fn tenant_summaries_account_for_every_job() {
    let trace = ArrivalTrace::generate(
        ArrivalProcess::Poisson { rate_per_s: 1.0 },
        &TraceConfig {
            tenant_weights: vec![7.0, 1.0, 1.0, 1.0],
            ..trace_config()
        },
        19,
    );
    for placement in [PlacementPolicy::LeastLoaded, PlacementPolicy::FairShare] {
        let config = ServingConfig {
            online: quick_online(),
            placement,
            ..ServingConfig::warm()
        };
        let mut sim = ServingSim::new(vec![Board::hikey970(); 3], config, AnalyticModel::new);
        let report = sim.run(&trace, HORIZON_MS);
        let s = &report.summary;
        assert!(!s.tenants.is_empty());
        assert!(s.tenants.windows(2).all(|w| w[0].tenant < w[1].tenant));
        assert_eq!(
            s.tenants.iter().map(|t| t.arrivals).sum::<usize>(),
            s.arrivals,
            "{placement}: every arrival has a tenant"
        );
        assert_eq!(
            s.tenants.iter().map(|t| t.placements).sum::<usize>(),
            s.placements,
            "{placement}: every placement has a tenant"
        );
        assert_eq!(
            s.tenants.iter().map(|t| t.left_in_queue).sum::<usize>(),
            s.left_in_queue
        );
        let majority = &s.tenants[0];
        assert_eq!(majority.tenant, 0);
        assert!(
            s.tenants[1..]
                .iter()
                .all(|t| t.arrivals < majority.arrivals),
            "{placement}: tenant 0 submits ~70% of jobs"
        );
        // Attained per-tenant throughput is non-negative and sums to
        // roughly the fleet mean (both integrate the same deployments).
        let sum: f64 = s.tenants.iter().map(|t| t.mean_tps).sum();
        assert!((sum - s.mean_aggregate_tps).abs() < 1e-6 * s.mean_aggregate_tps.max(1.0));
    }
}

/// Warm serving beats cold serving where it is designed to: lower median
/// decision latency on single-job-delta events at no aggregate
/// throughput loss (smoke-scale version of the serving bench's
/// acceptance bar; one deterministic spot check, not a proptest).
#[test]
fn warm_beats_cold_on_single_job_deltas_spot_check() {
    let process = ArrivalProcess::Poisson { rate_per_s: 0.7 };
    let cold = run_once(
        process,
        11,
        ReschedulePolicy::ColdRestart,
        PlacementPolicy::LeastLoaded,
        2,
    );
    let warm = run_once(
        process,
        11,
        ReschedulePolicy::WarmStart,
        PlacementPolicy::LeastLoaded,
        2,
    );
    assert!(cold.summary.single_job_delta.count > 0);
    assert!(warm.summary.single_job_delta.count > 0);
    assert!(
        warm.summary.single_job_delta.median_ms < cold.summary.single_job_delta.median_ms,
        "warm {:?} vs cold {:?}",
        warm.summary.single_job_delta,
        cold.summary.single_job_delta
    );
    assert!(
        warm.summary.mean_aggregate_tps >= cold.summary.mean_aggregate_tps * 0.95,
        "warm {:.2} inf/s lost too much vs cold {:.2} inf/s",
        warm.summary.mean_aggregate_tps,
        cold.summary.mean_aggregate_tps
    );
}

/// Rerunning a sim starts from an empty fleet: a prior trace's resident
/// jobs and queue must not leak into the next replay (job ids restart
/// per trace, so stale residents could even swallow the new trace's
/// departures). Caches/memos staying warm may change decision *kinds*,
/// but placements, queue dynamics and job counts must match a fresh
/// runtime exactly.
#[test]
fn rerunning_a_sim_replays_from_an_empty_fleet() {
    let process = ArrivalProcess::Bursty {
        on_rate_per_s: 1.6,
        on_ms: 5_000,
        off_ms: 7_000,
    };
    let trace_a = ArrivalTrace::generate(process, &trace_config(), 1);
    let trace_b = ArrivalTrace::generate(process, &trace_config(), 2);
    let config = ServingConfig {
        online: quick_online(),
        ..ServingConfig::warm()
    };
    let mut reused = ServingSim::new(vec![Board::hikey970()], config.clone(), AnalyticModel::new);
    reused.run(&trace_a, HORIZON_MS);
    let second = reused.run(&trace_b, HORIZON_MS);

    let mut fresh = ServingSim::new(vec![Board::hikey970()], config, AnalyticModel::new);
    let expected = fresh.run(&trace_b, HORIZON_MS);
    assert_eq!(second.ticks.len(), expected.ticks.len());
    for (got, want) in second.ticks.iter().zip(&expected.ticks) {
        assert_eq!(got.placements, want.placements);
        assert_eq!(got.queued, want.queued);
        assert_eq!(got.queue_depth, want.queue_depth);
        assert_eq!(got.board_jobs, want.board_jobs);
    }
    assert_eq!(second.summary.arrivals, expected.summary.arrivals);
    assert_eq!(second.summary.departures, expected.summary.departures);
    assert_eq!(second.summary.placements, expected.summary.placements);
}

/// Cache persistence end to end: a second daemon boot warm-loads the
/// snapshot the first run saved, and mismatching hardware starts cold.
#[test]
fn serving_daemon_persists_eval_cache_across_processes() {
    let process = ArrivalProcess::Poisson { rate_per_s: 0.6 };
    let trace = ArrivalTrace::generate(process, &trace_config(), 3);
    let dir = std::env::temp_dir().join("omniboost-serve-cache-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serving-cache.bin");
    std::fs::remove_file(&path).ok();

    let config = |cache_path| ServingConfig {
        online: quick_online(),
        cache_path,
        ..ServingConfig::warm()
    };
    // First boot: cold cache, snapshot written at shutdown.
    let mut first = ServingSim::new(
        vec![Board::hikey970(); 2],
        config(Some(path.clone())),
        AnalyticModel::new,
    );
    let r1 = first.run(&trace, HORIZON_MS);
    assert_eq!(r1.summary.cache_preloaded_entries, 0);
    assert!(path.exists(), "shutdown must write the snapshot");

    // Second boot: the snapshot warms every board's cache.
    let mut second = ServingSim::new(
        vec![Board::hikey970(); 2],
        config(Some(path.clone())),
        AnalyticModel::new,
    );
    let r2 = second.run(&trace, HORIZON_MS);
    assert!(
        r2.summary.cache_preloaded_entries > 0,
        "second boot must preload the persisted cache"
    );
    // The replay itself is identical — persistence must not change
    // decisions, only warm them.
    assert_eq!(r1.digest(), r2.digest());

    // Different hardware: the snapshot is rejected, the daemon boots cold.
    let mut other_board = Board::hikey970();
    other_board.max_concurrent_dnns += 1;
    let mut third = ServingSim::new(
        vec![other_board],
        config(Some(path.clone())),
        AnalyticModel::new,
    );
    let r3 = third.run(&trace, HORIZON_MS);
    assert_eq!(r3.summary.cache_preloaded_entries, 0);
    std::fs::remove_file(&path).ok();
}

/// One random step against the placement load index: the op mix covers
/// every path that mutates it — placements, departures, board failures,
/// board joins and the rebalancer's external take/push surgery followed
/// by [`Fleet::reindex`]. Decoded from parallel draw vectors (`kind`
/// picks the op, `a`/`b` its operands).
#[derive(Debug, Clone)]
enum IndexOp {
    Place {
        model: u8,
        tenant: u32,
    },
    Depart {
        sel: u8,
    },
    Fail {
        sel: u8,
    },
    Join {
        lite: bool,
    },
    MoveJob {
        donor: u8,
        recv: u8,
    },
    /// Degrade (or recover) a slot in place: swap its hardware profile
    /// while keeping the admissible prefix of its residents.
    Degrade {
        sel: u8,
        profile: u8,
    },
}

fn decode_index_op(kind: u8, a: u8, b: u8) -> IndexOp {
    match kind {
        // Placements dominate so the fleet actually fills up.
        0..=3 => IndexOp::Place {
            model: a,
            tenant: u32::from(b) % 3,
        },
        4..=5 => IndexOp::Depart { sel: a },
        6 => IndexOp::Fail { sel: a },
        7 => IndexOp::Join { lite: a & 1 == 1 },
        8 => IndexOp::MoveJob { donor: a, recv: b },
        _ => IndexOp::Degrade { sel: a, profile: b },
    }
}

fn index_scheduler(board: &Board) -> OnlineScheduler<AnalyticModel> {
    OnlineScheduler::new(
        AnalyticModel::new(board.clone()),
        ReschedulePolicy::WarmStart,
        quick_online(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (iv) The load index agrees with a linear rescan after arbitrary
    /// arrive/depart/fail/join/rebalance sequences: after every op the
    /// full [`Fleet::index_check`] audit passes (index entries, open
    /// sets, active counter and job→board map all re-derived linearly),
    /// and the indexed donor/receiver selections match a linear sort of
    /// the live slots. Placement agreement is checked inside
    /// [`Fleet::place`] itself by a debug assertion, which this test
    /// exercises on every `Place` op.
    #[test]
    fn load_index_agrees_with_linear_rescan(
        kinds in proptest::collection::vec(0u8..10, 48),
        operands_a in proptest::collection::vec(0u8..=255, 48),
        operands_b in proptest::collection::vec(0u8..=255, 48),
        placement in proptest::sample::select(vec![
            PlacementPolicy::RoundRobin,
            PlacementPolicy::LeastLoaded,
            PlacementPolicy::FairShare,
        ]),
    ) {
        let boards = vec![Board::hikey970(), Board::hikey970(), Board::hikey970_lite()];
        let mut fleet = Fleet::new(boards, placement, false, index_scheduler);
        let mut live: Vec<u64> = Vec::new();
        let mut next_id = 1u64;
        for i in 0..kinds.len() {
            let op = decode_index_op(kinds[i], operands_a[i], operands_b[i]);
            match op {
                IndexOp::Place { model, tenant } => {
                    let spec = JobSpec::new(
                        next_id,
                        ModelId::ALL[model as usize % ModelId::ALL.len()],
                        tenant,
                    );
                    next_id += 1;
                    if fleet.place(spec).is_some() {
                        live.push(spec.id);
                    }
                }
                IndexOp::Depart { sel } => {
                    if !live.is_empty() {
                        let id = live.swap_remove(sel as usize % live.len());
                        let board = fleet.board_of(id).expect("live job is resident");
                        prop_assert!(fleet.remove_job(board, id));
                    }
                }
                IndexOp::Fail { sel } => {
                    let evacuated = fleet.deactivate(sel as usize % fleet.len());
                    live.retain(|id| !evacuated.iter().any(|j| j.id == *id));
                }
                IndexOp::Join { lite } => {
                    let board = if lite {
                        Board::hikey970_lite()
                    } else {
                        Board::hikey970()
                    };
                    let scheduler = index_scheduler(&board);
                    fleet.add_board(board, scheduler);
                }
                IndexOp::MoveJob { donor, recv } => {
                    let n = fleet.len();
                    let donor = (0..n)
                        .map(|o| (donor as usize + o) % n)
                        .find(|&d| !fleet.slots()[d].jobs.is_empty());
                    let Some(d) = donor else { continue };
                    let recv = (0..n)
                        .map(|o| (recv as usize + o) % n)
                        .find(|&r| r != d && fleet.slots()[r].active);
                    let Some(r) = recv else { continue };
                    let job_id = fleet.slots()[d].jobs.last().expect("donor has jobs").id;
                    let (job, model) = fleet.slots_mut()[d]
                        .take_job(job_id)
                        .expect("newest job present");
                    if fleet.slots()[r].admits(&model) {
                        fleet.slots_mut()[r].push_job(job, model);
                    } else {
                        fleet.slots_mut()[d].push_job(job, model);
                    }
                    fleet.reindex(d);
                    fleet.reindex(r);
                }
                IndexOp::Degrade { sel, profile } => {
                    let index = sel as usize % fleet.len();
                    let board = match profile % 3 {
                        0 => Board::hikey970(),
                        1 => Board::hikey970_lite(),
                        _ => Board::hikey970_gpu_down(),
                    };
                    let scheduler = index_scheduler(&board);
                    let evicted = fleet.swap_board(index, board, scheduler);
                    live.retain(|id| !evicted.iter().any(|j| j.id == *id));
                    let slot = &fleet.slots()[index];
                    prop_assert!(
                        slot.jobs.len() <= slot.board.max_concurrent_dnns,
                        "degraded slot left over its concurrent-DNN cap"
                    );
                }
            }
            let audit = fleet.index_check();
            prop_assert!(audit.is_ok(), "index diverged after {op:?}: {audit:?}");
            // Donor/receiver selection off the index vs a linear sort.
            // `least_loaded` ties are index-exact; `most_loaded` ties on
            // equal scores may pick different (equally loaded) slots per
            // profile group, so donors compare on the score sequence.
            let mut linear_recv: Vec<(usize, f64)> = fleet
                .slots()
                .iter()
                .filter(|s| s.active)
                .map(|s| (s.index, s.load_score()))
                .collect();
            linear_recv.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            linear_recv.truncate(3);
            prop_assert_eq!(fleet.least_loaded(3, &[]), linear_recv);
            let mut linear_donors: Vec<(usize, f64)> = fleet
                .slots()
                .iter()
                .filter(|s| s.active && !s.jobs.is_empty())
                .map(|s| (s.index, s.load_score()))
                .collect();
            linear_donors.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            linear_donors.truncate(3);
            let indexed_donors = fleet.most_loaded(3);
            prop_assert_eq!(
                indexed_donors.iter().map(|(_, s)| s.to_bits()).collect::<Vec<_>>(),
                linear_donors.iter().map(|(_, s)| s.to_bits()).collect::<Vec<_>>()
            );
            for (i, score) in &indexed_donors {
                prop_assert!(!fleet.slots()[*i].jobs.is_empty());
                prop_assert_eq!(score.to_bits(), fleet.slots()[*i].load_score().to_bits());
            }
        }
    }
}

/// Degrade-in-place: swapping a slot to a weaker profile keeps its
/// stable index, evicts residents **newest-first** only until the new
/// profile admits the rest, drops the stale deployment (it was priced
/// on the old hardware), and leaves every fleet index consistent.
#[test]
fn swap_board_evicts_newest_until_the_weaker_profile_admits() {
    let full = Board::hikey970();
    let mut fleet = Fleet::new(
        vec![full.clone()],
        PlacementPolicy::LeastLoaded,
        false,
        index_scheduler,
    );
    for id in 1..=full.max_concurrent_dnns as u64 {
        assert!(fleet
            .place(JobSpec::new(id, ModelId::MobileNet, 0))
            .is_some());
    }
    assert_eq!(fleet.flush_dirty().len(), 1);
    let degraded = Board::hikey970_gpu_down();
    assert!(degraded.max_concurrent_dnns < full.max_concurrent_dnns);
    let evicted = fleet.swap_board(0, degraded.clone(), index_scheduler(&degraded));
    assert_eq!(
        evicted.len(),
        full.max_concurrent_dnns - degraded.max_concurrent_dnns
    );
    assert_eq!(
        evicted.first().map(|j| j.id),
        Some(full.max_concurrent_dnns as u64),
        "eviction starts from the newest resident"
    );
    for job in &evicted {
        assert!(fleet.board_of(job.id).is_none());
    }
    assert_eq!(fleet.slots()[0].jobs.len(), degraded.max_concurrent_dnns);
    assert!(fleet.slots()[0].mapping.is_none(), "old deployment dropped");
    fleet.index_check().expect("indexes survive the swap");
    // Survivors re-price on the degraded board at the next flush: a
    // fresh cold decision, live throughput, no memo/warm leakage.
    let decisions = fleet.flush_dirty();
    assert_eq!(decisions.len(), 1);
    assert!(decisions[0].throughput > 0.0);
    assert!(!decisions[0].single_job_delta);
    // A recover swap restores the original profile and capacity.
    let recovered = fleet.swap_board(0, full.clone(), index_scheduler(&full));
    assert!(recovered.is_empty(), "recovery never evicts");
    assert!(fleet
        .place(JobSpec::new(100, ModelId::MobileNet, 0))
        .is_some());
    fleet.index_check().expect("indexes survive the recovery");
}

/// Satellite: the decision memo now serves floored mixes. The SLO floor
/// vector is folded into the memo key via the scheduler's `memo_salt`,
/// so an identical mix under identical floors *hits*, while the same
/// model mix under different floors (or no floors) *misses* — a
/// floorless mapping can never be replayed onto a floored workload.
#[test]
fn decision_memo_is_scoped_by_slo_floor_vector() {
    let board = Board::hikey970();
    let no_refresh = |board: &Board| {
        OnlineScheduler::new(
            AnalyticModel::new(board.clone()),
            ReschedulePolicy::WarmStart,
            OnlineConfig {
                refresh_period: 0,
                ..quick_online()
            },
        )
    };
    let mut fleet = Fleet::new(vec![board], PlacementPolicy::LeastLoaded, true, no_refresh);
    let flush_with = |fleet: &mut Fleet<AnalyticModel>, job: JobSpec| -> DecisionKind {
        if let Some(resident) = fleet.slots()[0].jobs.first().map(|j| j.id) {
            assert!(fleet.remove_job(0, resident));
        }
        assert!(fleet.place(job).is_some());
        let decisions = fleet.flush_dirty();
        assert_eq!(decisions.len(), 1);
        decisions[0].kind
    };
    let floored = |id: u64| JobSpec::new(id, ModelId::MobileNet, 0).guaranteed(2.0);
    // Cold fill, then an identical floored mix replays from the memo.
    assert_ne!(flush_with(&mut fleet, floored(1)), DecisionKind::Memo);
    assert_eq!(flush_with(&mut fleet, floored(2)), DecisionKind::Memo);
    // Same model mix without the floor: different salt, memo miss.
    let best_effort = JobSpec::new(3, ModelId::MobileNet, 0);
    assert_ne!(flush_with(&mut fleet, best_effort), DecisionKind::Memo);
    // A different floor value is yet another salt: miss again.
    assert_ne!(
        flush_with(
            &mut fleet,
            JobSpec::new(4, ModelId::MobileNet, 0).guaranteed(3.0)
        ),
        DecisionKind::Memo
    );
    // Every previously decided (mix, floors) entry stays replayable.
    assert_eq!(flush_with(&mut fleet, floored(5)), DecisionKind::Memo);
    assert_eq!(
        flush_with(&mut fleet, JobSpec::new(6, ModelId::MobileNet, 0)),
        DecisionKind::Memo
    );
}

// ---------------------------------------------------------------------------
// Admission-mempool properties (PR 7).
// ---------------------------------------------------------------------------

/// Behaviour preservation across the mempool extraction: the default
/// [`AdmissionPolicy`] must replay exactly the digests the pre-mempool
/// `ServingSim` (own FIFO `VecDeque`, linear drains) produced. The
/// constants were captured by running the seed/config pairs below at
/// the commit *before* the refactor.
#[test]
fn mempool_refactor_preserves_seeded_replay_digests() {
    let digest = |seed| {
        run_once(
            ArrivalProcess::Poisson { rate_per_s: 0.8 },
            seed,
            ReschedulePolicy::WarmStart,
            PlacementPolicy::LeastLoaded,
            2,
        )
        .digest()
    };
    assert_eq!(digest(7), 0x598b_3977_b009_6446);
    assert_eq!(digest(19), 0x42cc_992c_bb6a_e019);
}

/// Telemetry is observational: running the same seeded trace with a
/// recording handle attached produces the exact pinned digest of the
/// no-op run, while actually collecting spans from every layer it
/// instruments (engine phases and runtime decision phases).
#[test]
fn recording_telemetry_is_digest_neutral() {
    let trace = ArrivalTrace::generate(
        ArrivalProcess::Poisson { rate_per_s: 0.8 },
        &trace_config(),
        7,
    );
    let config = ServingConfig {
        policy: ReschedulePolicy::WarmStart,
        placement: PlacementPolicy::LeastLoaded,
        online: quick_online(),
        use_memo: true,
        cache_path: None,
        admission: AdmissionPolicy::default(),
    };
    let mut sim = ServingSim::new(vec![Board::hikey970(); 2], config, AnalyticModel::new);
    let telemetry = omniboost_serve::Telemetry::recording();
    sim.set_telemetry(telemetry.clone());
    let report = sim.run(&trace, HORIZON_MS);
    assert_eq!(
        report.digest(),
        0x598b_3977_b009_6446,
        "recording telemetry must not perturb the replay digest"
    );

    let spans = telemetry.spans();
    assert!(!spans.is_empty(), "a recording run collects spans");
    assert!(spans.iter().any(|s| s.name.starts_with("serve.")));
    assert!(spans.iter().any(|s| s.name.starts_with("core.")));
    assert!(
        telemetry.counter_value("core.decide.memo_hits")
            + telemetry.counter_value("core.decide.memo_misses")
            > 0,
        "decision counters flow through the registry"
    );
    // Span durations feed mergeable histograms keyed by span name.
    assert!(telemetry
        .histograms()
        .iter()
        .any(|(name, h)| name.starts_with("core.decide.") && !h.is_empty()));
}

/// A queued guaranteed-class job claims freed capacity ahead of an
/// earlier-queued best-effort job: classes rank before arrival order on
/// every drain.
#[test]
fn guaranteed_class_jumps_the_queue_on_drain() {
    let board = Board::hikey970();
    let cap = board.max_concurrent_dnns as u64;
    let mut fleet = Fleet::new(
        vec![board],
        PlacementPolicy::LeastLoaded,
        false,
        index_scheduler,
    );
    let mut pool = Mempool::new(AdmissionPolicy::default());
    for id in 1..=cap {
        assert!(matches!(
            pool.submit(&mut fleet, JobSpec::new(id, ModelId::MobileNet, 0), 0),
            SubmitOutcome::Placed(_)
        ));
    }
    let best_effort = JobSpec::new(cap + 1, ModelId::MobileNet, 0);
    let guaranteed = JobSpec::new(cap + 2, ModelId::MobileNet, 1).guaranteed(2.0);
    assert_eq!(
        pool.submit(&mut fleet, best_effort, 1),
        SubmitOutcome::Queued
    );
    assert_eq!(
        pool.submit(&mut fleet, guaranteed, 2),
        SubmitOutcome::Queued
    );
    let victim = fleet.slots()[0].jobs.first().expect("board is full").id;
    assert!(fleet.remove_job(0, victim));
    let drained = pool.drain(&mut fleet, 3, &TenantAccumulator::new());
    assert_eq!(
        drained.first().map(|d| d.job.id),
        Some(cap + 2),
        "the guaranteed job must drain first despite arriving later"
    );
}

/// An overload-posture admission policy for the strict-mode proptests:
/// tight quota and TTL so rejects and expiries actually fire at these
/// trace intensities.
fn strict_admission() -> AdmissionPolicy {
    AdmissionPolicy {
        order: QueueOrder::TenantDeficit,
        tenant_queue_quota: Some(2),
        ttl_ms: Some(4_000),
        retry_backoff_ms: Some(100),
        max_backoff_ms: 2_000,
        ..AdmissionPolicy::default()
    }
}

/// A skewed multi-tenant, mixed-SLO-class trace on a single board —
/// small enough fleet that quotas, TTLs and backoff all engage.
fn run_strict(process: ArrivalProcess, seed: u64) -> omniboost_serve::ServingReport {
    let trace_cfg = TraceConfig {
        tenant_weights: vec![7.0, 1.0, 1.0, 1.0],
        guaranteed_share: 0.25,
        guaranteed_min_tps: 2.0,
        ..trace_config()
    };
    let trace = ArrivalTrace::generate(process, &trace_cfg, seed);
    let config = ServingConfig {
        online: quick_online(),
        admission: strict_admission(),
        ..ServingConfig::warm()
    };
    let mut sim = ServingSim::new(vec![Board::hikey970()], config, AnalyticModel::new);
    sim.run(&trace, HORIZON_MS)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// (v) Strict admission (deficit order, quotas, TTL, backoff, SLO
    /// classes) is as deterministic as the permissive default: two
    /// fresh runtimes replay the same seed bit-for-bit.
    #[test]
    fn strict_admission_replays_bit_for_bit(
        process in arb_process(),
        seed in 0u64..500,
    ) {
        let a = run_strict(process, seed);
        let b = run_strict(process, seed);
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a.summary.rejected, b.summary.rejected);
        prop_assert_eq!(a.summary.expired, b.summary.expired);
    }

    /// (vi) **Admission conservation**: every arrival ends in exactly
    /// one of {placed, rejected, expired, departed-while-queued, still
    /// waiting} — re-derived per job id from the tick records and
    /// balanced against the summary counters.
    #[test]
    fn admission_accounting_conserves_every_arrival(
        process in arb_process(),
        seed in 0u64..500,
    ) {
        let report = run_strict(process, seed);
        let mut arrived = std::collections::HashSet::new();
        let mut placed = std::collections::HashSet::new();
        let mut rejected = std::collections::HashSet::new();
        let mut expired = std::collections::HashSet::new();
        let mut departed_queued = 0usize;
        for tick in &report.ticks {
            for id in &tick.expired {
                prop_assert!(expired.insert(*id), "job {} expired twice", id);
            }
            for id in &tick.rejected {
                prop_assert!(rejected.insert(*id), "job {} rejected twice", id);
            }
            for (id, _) in &tick.placements {
                prop_assert!(placed.insert(*id), "job {} placed twice", id);
            }
            for e in &tick.events {
                match e {
                    JobEvent::Arrive(job) => {
                        prop_assert!(arrived.insert(job.id));
                    }
                    JobEvent::Depart { job_id } => {
                        if !placed.contains(job_id)
                            && !rejected.contains(job_id)
                            && !expired.contains(job_id)
                        {
                            departed_queued += 1;
                        }
                    }
                }
            }
        }
        prop_assert!(placed.is_disjoint(&rejected));
        prop_assert!(placed.is_disjoint(&expired));
        prop_assert!(rejected.is_disjoint(&expired));
        let s = &report.summary;
        prop_assert_eq!(s.rejected, rejected.len());
        prop_assert_eq!(s.expired, expired.len());
        prop_assert_eq!(s.placements, placed.len());
        prop_assert_eq!(
            arrived.len(),
            placed.len() + rejected.len() + expired.len() + departed_queued
                + s.left_in_queue,
            "conservation: {} arrivals vs {} placed + {} rejected + {} expired \
             + {} departed-queued + {} waiting",
            arrived.len(), placed.len(), rejected.len(), expired.len(),
            departed_queued, s.left_in_queue
        );
    }
}

/// One random op against a [`Mempool`] driven directly (no sim).
#[derive(Debug, Clone, Copy)]
enum PoolOp {
    /// Submit a fresh job of `model` for `tenant` (guaranteed when
    /// `gtd`).
    Submit { model: u8, tenant: u8, gtd: bool },
    /// Depart a random still-queued job.
    DepartQueued { sel: u8 },
    /// Free a random resident job's slot (so the next drain can move).
    Free { sel: u8 },
    /// Advance simulated time and sweep the TTL.
    Advance,
    /// Offer freed capacity to the pool.
    Drain,
}

fn decode_pool_op(kind: u8, a: u8, b: u8) -> PoolOp {
    match kind % 10 {
        0..=4 => PoolOp::Submit {
            model: a,
            tenant: b % 4,
            gtd: b & 0x80 != 0,
        },
        5 => PoolOp::DepartQueued { sel: a },
        6..=7 => PoolOp::Free { sel: a },
        8 => PoolOp::Advance,
        _ => PoolOp::Drain,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (vii) **Mempool indexes and quotas under arbitrary
    /// interleavings**: after every submit/depart/free/expire/drain the
    /// full [`Mempool::index_check`] audit passes (id index, model
    /// buckets, tenant depths and the conservation counters re-derived
    /// from the entry spine), no tenant ever holds more waiting entries
    /// than the quota, and every submit outcome is consistent with the
    /// pool state that produced it.
    #[test]
    fn mempool_indexes_and_quotas_hold_under_random_ops(
        kinds in proptest::collection::vec(0u8..10, 64),
        operands_a in proptest::collection::vec(0u8..=255, 64),
        operands_b in proptest::collection::vec(0u8..=255, 64),
    ) {
        const QUOTA: usize = 3;
        let policy = AdmissionPolicy {
            order: QueueOrder::TenantDeficit,
            tenant_queue_quota: Some(QUOTA),
            ttl_ms: Some(6_000),
            retry_backoff_ms: Some(200),
            max_backoff_ms: 1_600,
            ..AdmissionPolicy::default()
        };
        let boards = vec![Board::hikey970_lite()];
        let mut fleet = Fleet::new(boards, PlacementPolicy::LeastLoaded, false, index_scheduler);
        let mut pool = Mempool::new(policy);
        let acc = TenantAccumulator::new();
        let mut now = 0u64;
        let mut next_id = 1u64;
        let mut queued: Vec<u64> = Vec::new();
        let mut resident: Vec<u64> = Vec::new();
        for i in 0..kinds.len() {
            let op = decode_pool_op(kinds[i], operands_a[i], operands_b[i]);
            match op {
                PoolOp::Submit { model, tenant, gtd } => {
                    let model = ModelId::ALL[model as usize % ModelId::ALL.len()];
                    let spec = if gtd {
                        JobSpec::new(next_id, model, u32::from(tenant)).guaranteed(1.0)
                    } else {
                        JobSpec::new(next_id, model, u32::from(tenant))
                    };
                    next_id += 1;
                    let depth_before = pool.tenant_depth(spec.tenant);
                    match pool.submit(&mut fleet, spec, now) {
                        SubmitOutcome::Placed(_) => resident.push(spec.id),
                        SubmitOutcome::Queued => queued.push(spec.id),
                        SubmitOutcome::Rejected(RejectReason::TenantQuota) => {
                            prop_assert_eq!(depth_before, QUOTA,
                                "quota reject below the quota");
                        }
                        SubmitOutcome::Rejected(RejectReason::Unservable) => {
                            // The lite board admits every zoo model on
                            // an empty slot, so validation never fires
                            // here.
                            prop_assert!(false, "no zoo model is unservable");
                        }
                    }
                }
                PoolOp::DepartQueued { sel } => {
                    if !queued.is_empty() {
                        let id = queued.swap_remove(sel as usize % queued.len());
                        prop_assert!(pool.depart(id), "queued job must be waiting");
                        prop_assert!(!pool.depart(id), "double departure");
                    }
                }
                PoolOp::Free { sel } => {
                    if !resident.is_empty() {
                        let id = resident.swap_remove(sel as usize % resident.len());
                        let board = fleet.board_of(id).expect("resident job has a board");
                        prop_assert!(fleet.remove_job(board, id));
                    }
                }
                PoolOp::Advance => {
                    now += 2_500;
                    let expired = pool.expire(now);
                    for id in &expired {
                        let pos = queued.iter().position(|q| q == id);
                        prop_assert!(pos.is_some(), "expired a non-queued job");
                        queued.swap_remove(pos.unwrap());
                    }
                }
                PoolOp::Drain => {
                    for d in pool.drain(&mut fleet, now, &acc) {
                        let pos = queued.iter().position(|q| *q == d.job.id);
                        prop_assert!(pos.is_some(), "drained a non-queued job");
                        queued.swap_remove(pos.unwrap());
                        resident.push(d.job.id);
                    }
                }
            }
            let audit = pool.index_check();
            prop_assert!(audit.is_ok(), "mempool audit failed after {op:?}: {audit:?}");
            prop_assert_eq!(pool.len(), queued.len());
            for tenant in 0..4u32 {
                prop_assert!(pool.tenant_depth(tenant) <= QUOTA,
                    "tenant {} over quota after {:?}", tenant, op);
            }
        }
    }
}
