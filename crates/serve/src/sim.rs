//! The event-driven serving runtime: replay an [`ArrivalTrace`] against
//! a fleet, rescheduling per event and recording serving metrics.

use crate::fleet::{Fleet, PlacementPolicy};
use crate::mempool::{AdmissionPolicy, Mempool, SubmitOutcome};
use crate::scheduler::{DecisionKind, OnlineConfig, OnlineScheduler, ReschedulePolicy};
use crate::slo::{SloAccumulator, SloSummary};
use crate::tenants::{TenantAccumulator, TenantSummary};
use omniboost_estimator::CacheArchive;
use omniboost_hw::{Board, EvalCacheStats, Fnv1a, ThroughputModel};
use omniboost_models::{ArrivalTrace, JobEvent, JobSpec};
use std::hash::Hasher;
use std::path::PathBuf;

/// Full serving-runtime configuration.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Rescheduling policy (the cold/warm A/B axis).
    pub policy: ReschedulePolicy,
    /// Job placement policy across boards.
    pub placement: PlacementPolicy,
    /// Per-board online scheduler knobs.
    pub online: OnlineConfig,
    /// Whether per-board runtimes memoize decisions per workload mix
    /// (the "unchanged mix answers instantly" serving behaviour).
    pub use_memo: bool,
    /// Persisted evaluation-cache snapshot: loaded into every board's
    /// scheduler at startup (boards whose fingerprint mismatches start
    /// cold), merged and rewritten at shutdown.
    pub cache_path: Option<PathBuf>,
    /// Admission-mempool knobs (validation, quotas, TTL, backoff,
    /// drain order). The default is the historical permissive FIFO.
    pub admission: AdmissionPolicy,
}

impl ServingConfig {
    /// The production configuration: warm starts, decision memo,
    /// least-loaded placement.
    pub fn warm() -> Self {
        Self {
            policy: ReschedulePolicy::WarmStart,
            placement: PlacementPolicy::LeastLoaded,
            online: OnlineConfig::default(),
            use_memo: true,
            cache_path: None,
            admission: AdmissionPolicy::default(),
        }
    }

    /// The baseline: every event pays a full cold search, no memo.
    pub fn cold() -> Self {
        Self {
            policy: ReschedulePolicy::ColdRestart,
            use_memo: false,
            ..Self::warm()
        }
    }
}

/// One board's rescheduling outcome within a tick.
#[derive(Debug, Clone)]
pub struct BoardDecision {
    /// Board index.
    pub board: usize,
    /// How the decision was produced.
    pub kind: DecisionKind,
    /// Wall-clock decision latency in milliseconds (memo hits report
    /// the near-zero lookup time — that is the point).
    pub decision_ms: f64,
    /// Whether this reschedule was triggered by a single-job delta
    /// (exactly one arrival or one departure since the last deployment)
    /// — the event class the warm-vs-cold comparison is defined on.
    pub single_job_delta: bool,
    /// Layers whose device changed vs the previous deployment.
    pub migrated_layers: usize,
    /// Evaluator queries that actually ran (0 for memo hits).
    pub evaluations: usize,
    /// Jobs resident after the decision.
    pub jobs: usize,
    /// Board throughput after the decision (sum of per-job inf/s).
    pub throughput: f64,
}

/// Everything that happened at one trace timestamp.
#[derive(Debug, Clone)]
pub struct TickRecord {
    /// Timestamp (ms since trace start).
    pub at_ms: u64,
    /// Trace events processed at this stamp.
    pub events: Vec<JobEvent>,
    /// `(job id, board)` placements this tick (fresh arrivals and jobs
    /// drained from the queue).
    pub placements: Vec<(u64, usize)>,
    /// Job ids that had to queue (no board could admit them).
    pub queued: Vec<u64>,
    /// Job ids the mempool rejected at submit (validation or tenant
    /// quota — empty under the default permissive policy).
    pub rejected: Vec<u64>,
    /// Queued job ids the mempool TTL-evicted this tick (empty when no
    /// TTL is configured).
    pub expired: Vec<u64>,
    /// Per-board rescheduling outcomes.
    pub decisions: Vec<BoardDecision>,
    /// Waiting jobs after the tick.
    pub queue_depth: usize,
    /// Jobs resident per board after the tick.
    pub board_jobs: Vec<usize>,
    /// Fleet throughput after the tick (sum of per-job inf/s).
    pub aggregate_tps: f64,
}

/// Order statistics over a set of decision latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Sample count.
    pub count: usize,
    /// Median milliseconds (0 when empty).
    pub median_ms: f64,
    /// Mean milliseconds (0 when empty).
    pub mean_ms: f64,
    /// 99th-percentile milliseconds (nearest-rank; 0 when empty).
    pub p99_ms: f64,
    /// Maximum milliseconds (0 when empty).
    pub max_ms: f64,
}

impl LatencyStats {
    /// Order statistics over raw samples (milliseconds).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p99_rank = ((samples.len() as f64 * 0.99).ceil() as usize).max(1) - 1;
        Self {
            count: samples.len(),
            median_ms: samples[samples.len() / 2],
            mean_ms: samples.iter().sum::<f64>() / samples.len() as f64,
            p99_ms: samples[p99_rank],
            max_ms: *samples.last().unwrap(),
        }
    }
}

/// Aggregates over a whole serving run.
#[derive(Debug, Clone)]
pub struct ServingSummary {
    /// Trace events replayed.
    pub events: usize,
    /// Arrivals / departures among them.
    pub arrivals: usize,
    /// Departure events.
    pub departures: usize,
    /// Successful placements (including drained queue entries).
    pub placements: usize,
    /// Deepest the queue ever got.
    pub peak_queue_depth: usize,
    /// Jobs still waiting when the trace ended.
    pub left_in_queue: usize,
    /// Jobs the mempool rejected at submit (validation + tenant quota).
    pub rejected: usize,
    /// Queued jobs the mempool TTL-evicted before they ever placed.
    pub expired: usize,
    /// Per-SLO-class attainment (guaranteed floors, best-effort
    /// starvation).
    pub slo: SloSummary,
    /// Rescheduling decisions made (all boards).
    pub decisions: usize,
    /// Decision latency of cold decisions.
    pub cold: LatencyStats,
    /// Decision latency of warm decisions (arrival + departure kinds).
    pub warm: LatencyStats,
    /// Decision latency of memo-answered decisions.
    pub memo: LatencyStats,
    /// Decision latency over **single-job-delta events only** — the
    /// bench's warm-vs-cold comparison axis.
    pub single_job_delta: LatencyStats,
    /// Total migration churn (layers moved across all decisions).
    pub migrated_layers: usize,
    /// Time-weighted mean fleet throughput over the horizon.
    pub mean_aggregate_tps: f64,
    /// Fraction of the horizon each board served at least one job.
    pub board_utilization: Vec<f64>,
    /// Merged evaluation-cache counters across boards.
    pub eval_cache: EvalCacheStats,
    /// Entries warm-loaded from a persisted cache snapshot at startup.
    pub cache_preloaded_entries: usize,
    /// Per-tenant throughput / placement / queue-wait aggregates,
    /// sorted by tenant id — the measurement side of multi-tenant
    /// fairness (see [`crate::tenant_tps_ratio`]).
    pub tenants: Vec<TenantSummary>,
}

/// The record of one serving run: per-tick detail plus the summary.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Per-timestamp records, in replay order.
    pub ticks: Vec<TickRecord>,
    /// Aggregates.
    pub summary: ServingSummary,
}

impl ServingReport {
    /// Deterministic digest of everything **except wall-clock latency**:
    /// replaying the same seeded trace through the same configuration
    /// must reproduce this bit-for-bit (mappings, migrations, queue
    /// dynamics and measured throughputs are all deterministic; only
    /// decision timing varies run to run).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::default();
        let f = |h: &mut Fnv1a, v: f64| h.write(&v.to_bits().to_le_bytes());
        for tick in &self.ticks {
            h.write(&tick.at_ms.to_le_bytes());
            for e in &tick.events {
                match e {
                    JobEvent::Arrive(j) => {
                        h.write(&[1]);
                        h.write(&j.id.to_le_bytes());
                        h.write(&(j.model.index() as u64).to_le_bytes());
                        h.write(&j.tenant.to_le_bytes());
                    }
                    JobEvent::Depart { job_id } => {
                        h.write(&[2]);
                        h.write(&job_id.to_le_bytes());
                    }
                }
            }
            for (id, board) in &tick.placements {
                h.write(&id.to_le_bytes());
                h.write(&(*board as u64).to_le_bytes());
            }
            for id in &tick.queued {
                h.write(&id.to_le_bytes());
            }
            // Rejections/expiries hash per id: empty vectors write no
            // bytes, so pre-mempool digests are preserved verbatim.
            for id in &tick.rejected {
                h.write(&[3]);
                h.write(&id.to_le_bytes());
            }
            for id in &tick.expired {
                h.write(&[4]);
                h.write(&id.to_le_bytes());
            }
            for d in &tick.decisions {
                h.write(&(d.board as u64).to_le_bytes());
                h.write(d.kind.label().as_bytes());
                h.write(&[u8::from(d.single_job_delta)]);
                h.write(&(d.migrated_layers as u64).to_le_bytes());
                // `evaluations` is deliberately excluded: a persisted
                // cache warms it away without changing any decision.
                h.write(&(d.jobs as u64).to_le_bytes());
                f(&mut h, d.throughput);
            }
            h.write(&(tick.queue_depth as u64).to_le_bytes());
            for j in &tick.board_jobs {
                h.write(&(*j as u64).to_le_bytes());
            }
            f(&mut h, tick.aggregate_tps);
        }
        f(&mut h, self.summary.mean_aggregate_tps);
        h.write(&(self.summary.migrated_layers as u64).to_le_bytes());
        h.finish()
    }
}

/// The serving runtime: a fleet, the admission mempool, and the event
/// loop.
///
/// ```no_run
/// use omniboost_hw::{AnalyticModel, Board};
/// use omniboost_models::{ArrivalProcess, ArrivalTrace, TraceConfig};
/// use omniboost_serve::{ServingConfig, ServingSim};
///
/// let trace = ArrivalTrace::generate(
///     ArrivalProcess::Poisson { rate_per_s: 0.4 },
///     &TraceConfig::default(),
///     7,
/// );
/// let boards = vec![Board::hikey970(); 4];
/// let mut sim = ServingSim::new(boards, ServingConfig::warm(), AnalyticModel::new);
/// let report = sim.run(&trace, 60_000);
/// println!(
///     "warm median {:.1} ms, {:.1} inf/s served",
///     report.summary.single_job_delta.median_ms,
///     report.summary.mean_aggregate_tps,
/// );
/// ```
pub struct ServingSim<M> {
    fleet: Fleet<M>,
    config: ServingConfig,
    /// The shared admission mempool (validation, quotas, class-aware
    /// indexed drains — see [`crate::Mempool`]).
    pool: Mempool,
    cache_preloaded: usize,
}

impl<M: ThroughputModel + Send + Sync> ServingSim<M> {
    /// Builds a fleet of `boards` with one evaluator per board (the
    /// factory receives each board, so board-calibrated evaluators like
    /// [`omniboost_hw::AnalyticModel`] fit naturally).
    pub fn new(
        boards: Vec<Board>,
        config: ServingConfig,
        mut make_evaluator: impl FnMut(Board) -> M,
    ) -> Self {
        assert!(!boards.is_empty(), "a fleet needs at least one board");
        let policy = config.policy;
        let online = config.online;
        let fleet = Fleet::new(boards, config.placement, config.use_memo, |board| {
            OnlineScheduler::new(make_evaluator(board.clone()), policy, online)
        });
        let pool = Mempool::new(config.admission);
        let mut sim = Self {
            fleet,
            config,
            pool,
            cache_preloaded: 0,
        };
        sim.load_caches();
        sim
    }

    /// Startup half of cache persistence: warm every board's scheduler
    /// from its profile's segment of the configured [`CacheArchive`]
    /// snapshot. Profiles without a segment, mismatched or unreadable
    /// snapshots start cold (a daemon must boot regardless); corrupt
    /// files are reported by
    /// [`ServingSummary::cache_preloaded_entries`] staying 0. (The
    /// archive replaced the pre-PR-5 single-segment format; an old
    /// snapshot reads as unreadable — one cold boot — and the next
    /// shutdown rewrites it as an archive.)
    fn load_caches(&mut self) {
        let Some(path) = self.config.cache_path.clone() else {
            return;
        };
        if !path.exists() {
            return;
        }
        let Ok(archive) = CacheArchive::load(&path) else {
            return;
        };
        let capacity = self.config.online.eval_cache_capacity;
        self.cache_preloaded += self.fleet.preload_caches(&archive, capacity);
    }

    /// Shutdown half of cache persistence: merge the boards' caches
    /// **per hardware profile** (recency preserved within a profile)
    /// and rewrite the archive — segments of profiles this fleet does
    /// not run survive untouched, so heterogeneous deployments never
    /// clobber each other's warm state.
    fn save_caches(&mut self) {
        let Some(path) = self.config.cache_path.clone() else {
            return;
        };
        let capacity = self.config.online.eval_cache_capacity;
        if capacity == 0 {
            return;
        }
        // Start from the persisted archive when readable so foreign
        // profiles' segments carry forward.
        let mut archive = CacheArchive::load(&path).unwrap_or_default();
        self.fleet.archive_caches(&mut archive, capacity);
        // Persistence failure must not take the daemon down with it.
        let _ = archive.save(&path);
    }

    /// Number of boards in the fleet.
    pub fn num_boards(&self) -> usize {
        self.fleet.len()
    }

    /// Replays `trace` to completion and reports. `horizon_ms` bounds
    /// the throughput/utilization time integrals (use the trace config's
    /// horizon).
    ///
    /// Each call starts from an empty fleet and queue (a prior run's
    /// resident jobs must not leak into the next trace — job ids restart
    /// per trace); evaluation caches, decision memos and scheduler
    /// counters stay warm across calls, so replaying is a warm reboot.
    pub fn run(&mut self, trace: &ArrivalTrace, horizon_ms: u64) -> ServingReport {
        self.fleet.reset_jobs();
        self.pool.reset();
        let n = self.fleet.len();
        let mut ticks: Vec<TickRecord> = Vec::new();
        let mut last_t = 0u64;
        let mut tps_integral = 0.0f64;
        let mut busy_ms = vec![0u64; n];
        let mut peak_queue = 0usize;
        let (mut arrivals, mut departures, mut placements) = (0usize, 0usize, 0usize);

        let mut tenant_acc = TenantAccumulator::new();
        let mut slo_acc = SloAccumulator::new();
        let events = trace.events();
        let mut i = 0usize;
        while i < events.len() {
            let t = events[i].at_ms;
            // Integrate the interval since the previous tick with the
            // still-current deployment.
            let dt = t - last_t;
            tps_integral += self.fleet.aggregate_throughput() * dt as f64;
            tenant_acc.integrate(self.fleet.slots(), dt);
            slo_acc.integrate(self.fleet.slots(), dt);
            for (b, slot) in self.fleet.slots().iter().enumerate() {
                if !slot.jobs.is_empty() {
                    busy_ms[b] += dt;
                }
            }
            last_t = t;

            // TTL sweep first: an entry that outlived its TTL must not
            // grab capacity this tick frees. No-op without a TTL.
            let expired = self.pool.expire(t);

            let mut tick_events = Vec::new();
            let mut placed = Vec::new();
            let mut queued = Vec::new();
            let mut rejected = Vec::new();
            let mut capacity_freed = false;
            while i < events.len() && events[i].at_ms == t {
                let event = events[i].event;
                tick_events.push(event);
                match event {
                    JobEvent::Arrive(job) => {
                        arrivals += 1;
                        tenant_acc.arrival(&job);
                        slo_acc.arrival(&job);
                        match self.pool.submit(&mut self.fleet, job, t) {
                            SubmitOutcome::Placed(board) => {
                                placements += 1;
                                placed.push((job.id, board));
                                tenant_acc.placement(&job, 0);
                            }
                            SubmitOutcome::Queued => queued.push(job.id),
                            SubmitOutcome::Rejected(_) => rejected.push(job.id),
                        }
                    }
                    JobEvent::Depart { job_id } => {
                        departures += 1;
                        // A job may depart while still queued — an
                        // O(log n) id-index removal, not a queue walk.
                        if self.pool.depart(job_id) {
                        } else if let Some(board) = self.fleet.board_of(job_id) {
                            self.fleet.remove_job(board, job_id);
                            capacity_freed = true;
                        }
                    }
                }
                i += 1;
            }

            // Capacity only ever grows when a resident job departs, so
            // the pool is drained exactly then (guaranteed class first,
            // then the configured order, visiting only entries some
            // board can actually admit — no head-of-line blocking);
            // re-probing every board for every waiting job on
            // arrival-only ticks would be pure waste.
            if capacity_freed && !self.pool.is_empty() {
                for d in self.pool.drain(&mut self.fleet, t, &tenant_acc) {
                    placements += 1;
                    placed.push((d.job.id, d.board));
                    tenant_acc.placement(&d.job, t - d.queued_at);
                }
            }
            peak_queue = peak_queue.max(self.pool.len());

            // Reschedule every board whose job set changed (concurrent
            // across boards).
            let decisions = self.fleet.flush_dirty();

            ticks.push(TickRecord {
                at_ms: t,
                events: tick_events,
                placements: placed,
                queued,
                rejected,
                expired,
                decisions,
                queue_depth: self.pool.len(),
                board_jobs: self.fleet.board_jobs(),
                aggregate_tps: self.fleet.aggregate_throughput(),
            });
        }

        // Tail: integrate from the last event to the horizon.
        if horizon_ms > last_t {
            let dt = horizon_ms - last_t;
            tps_integral += self.fleet.aggregate_throughput() * dt as f64;
            tenant_acc.integrate(self.fleet.slots(), dt);
            slo_acc.integrate(self.fleet.slots(), dt);
            for (b, slot) in self.fleet.slots().iter().enumerate() {
                if !slot.jobs.is_empty() {
                    busy_ms[b] += dt;
                }
            }
        }

        self.save_caches();

        let all: Vec<&BoardDecision> = ticks.iter().flat_map(|t| t.decisions.iter()).collect();
        let of_kind = |pred: &dyn Fn(&BoardDecision) -> bool| -> LatencyStats {
            LatencyStats::from_samples(
                all.iter()
                    .filter(|d| pred(d))
                    .map(|d| d.decision_ms)
                    .collect(),
            )
        };
        let eval_cache = self
            .fleet
            .slots()
            .iter()
            .map(|s| s.scheduler.eval_cache().stats())
            .fold(EvalCacheStats::default(), EvalCacheStats::merge);
        let horizon = horizon_ms.max(last_t).max(1);
        let still_queued: Vec<JobSpec> = self.pool.queued_jobs();
        let pool_stats = self.pool.stats();
        // Wall-clock placement samples are not surfaced by the serving
        // summary; drop them so they never accumulate across runs.
        let _ = self.pool.take_place_samples();
        let summary = ServingSummary {
            events: trace.len(),
            arrivals,
            departures,
            placements,
            peak_queue_depth: peak_queue,
            left_in_queue: self.pool.len(),
            rejected: pool_stats.rejected,
            expired: pool_stats.expired,
            slo: slo_acc.finish(),
            decisions: all.len(),
            cold: of_kind(&|d| d.kind == DecisionKind::Cold),
            warm: of_kind(&|d| {
                matches!(d.kind, DecisionKind::WarmArrival | DecisionKind::WarmDepart)
            }),
            memo: of_kind(&|d| d.kind == DecisionKind::Memo),
            single_job_delta: of_kind(&|d| d.single_job_delta),
            migrated_layers: all.iter().map(|d| d.migrated_layers).sum(),
            mean_aggregate_tps: tps_integral / horizon as f64,
            board_utilization: busy_ms
                .iter()
                .map(|ms| *ms as f64 / horizon as f64)
                .collect(),
            eval_cache,
            cache_preloaded_entries: self.cache_preloaded,
            tenants: tenant_acc.finish(horizon, &still_queued),
        };
        ServingReport { ticks, summary }
    }
}
