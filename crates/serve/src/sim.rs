//! The trace-replay serving runtime: replay an [`ArrivalTrace`] against
//! a fleet, rescheduling per event and recording serving metrics.
//!
//! The event loop itself lives in [`crate::ServingEngine`] — an
//! incremental, caller-clocked core shared with the `omniboost-rpc`
//! daemon. This module keeps the report/summary types and the
//! [`ServingSim`] driver that replays a whole trace through the engine.

use crate::engine::ServingEngine;
use crate::fleet::PlacementPolicy;
use crate::mempool::{AdmissionPolicy, MempoolStats};
use crate::scheduler::{DecisionKind, OnlineConfig, ReschedulePolicy};
use crate::slo::SloSummary;
use crate::tenants::TenantSummary;
use omniboost_hw::{Board, EvalCacheStats, Fnv1a, ThroughputModel};
use omniboost_models::{ArrivalTrace, JobEvent};
use omniboost_telemetry::LogHistogram;
use std::hash::Hasher;
use std::path::PathBuf;

/// Full serving-runtime configuration.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Rescheduling policy (the cold/warm A/B axis).
    pub policy: ReschedulePolicy,
    /// Job placement policy across boards.
    pub placement: PlacementPolicy,
    /// Per-board online scheduler knobs.
    pub online: OnlineConfig,
    /// Whether per-board runtimes memoize decisions per workload mix
    /// (the "unchanged mix answers instantly" serving behaviour).
    pub use_memo: bool,
    /// Persisted evaluation-cache snapshot: loaded into every board's
    /// scheduler at startup (boards whose fingerprint mismatches start
    /// cold), merged and rewritten at shutdown.
    pub cache_path: Option<PathBuf>,
    /// Admission-mempool knobs (validation, quotas, TTL, backoff,
    /// drain order). The default is the historical permissive FIFO.
    pub admission: AdmissionPolicy,
}

impl ServingConfig {
    /// The production configuration: warm starts, decision memo,
    /// least-loaded placement.
    pub fn warm() -> Self {
        Self {
            policy: ReschedulePolicy::WarmStart,
            placement: PlacementPolicy::LeastLoaded,
            online: OnlineConfig::default(),
            use_memo: true,
            cache_path: None,
            admission: AdmissionPolicy::default(),
        }
    }

    /// The baseline: every event pays a full cold search, no memo.
    pub fn cold() -> Self {
        Self {
            policy: ReschedulePolicy::ColdRestart,
            use_memo: false,
            ..Self::warm()
        }
    }
}

/// One board's rescheduling outcome within a tick.
#[derive(Debug, Clone)]
pub struct BoardDecision {
    /// Board index.
    pub board: usize,
    /// How the decision was produced.
    pub kind: DecisionKind,
    /// Wall-clock decision latency in milliseconds (memo hits report
    /// the near-zero lookup time — that is the point).
    pub decision_ms: f64,
    /// Whether this reschedule was triggered by a single-job delta
    /// (exactly one arrival or one departure since the last deployment)
    /// — the event class the warm-vs-cold comparison is defined on.
    pub single_job_delta: bool,
    /// Layers whose device changed vs the previous deployment.
    pub migrated_layers: usize,
    /// Evaluator queries that actually ran (0 for memo hits).
    pub evaluations: usize,
    /// Jobs resident after the decision.
    pub jobs: usize,
    /// Board throughput after the decision (sum of per-job inf/s).
    pub throughput: f64,
}

/// Everything that happened at one trace timestamp.
#[derive(Debug, Clone)]
pub struct TickRecord {
    /// Timestamp (ms since trace start).
    pub at_ms: u64,
    /// Trace events processed at this stamp.
    pub events: Vec<JobEvent>,
    /// `(job id, board)` placements this tick (fresh arrivals and jobs
    /// drained from the queue).
    pub placements: Vec<(u64, usize)>,
    /// Job ids that had to queue (no board could admit them).
    pub queued: Vec<u64>,
    /// Job ids the mempool rejected at submit (validation or tenant
    /// quota — empty under the default permissive policy).
    pub rejected: Vec<u64>,
    /// Queued job ids the mempool TTL-evicted this tick (empty when no
    /// TTL is configured).
    pub expired: Vec<u64>,
    /// Per-board rescheduling outcomes.
    pub decisions: Vec<BoardDecision>,
    /// Waiting jobs after the tick.
    pub queue_depth: usize,
    /// Jobs resident per board after the tick.
    pub board_jobs: Vec<usize>,
    /// Fleet throughput after the tick (sum of per-job inf/s).
    pub aggregate_tps: f64,
}

/// Order statistics over a set of decision latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Sample count.
    pub count: usize,
    /// Median milliseconds (0 when empty).
    pub median_ms: f64,
    /// Mean milliseconds (0 when empty).
    pub mean_ms: f64,
    /// 99th-percentile milliseconds (nearest-rank; 0 when empty).
    pub p99_ms: f64,
    /// Maximum milliseconds (0 when empty).
    pub max_ms: f64,
}

impl LatencyStats {
    /// Order statistics over raw samples (milliseconds).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p99_rank = ((samples.len() as f64 * 0.99).ceil() as usize).max(1) - 1;
        Self {
            count: samples.len(),
            median_ms: samples[samples.len() / 2],
            mean_ms: samples.iter().sum::<f64>() / samples.len() as f64,
            p99_ms: samples[p99_rank],
            max_ms: *samples.last().unwrap(),
        }
    }

    /// Order statistics off a [`LogHistogram`]: count, mean and max are
    /// exact; median and p99 are nearest-rank values quantized to the
    /// histogram's log buckets (within one bucket width, ≲6%, of the
    /// exact sample statistics) — which is what lets long-lived runs
    /// drop the unbounded per-sample buffers.
    pub fn from_histogram(h: &LogHistogram) -> Self {
        if h.is_empty() {
            return Self::default();
        }
        let n = h.count();
        Self {
            count: n as usize,
            // Rank n/2 + 1 is the upper median — the element
            // `from_samples` picks at index `len / 2`.
            median_ms: h.rank_value(n / 2 + 1),
            mean_ms: h.mean(),
            p99_ms: h.rank_value(((n as f64 * 0.99).ceil() as u64).max(1)),
            max_ms: h.max(),
        }
    }
}

/// Aggregates over a whole serving run.
#[derive(Debug, Clone)]
pub struct ServingSummary {
    /// Trace events replayed.
    pub events: usize,
    /// Arrivals / departures among them.
    pub arrivals: usize,
    /// Departure events.
    pub departures: usize,
    /// Successful placements (including drained queue entries).
    pub placements: usize,
    /// Deepest the queue ever got.
    pub peak_queue_depth: usize,
    /// Jobs still waiting when the trace ended.
    pub left_in_queue: usize,
    /// Jobs the mempool rejected at submit (validation + tenant quota).
    pub rejected: usize,
    /// Queued jobs the mempool TTL-evicted before they ever placed.
    pub expired: usize,
    /// The admission pool's full lifetime counters (submits, requeues,
    /// placements, rejects, TTL evictions, queued departures and drain
    /// retries) — surfaced here so exporters like the RPC daemon's
    /// `/metrics` endpoint never reach into `serve::mempool` internals.
    pub pool: MempoolStats,
    /// Per-SLO-class attainment (guaranteed floors, best-effort
    /// starvation).
    pub slo: SloSummary,
    /// Rescheduling decisions made (all boards).
    pub decisions: usize,
    /// Decision latency of cold decisions.
    pub cold: LatencyStats,
    /// Decision latency of warm decisions (arrival + departure kinds).
    pub warm: LatencyStats,
    /// Decision latency of memo-answered decisions.
    pub memo: LatencyStats,
    /// Decision latency over **single-job-delta events only** — the
    /// bench's warm-vs-cold comparison axis.
    pub single_job_delta: LatencyStats,
    /// Total migration churn (layers moved across all decisions).
    pub migrated_layers: usize,
    /// Time-weighted mean fleet throughput over the horizon.
    pub mean_aggregate_tps: f64,
    /// Fraction of the horizon each board served at least one job.
    pub board_utilization: Vec<f64>,
    /// Merged evaluation-cache counters across boards.
    pub eval_cache: EvalCacheStats,
    /// Entries warm-loaded from a persisted cache snapshot at startup.
    pub cache_preloaded_entries: usize,
    /// Per-tenant throughput / placement / queue-wait aggregates,
    /// sorted by tenant id — the measurement side of multi-tenant
    /// fairness (see [`crate::tenant_tps_ratio`]).
    pub tenants: Vec<TenantSummary>,
}

/// The record of one serving run: per-tick detail plus the summary.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Per-timestamp records, in replay order.
    pub ticks: Vec<TickRecord>,
    /// Aggregates.
    pub summary: ServingSummary,
}

impl ServingReport {
    /// Deterministic digest of everything **except wall-clock latency**:
    /// replaying the same seeded trace through the same configuration
    /// must reproduce this bit-for-bit (mappings, migrations, queue
    /// dynamics and measured throughputs are all deterministic; only
    /// decision timing varies run to run).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::default();
        let f = |h: &mut Fnv1a, v: f64| h.write(&v.to_bits().to_le_bytes());
        for tick in &self.ticks {
            h.write(&tick.at_ms.to_le_bytes());
            for e in &tick.events {
                match e {
                    JobEvent::Arrive(j) => {
                        h.write(&[1]);
                        h.write(&j.id.to_le_bytes());
                        h.write(&(j.model.index() as u64).to_le_bytes());
                        h.write(&j.tenant.to_le_bytes());
                    }
                    JobEvent::Depart { job_id } => {
                        h.write(&[2]);
                        h.write(&job_id.to_le_bytes());
                    }
                }
            }
            for (id, board) in &tick.placements {
                h.write(&id.to_le_bytes());
                h.write(&(*board as u64).to_le_bytes());
            }
            for id in &tick.queued {
                h.write(&id.to_le_bytes());
            }
            // Rejections/expiries hash per id: empty vectors write no
            // bytes, so pre-mempool digests are preserved verbatim.
            for id in &tick.rejected {
                h.write(&[3]);
                h.write(&id.to_le_bytes());
            }
            for id in &tick.expired {
                h.write(&[4]);
                h.write(&id.to_le_bytes());
            }
            for d in &tick.decisions {
                h.write(&(d.board as u64).to_le_bytes());
                h.write(d.kind.label().as_bytes());
                h.write(&[u8::from(d.single_job_delta)]);
                h.write(&(d.migrated_layers as u64).to_le_bytes());
                // `evaluations` is deliberately excluded: a persisted
                // cache warms it away without changing any decision.
                h.write(&(d.jobs as u64).to_le_bytes());
                f(&mut h, d.throughput);
            }
            h.write(&(tick.queue_depth as u64).to_le_bytes());
            for j in &tick.board_jobs {
                h.write(&(*j as u64).to_le_bytes());
            }
            f(&mut h, tick.aggregate_tps);
        }
        f(&mut h, self.summary.mean_aggregate_tps);
        h.write(&(self.summary.migrated_layers as u64).to_le_bytes());
        h.finish()
    }
}

/// The serving runtime: a fleet, the admission mempool, and the event
/// loop.
///
/// ```no_run
/// use omniboost_hw::{AnalyticModel, Board};
/// use omniboost_models::{ArrivalProcess, ArrivalTrace, TraceConfig};
/// use omniboost_serve::{ServingConfig, ServingSim};
///
/// let trace = ArrivalTrace::generate(
///     ArrivalProcess::Poisson { rate_per_s: 0.4 },
///     &TraceConfig::default(),
///     7,
/// );
/// let boards = vec![Board::hikey970(); 4];
/// let mut sim = ServingSim::new(boards, ServingConfig::warm(), AnalyticModel::new);
/// let report = sim.run(&trace, 60_000);
/// println!(
///     "warm median {:.1} ms, {:.1} inf/s served",
///     report.summary.single_job_delta.median_ms,
///     report.summary.mean_aggregate_tps,
/// );
/// ```
pub struct ServingSim<M> {
    engine: ServingEngine<M>,
}

impl<M: ThroughputModel + Send + Sync> ServingSim<M> {
    /// Builds a fleet of `boards` with one evaluator per board (the
    /// factory receives each board, so board-calibrated evaluators like
    /// [`omniboost_hw::AnalyticModel`] fit naturally).
    pub fn new(
        boards: Vec<Board>,
        config: ServingConfig,
        make_evaluator: impl FnMut(Board) -> M,
    ) -> Self {
        Self {
            engine: ServingEngine::new(boards, config, make_evaluator),
        }
    }

    /// Number of boards in the fleet.
    pub fn num_boards(&self) -> usize {
        self.engine.num_boards()
    }

    /// Attaches a telemetry handle (spans, counters, flight recorder)
    /// to the underlying engine. The default is the no-op handle;
    /// replay digests are identical either way, because telemetry only
    /// observes decisions.
    pub fn set_telemetry(&mut self, telemetry: omniboost_telemetry::Telemetry) {
        self.engine.set_telemetry(telemetry);
    }

    /// The tick-able engine under the replay driver — the same core the
    /// RPC daemon drives by wall clock.
    pub fn engine(&self) -> &ServingEngine<M> {
        &self.engine
    }

    /// Replays `trace` to completion and reports. `horizon_ms` bounds
    /// the throughput/utilization time integrals (use the trace config's
    /// horizon).
    ///
    /// Each call starts from an empty fleet and queue (a prior run's
    /// resident jobs must not leak into the next trace — job ids restart
    /// per trace); evaluation caches, decision memos and scheduler
    /// counters stay warm across calls, so replaying is a warm reboot.
    pub fn run(&mut self, trace: &ArrivalTrace, horizon_ms: u64) -> ServingReport {
        self.engine.begin_run();
        for event in trace.events() {
            match event.event {
                JobEvent::Arrive(job) => {
                    self.engine.submit(job, event.at_ms);
                }
                JobEvent::Depart { job_id } => {
                    self.engine.depart(job_id, event.at_ms);
                }
            }
        }
        self.engine.finish(horizon_ms)
    }
}
