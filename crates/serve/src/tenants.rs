//! Per-tenant serving metrics: throughput, placement and queue-wait
//! aggregation keyed on [`JobSpec::tenant`].
//!
//! The trace machinery has carried a tenant tag since the serving PR,
//! but nothing read it — so multi-tenant fairness was invisible. This
//! module is the measurement half of the fairness story (the policy
//! half is [`crate::PlacementPolicy::FairShare`]): both the serving sim
//! and the orchestrator feed one [`TenantAccumulator`] per run and
//! report a [`TenantSummary`] per tenant.

use crate::fleet::BoardSlot;
use crate::sim::LatencyStats;
use omniboost_hw::ThroughputModel;
use omniboost_models::JobSpec;
use omniboost_telemetry::LogHistogram;

/// One tenant's aggregates over a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// The tenant id ([`JobSpec::tenant`]).
    pub tenant: u32,
    /// Jobs this tenant submitted.
    pub arrivals: usize,
    /// Successful placements (first placement per job; queue drains and
    /// evacuation re-placements count once more each time the job lands
    /// on a board).
    pub placements: usize,
    /// Time-weighted mean inferences/s attained across the tenant's
    /// resident jobs over the horizon.
    pub mean_tps: f64,
    /// Queue-wait statistics in **simulated milliseconds** (time from
    /// entering the FIFO queue to landing on a board). Jobs that never
    /// queued contribute a 0 ms sample on placement, so the mean is per
    /// placement, not per unlucky job.
    pub queue_wait: LatencyStats,
    /// Jobs still waiting in the queue when the trace ended.
    pub left_in_queue: usize,
}

/// Streaming accumulator producing [`TenantSummary`] rows. `Clone`
/// supports mid-run metric snapshots (the RPC daemon's `/metrics`
/// scrape finalizes a clone without disturbing the live run).
#[derive(Debug, Default, Clone)]
pub struct TenantAccumulator {
    /// (tenant, arrivals, placements, tps·ms integral, wait histogram,
    /// still queued) — tenant count is tiny (single digits), so linear
    /// probing beats a map.
    rows: Vec<TenantRow>,
}

#[derive(Debug, Clone)]
struct TenantRow {
    tenant: u32,
    arrivals: usize,
    placements: usize,
    tps_integral: f64,
    /// Queue waits as a bounded log-bucketed histogram — a long-lived
    /// daemon must not buffer one sample per placement forever.
    waits: LogHistogram,
    left_in_queue: usize,
}

impl TenantAccumulator {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    fn row(&mut self, tenant: u32) -> &mut TenantRow {
        if let Some(i) = self.rows.iter().position(|r| r.tenant == tenant) {
            return &mut self.rows[i];
        }
        self.rows.push(TenantRow {
            tenant,
            arrivals: 0,
            placements: 0,
            tps_integral: 0.0,
            waits: LogHistogram::new(),
            left_in_queue: 0,
        });
        self.rows.last_mut().expect("just pushed")
    }

    /// Records a job arrival.
    pub fn arrival(&mut self, job: &JobSpec) {
        self.row(job.tenant).arrivals += 1;
    }

    /// The tenant's attained tps·ms integral so far — the deficit key
    /// for tenant-ordered queue drains (tenants never seen read as 0,
    /// i.e. maximally deficient).
    pub fn attained_integral(&self, tenant: u32) -> f64 {
        self.rows
            .iter()
            .find(|r| r.tenant == tenant)
            .map_or(0.0, |r| r.tps_integral)
    }

    /// Records a placement with the time the job waited in the queue
    /// (0 for jobs placed on arrival).
    pub fn placement(&mut self, job: &JobSpec, wait_ms: u64) {
        let row = self.row(job.tenant);
        row.placements += 1;
        row.waits.record(wait_ms as f64);
    }

    /// Integrates every deployed job's measured throughput over `dt_ms`
    /// of simulated time — call once per inter-event interval with the
    /// deployments that served it.
    pub fn integrate<M: ThroughputModel>(&mut self, slots: &[BoardSlot<M>], dt_ms: u64) {
        if dt_ms == 0 {
            return;
        }
        for slot in slots {
            if let Some(report) = &slot.report {
                for (job, tps) in slot.deployed_jobs.iter().zip(&report.per_dnn) {
                    self.row(job.tenant).tps_integral += tps * dt_ms as f64;
                }
            }
        }
    }

    /// Finalizes: one summary per tenant seen, sorted by tenant id.
    /// `still_queued` are the jobs left in the FIFO queue at the end of
    /// the horizon.
    pub fn finish(mut self, horizon_ms: u64, still_queued: &[JobSpec]) -> Vec<TenantSummary> {
        for job in still_queued {
            self.row(job.tenant).left_in_queue += 1;
        }
        let horizon = horizon_ms.max(1) as f64;
        let mut out: Vec<TenantSummary> = self
            .rows
            .into_iter()
            .map(|r| TenantSummary {
                tenant: r.tenant,
                arrivals: r.arrivals,
                placements: r.placements,
                mean_tps: r.tps_integral / horizon,
                queue_wait: LatencyStats::from_histogram(&r.waits),
                left_in_queue: r.left_in_queue,
            })
            .collect();
        out.sort_by_key(|t| t.tenant);
        out
    }
}

/// The fairness headline number: the ratio between the best- and
/// worst-served tenant's time-weighted mean throughput, over tenants
/// that actually had at least one job placed. `1.0` is perfectly fair;
/// [`f64::INFINITY`] means some placed tenant attained nothing at all;
/// `0.0` (vacuous) when fewer than two tenants had placements.
pub fn tenant_tps_ratio(tenants: &[TenantSummary]) -> f64 {
    let served: Vec<f64> = tenants
        .iter()
        .filter(|t| t.placements > 0)
        .map(|t| t.mean_tps)
        .collect();
    if served.len() < 2 {
        return 0.0;
    }
    let max = served.iter().fold(f64::MIN, |a, b| a.max(*b));
    let min = served.iter().fold(f64::MAX, |a, b| a.min(*b));
    if min <= 0.0 {
        f64::INFINITY
    } else {
        max / min
    }
}
