//! The online scheduler: cold search, warm-started rescheduling, and the
//! policy knob between them.

use omniboost_estimator::{BoardScopedCache, EvalCache};
use omniboost_hw::{Board, EvalCacheStats, HwError, Mapping, Scheduler, ThroughputModel, Workload};
use omniboost_mcts::{Environment as _, Mcts, SchedState, SchedulingEnv, SearchBudget};

/// How the scheduler reacts to a workload delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReschedulePolicy {
    /// Re-run the full search from scratch on every event — the
    /// one-shot behaviour of the paper's evaluation, replayed per event.
    /// The baseline the serving bench measures warm starts against.
    ColdRestart,
    /// Serve like a production system: unchanged mixes answer from the
    /// runtime's decision memo, single-job deltas seed the search from
    /// the previous mapping's surviving device paths
    /// ([`SchedState::from_partial_mapping`]) under the smaller warm
    /// budget, and everything else falls back to a cold search.
    WarmStart,
}

impl std::fmt::Display for ReschedulePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReschedulePolicy::ColdRestart => f.write_str("cold"),
            ReschedulePolicy::WarmStart => f.write_str("warm"),
        }
    }
}

/// What kind of decision the scheduler (or runtime) produced for an
/// event — the axis serving latency stats are grouped on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Full-budget search from scratch.
    Cold,
    /// Warm search from a partial root: carried paths frozen, only the
    /// arriving DNN's decisions explored.
    WarmArrival,
    /// Departure: the carried mapping scored as a candidate against a
    /// warm-budget refinement search, best of the two deployed.
    WarmDepart,
    /// Answered from the runtime's decision memo without any search.
    Memo,
}

impl DecisionKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DecisionKind::Cold => "cold",
            DecisionKind::WarmArrival => "warm-arrival",
            DecisionKind::WarmDepart => "warm-depart",
            DecisionKind::Memo => "memo",
        }
    }
}

/// Warm-start context for the next `decide` call: the previous mapping's
/// rows reordered to pair positionally with the new workload's carried
/// prefix. `decided == workload.len()` means a pure departure (the
/// carried mapping is complete); `decided == workload.len() - 1` means
/// the last DNN just arrived.
#[derive(Debug, Clone)]
pub struct WarmHint {
    /// Carried per-DNN device paths, one row per already-decided DNN.
    pub carried: Mapping,
    /// How many leading DNNs of the new workload the rows cover.
    pub decided: usize,
    /// Index (into the carried prefix) of a DNN to **release** back into
    /// the warm search space alongside the arriving one. The serving
    /// runtime points this at the worst-placed carried job — the one
    /// with the lowest attained compute rate (measured inf/s × model
    /// FLOPs) under the current deployment — so a warm arrival can
    /// repair the single most starved path without paying for a cold
    /// search
    /// ([`omniboost_mcts::SchedState::from_frozen_subset`] keeps every
    /// other carried path pinned). `None` keeps the pure prefix freeze.
    pub release: Option<usize>,
}

/// Search budgets and knobs of the online scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Budget of a cold (from-scratch) decision; `parallelism` is
    /// honoured via root-parallel trees.
    pub cold_budget: SearchBudget,
    /// Budget of a warm decision (partial-root search on arrivals,
    /// refinement search on departures). Smaller by design: the warm
    /// search space is the new DNN's decisions only.
    pub warm_budget: SearchBudget,
    /// Stage cap of the losing rule (the paper: device count).
    pub stage_cap: usize,
    /// Search seed (decisions stay deterministic per workload).
    pub seed: u64,
    /// Cross-decision evaluation cache bound (0 disables).
    pub eval_cache_capacity: usize,
    /// Every `refresh_period`-th decision runs the full cold search even
    /// when a warm hint is armed (0 disables). Warm starts freeze
    /// carried paths, so back-to-back deltas accumulate layout drift a
    /// purely incremental scheduler never repairs; a deterministic
    /// periodic refresh bounds that drift while leaving the median
    /// single-delta decision on the warm fast path.
    pub refresh_period: usize,
}

impl Default for OnlineConfig {
    /// Paper-scale cold budget (500 iterations), a quarter-budget warm
    /// search, cap 3, cache on, cold refresh every 3rd decision.
    fn default() -> Self {
        Self {
            cold_budget: SearchBudget::default(),
            warm_budget: SearchBudget::with_iterations(125),
            stage_cap: 3,
            seed: 0x5E17E,
            eval_cache_capacity: 8192,
            refresh_period: 3,
        }
    }
}

/// A [`Scheduler`] driving the MCTS explorer under an online policy.
///
/// Generic over the evaluator guiding the search (the CNN estimator in
/// production, [`omniboost_hw::AnalyticModel`] or the simulator-oracle
/// in tests and benches); every query flows through a board-scoped
/// cross-decision [`EvalCache`], which across *events* is where most of
/// the warm-path work disappears — recurring mixes revisit mappings the
/// previous decisions already scored.
pub struct OnlineScheduler<M> {
    evaluator: M,
    config: OnlineConfig,
    policy: ReschedulePolicy,
    cache: BoardScopedCache,
    hint: Option<WarmHint>,
    /// Per-DNN throughput floors for the **next** decision (armed by
    /// the board slot from its jobs' SLO classes; empty = no floors).
    floors: Vec<f64>,
    last_kind: DecisionKind,
    last_evaluations: usize,
    /// Decisions taken so far (drives the periodic cold refresh).
    decisions: u64,
    /// Armed by [`OnlineScheduler::speculate_next`]: the next decision
    /// is a rebalance-proposal scoring pass, not a deployment.
    speculative: bool,
}

impl<M: ThroughputModel + Sync> OnlineScheduler<M> {
    /// Creates a scheduler with the given policy.
    pub fn new(evaluator: M, policy: ReschedulePolicy, config: OnlineConfig) -> Self {
        Self {
            evaluator,
            policy,
            cache: BoardScopedCache::new(config.eval_cache_capacity),
            config,
            hint: None,
            floors: Vec::new(),
            last_kind: DecisionKind::Cold,
            last_evaluations: 0,
            decisions: 0,
            speculative: false,
        }
    }

    /// The policy.
    pub fn policy(&self) -> ReschedulePolicy {
        self.policy
    }

    /// The configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// The cross-decision evaluation cache.
    pub fn eval_cache(&self) -> &EvalCache {
        self.cache.cache()
    }

    /// The board-scoped cache wrapper (for persistence).
    pub fn board_cache(&self) -> &BoardScopedCache {
        &self.cache
    }

    /// Replaces the evaluation cache — the serving daemon's startup hook
    /// for a persisted snapshot ([`BoardScopedCache::load`]).
    pub fn preload_cache(&mut self, cache: BoardScopedCache) {
        self.cache = cache;
    }

    /// Arms the next `decide` call with warm-start context. Consumed by
    /// the next decision (whatever kind it ends up being); call
    /// [`OnlineScheduler::clear_hint`] if the decision was answered
    /// elsewhere (runtime memo) so stale context can't leak forward.
    pub fn set_warm_hint(&mut self, hint: WarmHint) {
        self.hint = Some(hint);
    }

    /// Drops any armed warm-start context (and any armed floors — a
    /// memo-answered decision never reaches `decide`, so both must not
    /// leak into a later, unrelated one).
    pub fn clear_hint(&mut self) {
        self.hint = None;
        self.floors.clear();
    }

    /// Arms per-DNN throughput floors (inferences/s, aligned with the
    /// next `decide` call's workload order; `0.0` = no floor) for the
    /// next decision. The floors steer the mapping search away from
    /// starving guaranteed-class jobs — see
    /// [`omniboost_mcts::SchedulingEnv::with_floors`].
    pub fn set_floors(&mut self, floors: Vec<f64>) {
        self.floors = floors;
    }

    /// Marks the **next** `decide` call as speculative (a rebalance
    /// proposal being priced, not a deployment): it neither advances the
    /// decision counter nor takes the periodic cold-refresh path, so
    /// proposal scoring can never consume — or pay the full cold budget
    /// of — a refresh that belongs to real deployments. Consumed by the
    /// next decision.
    pub fn speculate_next(&mut self) {
        self.speculative = true;
    }

    /// Whether the **next** decision this scheduler runs will take the
    /// periodic cold-refresh path. Drivers holding a decision memo in
    /// front of the scheduler (the serving runtime) check this to
    /// bypass-and-overwrite the memo on refresh decisions — otherwise a
    /// memoized mix would replay a possibly drift-affected mapping
    /// forever and the refresh could never repair it.
    pub fn refresh_due(&self) -> bool {
        self.config.refresh_period > 0
            && (self.decisions + 1).is_multiple_of(self.config.refresh_period as u64)
    }

    /// Kind of the last decision this scheduler itself produced.
    pub fn last_kind(&self) -> DecisionKind {
        self.last_kind
    }

    /// Evaluator queries that actually ran in the last decision.
    pub fn last_evaluations(&self) -> usize {
        self.last_evaluations
    }
}

/// Scores the **carried-candidate floor** of an armed hint: the previous
/// mapping restricted to the surviving jobs, with an arriving DNN (if
/// any) placed whole on each device in turn. These are the mappings a
/// zero-search incremental scheduler would deploy; any decision holding
/// a hint takes the max against them, so warm serving can never do
/// worse than "keep everything, put the new job on its best device".
/// Returns the best floor mapping, its reward, and the evaluator
/// queries spent (usually cache hits — the carried rows were scored by
/// earlier decisions).
fn carried_floor<E: ThroughputModel>(
    env: &SchedulingEnv<'_, E>,
    workload: &Workload,
    hint: &WarmHint,
) -> Option<(Mapping, f64, usize)> {
    let mut candidates = Vec::new();
    if hint.decided == workload.len() {
        let state = SchedState::from_partial_mapping(env, &hint.carried, hint.decided).ok()?;
        if !state.is_dead() {
            candidates.push(state);
        }
    } else {
        let layers = workload.dnn(workload.len() - 1).num_layers();
        for device in omniboost_hw::Device::ALL {
            let mut rows = hint.carried.assignments().to_vec();
            rows.push(vec![device; layers]);
            let full = Mapping::new(rows);
            if let Ok(state) = SchedState::from_partial_mapping(env, &full, workload.len()) {
                if !state.is_dead() {
                    candidates.push(state);
                }
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (rewards, queries) = env.reward_batch_counted(&candidates);
    let (best, reward) = candidates
        .iter()
        .zip(&rewards)
        .max_by(|a, b| a.1.total_cmp(b.1))?;
    (*reward > 0.0).then(|| (env.mapping_of(best), *reward, queries))
}

/// The warm path for an armed hint, or `None` when the hint does not
/// apply (shape drift, dead root, fruitless warm search) and the
/// decision must fall back to cold.
fn try_warm<E: ThroughputModel>(
    config: &OnlineConfig,
    env: &SchedulingEnv<'_, E>,
    workload: &Workload,
    hint: &WarmHint,
) -> Option<(Mapping, DecisionKind, usize)> {
    if hint.decided + 1 < workload.len() || hint.decided > workload.len() {
        return None; // multi-job delta: cold restart is the answer
    }
    let root = SchedState::from_partial_mapping(env, &hint.carried, hint.decided).ok()?;
    if root.is_dead() {
        return None;
    }
    let mcts = Mcts::new(config.warm_budget);
    let (kind, mut best_mapping, mut best_reward, mut evaluations) =
        if hint.decided == workload.len() {
            // Departure: the carried mapping is complete — score it (one
            // query, usually a cache hit) and let a warm-budget
            // refinement search try to consolidate the freed capacity;
            // the better of the two deploys.
            let carried = mcts.search_from(env, root, config.seed);
            let refine = mcts.search(env, config.seed);
            let evaluations = carried.evaluations + refine.evaluations;
            let best = if refine.best_reward > carried.best_reward {
                refine
            } else {
                carried
            };
            (
                DecisionKind::WarmDepart,
                env.mapping_of(&best.best_state),
                best.best_reward,
                evaluations,
            )
        } else {
            // Arrival: explore the new DNN's decisions from the carried
            // root, raced against a warm-budget global challenger — the
            // focused search wins on sample efficiency, the challenger
            // keeps accumulated prefix drift from compounding (its
            // queries mostly hit the cross-decision cache, so it is far
            // cheaper than its iteration count suggests). When the
            // runtime flagged a worst-placed carried DNN for release,
            // the challenger's budget is **split** with a third racer
            // that freezes every carried path *except* the released one
            // and re-decides it together with the arrival
            // ([`SchedState::from_frozen_subset`]) — the finer drift
            // repair prefix freezing cannot express, at no extra total
            // search cost (the warm path must stay cheaper than cold).
            let release_root = hint.release.filter(|r| *r < hint.decided).and_then(|r| {
                let mut frozen = vec![true; hint.decided];
                frozen[r] = false;
                SchedState::from_frozen_subset(env, &hint.carried, &frozen)
                    .ok()
                    .filter(|root| !root.is_dead())
            });
            let side_budget = if release_root.is_some() {
                let mut half = config.warm_budget;
                half.iterations = (half.iterations / 2).max(1);
                Mcts::new(half)
            } else {
                Mcts::new(config.warm_budget)
            };
            let warm = mcts.search_from(env, root, config.seed);
            let challenger = side_budget.search(env, config.seed);
            let mut evaluations = warm.evaluations + challenger.evaluations;
            let mut best = if challenger.best_reward > warm.best_reward {
                challenger
            } else {
                warm
            };
            if let Some(root) = release_root {
                let release = side_budget.search_from(env, root, config.seed);
                evaluations += release.evaluations;
                if release.best_reward > best.best_reward {
                    best = release;
                }
            }
            (
                DecisionKind::WarmArrival,
                env.mapping_of(&best.best_state),
                best.best_reward,
                evaluations,
            )
        };
    // Floor only the arrival kind: on departures the terminal-root
    // search above already scored the (single) carried candidate, so a
    // floor pass would just re-query the same mapping.
    if kind == DecisionKind::WarmArrival {
        if let Some((mapping, reward, queries)) = carried_floor(env, workload, hint) {
            evaluations += queries;
            if reward > best_reward {
                best_mapping = mapping;
                best_reward = reward;
            }
        }
    }
    (best_reward > 0.0).then_some((best_mapping, kind, evaluations))
}

impl<M: ThroughputModel + Sync> Scheduler for OnlineScheduler<M> {
    /// Policy-qualified so a runtime memo never mixes decisions across
    /// policies.
    fn name(&self) -> &str {
        match self.policy {
            ReschedulePolicy::ColdRestart => "online-cold",
            ReschedulePolicy::WarmStart => "online-warm",
        }
    }

    fn decide(&mut self, board: &Board, workload: &Workload) -> Result<Mapping, HwError> {
        board.admit(workload)?;
        let hint = self.hint.take();
        let scope = self.cache.begin(board);
        let cached = scope.wrap(&self.evaluator);
        let floors = std::mem::take(&mut self.floors);
        let env = SchedulingEnv::new(workload, &cached, self.config.stage_cap)?;
        let env = if floors.len() == workload.len() {
            env.with_floors(floors)
        } else {
            env
        };

        let config = self.config;
        // Speculative (rebalance-scoring) decisions stand outside the
        // refresh cadence: they don't count and never pay a refresh.
        let speculative = std::mem::take(&mut self.speculative);
        if !speculative {
            self.decisions += 1;
        }
        // Periodic drift repair: every Nth decision takes the cold path
        // even when warm-eligible (but keeps the carried floor below).
        let refresh = !speculative
            && config.refresh_period > 0
            && self.decisions.is_multiple_of(config.refresh_period as u64);
        let warm = match (&self.policy, &hint, refresh) {
            (ReschedulePolicy::WarmStart, Some(hint), false) => {
                try_warm(&config, &env, workload, hint)
            }
            _ => None,
        };
        let (mapping, kind, evaluations) = match warm {
            Some(found) => found,
            None => {
                let result = Mcts::new(config.cold_budget).run(&env, config.seed);
                let mut mapping = env.mapping_of(&result.best_state);
                let mut reward = result.best_reward;
                let mut evaluations = result.evaluations;
                // Under the warm policy even cold decisions (refresh or
                // fallback) never deploy below the carried floor: a full
                // redeploy must *earn* its migration churn.
                if self.policy == ReschedulePolicy::WarmStart {
                    if let Some(hint) = &hint {
                        if let Some((m, r, q)) = carried_floor(&env, workload, hint) {
                            evaluations += q;
                            if r > reward {
                                mapping = m;
                                reward = r;
                            }
                        }
                    }
                }
                let _ = reward;
                (mapping, DecisionKind::Cold, evaluations)
            }
        };
        self.last_kind = kind;
        self.last_evaluations = scope.fresh_evaluations(evaluations);
        mapping.validate(workload)?;
        Ok(mapping)
    }

    fn eval_cache_stats(&self) -> Option<EvalCacheStats> {
        self.cache.stats_if_enabled()
    }

    /// Digest of the armed floor vector, so the runtime's decision memo
    /// keys floored mixes apart from floorless ones (and from mixes
    /// floored differently) instead of the slot bypassing the memo for
    /// every guaranteed mix. All-zero floors — the pre-SLO case — salt
    /// to `0`, keeping historical memo keys (and seeded replays)
    /// bit-for-bit intact.
    fn memo_salt(&self) -> u64 {
        if self.floors.iter().all(|f| *f == 0.0) {
            return 0;
        }
        use std::hash::Hasher;
        let mut h = omniboost_hw::Fnv1a::default();
        for f in &self.floors {
            h.write(&f.to_bits().to_le_bytes());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omniboost_hw::{AnalyticModel, Device};
    use omniboost_models::ModelId;

    fn quick_config() -> OnlineConfig {
        OnlineConfig {
            cold_budget: SearchBudget::with_iterations(120),
            warm_budget: SearchBudget::with_iterations(40),
            ..OnlineConfig::default()
        }
    }

    fn scheduler(policy: ReschedulePolicy) -> OnlineScheduler<AnalyticModel> {
        OnlineScheduler::new(
            AnalyticModel::new(Board::hikey970()),
            policy,
            quick_config(),
        )
    }

    #[test]
    fn cold_policy_ignores_hints() {
        let board = Board::hikey970();
        let mut sched = scheduler(ReschedulePolicy::ColdRestart);
        let w1 = Workload::from_ids([ModelId::AlexNet]);
        let m1 = sched.decide(&board, &w1).unwrap();
        let w2 = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet]);
        sched.set_warm_hint(WarmHint {
            carried: m1,
            decided: 1,
            release: None,
        });
        let m2 = sched.decide(&board, &w2).unwrap();
        assert_eq!(sched.last_kind(), DecisionKind::Cold);
        m2.validate(&w2).unwrap();
    }

    #[test]
    fn warm_arrival_freezes_carried_paths_and_is_cheaper() {
        let board = Board::hikey970();
        let mut sched = scheduler(ReschedulePolicy::WarmStart);
        let w1 = Workload::from_ids([ModelId::Vgg19, ModelId::ResNet50]);
        let m1 = sched.decide(&board, &w1).unwrap();
        assert_eq!(sched.last_kind(), DecisionKind::Cold);

        let w2 = Workload::from_ids([ModelId::Vgg19, ModelId::ResNet50, ModelId::AlexNet]);
        sched.set_warm_hint(WarmHint {
            carried: m1.clone(),
            decided: 2,
            release: None,
        });
        let m2 = sched.decide(&board, &w2).unwrap();
        assert_eq!(sched.last_kind(), DecisionKind::WarmArrival);
        m2.validate(&w2).unwrap();
        assert!(m2.max_stages() <= 3);
        // Carried DNNs keep their exact paths: zero migration for them.
        assert_eq!(m2.migrated_layers(&m1, &[Some(0), Some(1), None]), 0);
    }

    #[test]
    fn warm_depart_returns_live_mapping_and_memoizes_evaluator_work() {
        let board = Board::hikey970();
        let mut sched = scheduler(ReschedulePolicy::WarmStart);
        let w2 = Workload::from_ids([ModelId::Vgg16, ModelId::MobileNet]);
        let m2 = sched.decide(&board, &w2).unwrap();

        // MobileNet departs: carried = row 0 only.
        let w1 = Workload::from_ids([ModelId::Vgg16]);
        let carried = Mapping::new(vec![m2.assignments()[0].clone()]);
        sched.set_warm_hint(WarmHint {
            carried,
            decided: 1,
            release: None,
        });
        let m1 = sched.decide(&board, &w1).unwrap();
        assert_eq!(sched.last_kind(), DecisionKind::WarmDepart);
        m1.validate(&w1).unwrap();
        assert!(m1.max_stages() <= 3);
    }

    #[test]
    fn dead_or_misshapen_hints_fall_back_to_cold() {
        let board = Board::hikey970();
        let mut sched = scheduler(ReschedulePolicy::WarmStart);
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet]);
        // Shape mismatch: 3 layers claimed for an 11-layer DNN.
        sched.set_warm_hint(WarmHint {
            carried: Mapping::new(vec![vec![Device::Gpu; 3]]),
            decided: 1,
            release: None,
        });
        let m = sched.decide(&board, &w).unwrap();
        assert_eq!(sched.last_kind(), DecisionKind::Cold);
        m.validate(&w).unwrap();

        // A carried path violating the stage cap (e.g. decided under a
        // looser cap) must also fall back, not search from a dead root.
        let mut overcap = Mapping::all_on(&w, Device::Gpu);
        for (i, l) in [2usize, 4, 6, 8].iter().enumerate() {
            overcap.assign(
                0,
                *l,
                if i % 2 == 0 {
                    Device::BigCpu
                } else {
                    Device::LittleCpu
                },
            );
        }
        assert!(overcap.stage_count(0) > 3);
        sched.set_warm_hint(WarmHint {
            carried: overcap,
            decided: 1,
            release: None,
        });
        let m = sched.decide(&board, &w).unwrap();
        assert_eq!(sched.last_kind(), DecisionKind::Cold);
        m.validate(&w).unwrap();
        assert!(m.max_stages() <= 3);
    }

    #[test]
    fn hints_are_consumed_per_decision() {
        let board = Board::hikey970();
        let mut sched = scheduler(ReschedulePolicy::WarmStart);
        let w1 = Workload::from_ids([ModelId::AlexNet]);
        let m1 = sched.decide(&board, &w1).unwrap();
        let w2 = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet]);
        sched.set_warm_hint(WarmHint {
            carried: m1,
            decided: 1,
            release: None,
        });
        sched.decide(&board, &w2).unwrap();
        assert_eq!(sched.last_kind(), DecisionKind::WarmArrival);
        // No hint armed now: the same query decides cold.
        sched.decide(&board, &w2).unwrap();
        assert_eq!(sched.last_kind(), DecisionKind::Cold);
    }
}
