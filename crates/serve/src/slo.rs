//! Per-class SLO accounting: did guaranteed jobs attain their floor,
//! and did best-effort work starve?
//!
//! [`SloClass::Guaranteed`] carries a throughput floor in inferences/s.
//! The accumulator integrates every deployed job's measured throughput
//! over its residency (the same per-interval walk the tenant accumulator
//! does) and judges each guaranteed job on its *time-weighted mean
//! while resident*: a job is **met** when it was resident at all and
//! its mean attained rate reached the floor. Guaranteed jobs that were
//! rejected, expired or never left the queue count as missed — the
//! admission layer failing them is exactly what the attainment number
//! must surface. One asymmetry: a job resident for less than one
//! inference period at its floor rate whose mean fell short is
//! *unjudgeable* (the window could not observe a violation) and is
//! excluded from the denominator; the same short window attaining the
//! floor still counts as met.

use crate::fleet::BoardSlot;
use omniboost_hw::ThroughputModel;
use omniboost_models::{JobSpec, SloClass};
use std::collections::HashMap;

/// Per-class SLO aggregates over one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloSummary {
    /// Guaranteed-class jobs submitted.
    pub guaranteed_jobs: usize,
    /// Guaranteed jobs whose time-weighted mean attained throughput
    /// while resident reached their floor.
    pub guaranteed_met: usize,
    /// `guaranteed_met / guaranteed_jobs` (1.0 when no guaranteed jobs
    /// were submitted — nothing to miss).
    pub guaranteed_attainment: f64,
    /// Best-effort jobs submitted.
    pub best_effort_jobs: usize,
    /// Best-effort jobs that were resident on some board at least once
    /// — the starvation check (`> 0` whenever any best-effort work was
    /// submitted and served).
    pub best_effort_served: usize,
    /// Mean attained inferences/s across served best-effort jobs
    /// (time-weighted per job, then averaged; 0 when none served).
    pub best_effort_mean_tps: f64,
}

/// What one job attained while resident.
#[derive(Debug, Default, Clone, Copy)]
struct JobAttained {
    tps_integral: f64,
    resident_ms: u64,
}

/// Streaming accumulator producing a [`SloSummary`]. Both sims feed it
/// next to the [`crate::TenantAccumulator`]: one [`SloAccumulator::arrival`]
/// per submitted job, one [`SloAccumulator::integrate`] per
/// inter-event interval.
#[derive(Debug, Default, Clone)]
pub struct SloAccumulator {
    /// Class of every submitted job (keyed by id — the id also keys
    /// the attained map, and `arrival` order does not matter).
    classes: Vec<(u64, SloClass)>,
    attained: HashMap<u64, JobAttained>,
}

impl SloAccumulator {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a submitted job (call once per arrival, before its
    /// placement is known).
    pub fn arrival(&mut self, job: &JobSpec) {
        self.classes.push((job.id, job.slo));
    }

    /// Integrates every deployed job's measured throughput over `dt_ms`
    /// of simulated time.
    pub fn integrate<M: ThroughputModel>(&mut self, slots: &[BoardSlot<M>], dt_ms: u64) {
        if dt_ms == 0 {
            return;
        }
        for slot in slots {
            if let Some(report) = &slot.report {
                for (job, tps) in slot.deployed_jobs.iter().zip(&report.per_dnn) {
                    let row = self.attained.entry(job.id).or_default();
                    row.tps_integral += tps * dt_ms as f64;
                    row.resident_ms += dt_ms;
                }
            }
        }
    }

    /// Finalizes the per-class summary.
    pub fn finish(self) -> SloSummary {
        let mut out = SloSummary::default();
        let mut be_tps_sum = 0.0f64;
        for (id, class) in &self.classes {
            let row = self.attained.get(id).copied().unwrap_or_default();
            let mean_tps = if row.resident_ms > 0 {
                row.tps_integral / row.resident_ms as f64
            } else {
                0.0
            };
            match class {
                SloClass::Guaranteed { min_tps } => {
                    // One-sided short-window rule: a residency shorter
                    // than one inference period at the floor rate
                    // cannot *observe a violation* (the job left before
                    // a single floor-rate inference could finish), so a
                    // below-floor mean over such a window is excluded
                    // as unjudgeable — but an attained floor counts
                    // however short the window. Never-resident jobs
                    // (rejected, expired, queued forever) stay in: the
                    // admission layer failing them is exactly what
                    // attainment surfaces.
                    if row.resident_ms > 0
                        && (row.resident_ms as f64) * min_tps < 1_000.0
                        && mean_tps < *min_tps
                    {
                        continue;
                    }
                    out.guaranteed_jobs += 1;
                    if row.resident_ms > 0 && mean_tps >= *min_tps {
                        out.guaranteed_met += 1;
                    }
                }
                SloClass::BestEffort => {
                    out.best_effort_jobs += 1;
                    if row.resident_ms > 0 {
                        out.best_effort_served += 1;
                        be_tps_sum += mean_tps;
                    }
                }
            }
        }
        out.guaranteed_attainment = if out.guaranteed_jobs == 0 {
            1.0
        } else {
            out.guaranteed_met as f64 / out.guaranteed_jobs as f64
        };
        out.best_effort_mean_tps = if out.best_effort_served == 0 {
            0.0
        } else {
            be_tps_sum / out.best_effort_served as f64
        };
        out
    }
}
