//! The admission mempool: the one validated, class-aware,
//! tenant-quota'd intake path shared by the serving runtime and the
//! orchestrator.
//!
//! Both sims used to carry their own copy-pasted FIFO `VecDeque` with
//! linear drains, no validation, no priorities, no quotas and no
//! retry/eviction. The [`Mempool`] replaces both:
//!
//! * **Validate on submit** — a job whose model no hardware profile in
//!   the fleet could admit *even on an empty board* is rejected
//!   immediately ([`RejectReason::Unservable`]) instead of waiting
//!   forever.
//! * **Per-tenant in-queue quotas** — a tenant may hold at most
//!   [`AdmissionPolicy::tenant_queue_quota`] waiting entries; submits
//!   beyond that are rejected ([`RejectReason::TenantQuota`]), so one
//!   tenant's burst cannot monopolize the queue.
//! * **Priority classes** — [`SloClass::Guaranteed`] entries jump the
//!   queue ahead of best-effort work on every drain (and placement
//!   prefers boards whose projected load honors the floor — see
//!   [`crate::Fleet::place`]).
//! * **Deficit-weighted drain** — [`QueueOrder::TenantDeficit`] offers
//!   freed capacity to the most-starved tenant's job first, now in both
//!   runtimes (it used to be orchestrator-only).
//! * **Retry backoff** — a job that failed a drain attempt is not
//!   re-probed on every freed slot: with
//!   [`AdmissionPolicy::retry_backoff_ms`] set it backs off
//!   exponentially (capped at [`AdmissionPolicy::max_backoff_ms`]).
//! * **TTL eviction** — entries older than
//!   [`AdmissionPolicy::ttl_ms`] are expired with first-class
//!   accounting instead of rotting at the head of the queue.
//! * **Indexed drains** — entries are bucketed per model, so a drain
//!   probes fleet admissibility once per *model* (≤ the zoo size, not
//!   the queue length) and walks only the entries some board could
//!   actually admit. Capacity only shrinks while a drain places jobs,
//!   so a model inadmissible at drain start stays inadmissible for the
//!   whole drain — skipping its bucket is exact, not heuristic.
//!
//! The **default policy is bit-for-bit the historical behaviour**:
//! FIFO order, no quota, no TTL, no backoff — seeded replays produce
//! the same digests they did when each sim owned its own `VecDeque`
//! (pinned by the behaviour-preservation tests in both crates).

use crate::fleet::Fleet;
use crate::tenants::TenantAccumulator;
use omniboost_hw::ThroughputModel;
use omniboost_models::{zoo, JobSpec, ModelId};
use omniboost_telemetry::LogHistogram;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// In what order the waiting queue is offered freed capacity.
///
/// (Moved down from `omniboost-orchestrator` in PR 7 so both runtimes
/// share one drain implementation; the orchestrator re-exports it.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueOrder {
    /// Strict arrival order — the historical behaviour and the default.
    #[default]
    Fifo,
    /// Most-deficient tenant first: waiting jobs are attempted in
    /// ascending order of their tenant's attained tps·ms integral
    /// (ties back off to arrival order), so a starved tenant's job
    /// claims freed capacity before a well-served tenant's older one.
    /// Jobs that still fit nowhere keep their arrival order in the
    /// residual queue.
    TenantDeficit,
}

/// The mempool's admission knobs. [`AdmissionPolicy::default`] is the
/// permissive historical queue: FIFO, validation on, no quota, no TTL,
/// no backoff — traces with no validation rejects replay bit-for-bit
/// against the pre-mempool sims.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Drain ordering (within each SLO class).
    pub order: QueueOrder,
    /// Whether submits are validated against the fleet's hardware
    /// profiles (a job no profile could admit on an *empty* board is
    /// rejected instead of queued forever).
    pub validate: bool,
    /// Maximum waiting entries per tenant (`None` = unbounded). Submits
    /// past the quota are rejected; evacuation requeues are exempt —
    /// an already-admitted job is never dropped by its own quota.
    pub tenant_queue_quota: Option<usize>,
    /// Maximum time an entry may wait before being expired (`None` =
    /// wait forever). Sims sweep expiry at every tick.
    pub ttl_ms: Option<u64>,
    /// Base retry backoff after a failed drain attempt (`None` = retry
    /// on every drain, the historical behaviour). Doubles per failed
    /// attempt, capped at [`AdmissionPolicy::max_backoff_ms`].
    pub retry_backoff_ms: Option<u64>,
    /// Backoff ceiling (only read when `retry_backoff_ms` is set).
    pub max_backoff_ms: u64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self {
            order: QueueOrder::Fifo,
            validate: true,
            tenant_queue_quota: None,
            ttl_ms: None,
            retry_backoff_ms: None,
            max_backoff_ms: 8_000,
        }
    }
}

impl AdmissionPolicy {
    /// A production overload posture: deficit-weighted drain, tenant
    /// quotas, TTL eviction and retry backoff all on. The numbers suit
    /// second-scale traces; benches tune their own.
    pub fn strict() -> Self {
        Self {
            order: QueueOrder::TenantDeficit,
            validate: true,
            tenant_queue_quota: Some(8),
            ttl_ms: Some(10_000),
            retry_backoff_ms: Some(250),
            max_backoff_ms: 8_000,
        }
    }
}

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// No hardware profile in the fleet could admit the job's model
    /// even on an empty board — it could never be served.
    Unservable,
    /// The submitting tenant already holds its full in-queue quota.
    TenantQuota,
}

/// What [`Mempool::submit`] did with the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Placed immediately on this board.
    Placed(usize),
    /// No board could admit it right now; it waits in the pool.
    Queued,
    /// Refused — the job never enters the pool.
    Rejected(RejectReason),
}

/// One job placed by a [`Mempool::drain`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Drained {
    /// The job that left the pool.
    pub job: JobSpec,
    /// When it entered the pool (its queue wait is `now - queued_at`).
    pub queued_at: u64,
    /// The board it landed on.
    pub board: usize,
}

/// Lifetime counters over everything that entered the pool's intake.
/// Conservation — `submitted + requeued == placed + rejected + expired
/// + departed_queued + in-queue` — holds at every step and is checked
/// by [`Mempool::index_check`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MempoolStats {
    /// [`Mempool::submit`] calls.
    pub submitted: usize,
    /// [`Mempool::requeue`] calls (evacuees re-entering).
    pub requeued: usize,
    /// Jobs placed on a board (immediately or by a drain).
    pub placed: usize,
    /// Submits refused (validation + quota).
    pub rejected: usize,
    /// Entries evicted by TTL.
    pub expired: usize,
    /// Entries removed because the job departed while still waiting.
    pub departed_queued: usize,
    /// Failed drain attempts (an entry probed by a drain that still fit
    /// nowhere) — the counter behind retry backoff. Not part of the
    /// conservation identity: retries re-enter the queue by definition.
    pub retries: usize,
}

/// One waiting job.
#[derive(Debug, Clone, Copy)]
struct PoolEntry {
    job: JobSpec,
    queued_at: u64,
    /// Failed drain attempts so far (drives the backoff).
    attempts: u32,
    /// Earliest stamp the next drain may re-probe this entry.
    not_before: u64,
}

/// Per-model admissibility bucket: the waiting entries of one model,
/// with the model's totals precomputed so a drain can probe fleet
/// admissibility once per bucket instead of once per entry.
#[derive(Debug)]
struct ModelBucket {
    model: ModelId,
    weight_bytes: u64,
    seqs: BTreeSet<u64>,
}

/// The shared admission mempool. See the module docs for the feature
/// walk; see [`AdmissionPolicy`] for the knobs.
#[derive(Debug, Default)]
pub struct Mempool {
    policy: AdmissionPolicy,
    /// Waiting entries by admission sequence number — the FIFO spine
    /// (BTreeMap iteration *is* arrival order).
    entries: BTreeMap<u64, PoolEntry>,
    /// Job id → sequence number: O(log n) departures of queued jobs.
    by_id: HashMap<u64, u64>,
    /// Per-model buckets (linear `Vec` — the zoo holds 11 models — so
    /// drain iteration order is deterministic).
    buckets: Vec<ModelBucket>,
    /// Waiting entries per tenant (the quota counter).
    tenant_depth: HashMap<u32, usize>,
    next_seq: u64,
    stats: MempoolStats,
    /// Wall-clock of every placement attempt routed through the pool
    /// (successful or not) — the orchestrator's `placement` latency
    /// surface. A bounded log-bucketed histogram, not a sample buffer:
    /// a long-lived daemon must not grow per placement. Drained with
    /// [`Mempool::take_place_histogram`].
    place_hist: LogHistogram,
}

impl Mempool {
    /// An empty pool under `policy`.
    pub fn new(policy: AdmissionPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// The policy this pool runs.
    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }

    /// Waiting entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime intake counters.
    pub fn stats(&self) -> MempoolStats {
        self.stats
    }

    /// Waiting entries of `tenant` (the quota counter's view).
    pub fn tenant_depth(&self, tenant: u32) -> usize {
        self.tenant_depth.get(&tenant).copied().unwrap_or(0)
    }

    /// The waiting jobs in arrival order.
    pub fn queued_jobs(&self) -> Vec<JobSpec> {
        self.entries.values().map(|e| e.job).collect()
    }

    /// Empties the pool and resets every counter — a sim run starts
    /// from a clean intake (the policy survives).
    pub fn reset(&mut self) {
        self.entries.clear();
        self.by_id.clear();
        self.buckets.clear();
        self.tenant_depth.clear();
        self.next_seq = 0;
        self.stats = MempoolStats::default();
        self.place_hist = LogHistogram::new();
    }

    /// Drains the wall-clock histogram of every placement attempt since
    /// the last take.
    pub fn take_place_histogram(&mut self) -> LogHistogram {
        std::mem::take(&mut self.place_hist)
    }

    /// Submits a fresh arrival: tries to place it now, otherwise
    /// validates (could any profile ever admit it?), checks the
    /// tenant's in-queue quota, and enqueues.
    pub fn submit<M: ThroughputModel + Send + Sync>(
        &mut self,
        fleet: &mut Fleet<M>,
        job: JobSpec,
        now: u64,
    ) -> SubmitOutcome {
        self.stats.submitted += 1;
        if let Some(board) = self.timed_place(fleet, job) {
            self.stats.placed += 1;
            return SubmitOutcome::Placed(board);
        }
        // Validation runs only on the queue path: a job that just
        // placed proved its own admissibility.
        if self.policy.validate && !Self::servable(fleet, job.model) {
            self.stats.rejected += 1;
            return SubmitOutcome::Rejected(RejectReason::Unservable);
        }
        if let Some(quota) = self.policy.tenant_queue_quota {
            if self.tenant_depth(job.tenant) >= quota {
                self.stats.rejected += 1;
                return SubmitOutcome::Rejected(RejectReason::TenantQuota);
            }
        }
        self.enqueue(job, now);
        SubmitOutcome::Queued
    }

    /// Re-submits an evacuee (its board failed or drained): tries to
    /// place it now, otherwise enqueues **unconditionally** — an
    /// already-admitted job is never bounced by validation, quota or a
    /// full pool, or the orchestrator's zero-loss conservation
    /// invariant would break.
    pub fn requeue<M: ThroughputModel + Send + Sync>(
        &mut self,
        fleet: &mut Fleet<M>,
        job: JobSpec,
        now: u64,
    ) -> SubmitOutcome {
        self.stats.requeued += 1;
        if let Some(board) = self.timed_place(fleet, job) {
            self.stats.placed += 1;
            return SubmitOutcome::Placed(board);
        }
        self.enqueue(job, now);
        SubmitOutcome::Queued
    }

    /// Removes a still-waiting job that departed. Returns whether it
    /// was waiting (an O(log n) id-index lookup, not a queue walk).
    pub fn depart(&mut self, job_id: u64) -> bool {
        let Some(seq) = self.by_id.get(&job_id).copied() else {
            return false;
        };
        self.remove_entry(seq);
        self.stats.departed_queued += 1;
        true
    }

    /// Evicts every entry older than the policy's TTL, returning the
    /// expired job ids in arrival order. A no-op when
    /// [`AdmissionPolicy::ttl_ms`] is `None`.
    pub fn expire(&mut self, now: u64) -> Vec<u64> {
        let Some(ttl) = self.policy.ttl_ms else {
            return Vec::new();
        };
        let stale: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| now.saturating_sub(e.queued_at) >= ttl)
            .map(|(seq, _)| *seq)
            .collect();
        let mut expired = Vec::with_capacity(stale.len());
        for seq in stale {
            let entry = self.entries[&seq];
            expired.push(entry.job.id);
            self.remove_entry(seq);
            self.stats.expired += 1;
        }
        expired
    }

    /// Offers freed capacity to the waiting entries: guaranteed-class
    /// jobs first, then best-effort, each set ordered by
    /// [`AdmissionPolicy::order`] (`tenant_acc` supplies the deficit
    /// key). Only entries whose model some board can admit *right now*
    /// are probed — one admissibility check per model bucket, exact
    /// because capacity never grows mid-drain — and entries inside
    /// their retry backoff window are skipped.
    pub fn drain<M: ThroughputModel + Send + Sync>(
        &mut self,
        fleet: &mut Fleet<M>,
        now: u64,
        tenant_acc: &TenantAccumulator,
    ) -> Vec<Drained> {
        if self.entries.is_empty() {
            return Vec::new();
        }
        // One fleet probe per model with waiting entries (≤ zoo size).
        // Placements only consume capacity, so a model inadmissible
        // here stays inadmissible for the whole drain and its bucket
        // can be skipped without changing any outcome.
        let mut candidates: Vec<(u8, f64, u64)> = Vec::new();
        for bucket in &self.buckets {
            if bucket.seqs.is_empty() || !fleet.can_admit(bucket.weight_bytes) {
                continue;
            }
            for &seq in &bucket.seqs {
                let entry = &self.entries[&seq];
                if entry.not_before > now {
                    continue;
                }
                let class = u8::from(!entry.job.slo.is_guaranteed());
                let deficit = match self.policy.order {
                    QueueOrder::Fifo => 0.0,
                    QueueOrder::TenantDeficit => tenant_acc.attained_integral(entry.job.tenant),
                };
                candidates.push((class, deficit, seq));
            }
        }
        candidates.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2)));

        let mut placed = Vec::new();
        for (_, _, seq) in candidates {
            let entry = self.entries[&seq];
            match self.timed_place(fleet, entry.job) {
                Some(board) => {
                    self.remove_entry(seq);
                    self.stats.placed += 1;
                    placed.push(Drained {
                        job: entry.job,
                        queued_at: entry.queued_at,
                        board,
                    });
                }
                None => {
                    self.stats.retries += 1;
                    let entry = self.entries.get_mut(&seq).expect("entry still queued");
                    entry.attempts += 1;
                    if let Some(base) = self.policy.retry_backoff_ms {
                        let exp = (entry.attempts - 1).min(16);
                        let wait = base
                            .saturating_mul(1u64 << exp)
                            .min(self.policy.max_backoff_ms);
                        entry.not_before = now.saturating_add(wait);
                    }
                }
            }
        }
        #[cfg(debug_assertions)]
        self.index_check().expect("mempool indexes diverged");
        placed
    }

    /// Exhaustively validates the id index, the model buckets, the
    /// tenant depths and the conservation counters against the entry
    /// spine — the linear cross-check mirroring `Fleet::index_check`,
    /// asserted after every drain under debug assertions and driven
    /// directly by the mempool proptests.
    pub fn index_check(&self) -> Result<(), String> {
        if self.by_id.len() != self.entries.len() {
            return Err(format!(
                "id index holds {} rows for {} entries",
                self.by_id.len(),
                self.entries.len()
            ));
        }
        let bucketed: usize = self.buckets.iter().map(|b| b.seqs.len()).sum();
        if bucketed != self.entries.len() {
            return Err(format!(
                "{bucketed} bucketed seqs for {} entries",
                self.entries.len()
            ));
        }
        for (seq, entry) in &self.entries {
            if self.by_id.get(&entry.job.id) != Some(seq) {
                return Err(format!("job {} missing from the id index", entry.job.id));
            }
            let Some(bucket) = self.buckets.iter().find(|b| b.model == entry.job.model) else {
                return Err(format!("no bucket for model {:?}", entry.job.model));
            };
            if !bucket.seqs.contains(seq) {
                return Err(format!("seq {seq} missing from its model bucket"));
            }
        }
        let mut depths: HashMap<u32, usize> = HashMap::new();
        for entry in self.entries.values() {
            *depths.entry(entry.job.tenant).or_default() += 1;
        }
        for (tenant, n) in &depths {
            if self.tenant_depth(*tenant) != *n {
                return Err(format!("tenant {tenant} depth stale"));
            }
        }
        if self.tenant_depth.values().sum::<usize>() != self.entries.len() {
            return Err("tenant depths do not sum to the queue length".into());
        }
        let s = &self.stats;
        let intake = s.submitted + s.requeued;
        let outcome = s.placed + s.rejected + s.expired + s.departed_queued + self.entries.len();
        if intake != outcome {
            return Err(format!(
                "conservation broken: {intake} in, {outcome} accounted"
            ));
        }
        Ok(())
    }

    /// Whether any hardware profile in the fleet (active or not — a
    /// board that failed may be rejoined by an identical profile) could
    /// admit one job of `model` on an empty board.
    fn servable<M: ThroughputModel + Sync>(fleet: &Fleet<M>, model: ModelId) -> bool {
        let weight = zoo::build(model).total_weight_bytes();
        let mut seen: Vec<u64> = Vec::new();
        for slot in fleet.slots() {
            let fp = slot.board.fingerprint();
            if seen.contains(&fp) {
                continue;
            }
            seen.push(fp);
            if slot.board.admit_totals(1, weight).is_ok() {
                return true;
            }
        }
        false
    }

    fn enqueue(&mut self, job: JobSpec, now: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(
            seq,
            PoolEntry {
                job,
                queued_at: now,
                attempts: 0,
                not_before: 0,
            },
        );
        self.by_id.insert(job.id, seq);
        *self.tenant_depth.entry(job.tenant).or_default() += 1;
        match self.buckets.iter_mut().find(|b| b.model == job.model) {
            Some(bucket) => {
                bucket.seqs.insert(seq);
            }
            None => self.buckets.push(ModelBucket {
                model: job.model,
                weight_bytes: zoo::build(job.model).total_weight_bytes(),
                seqs: BTreeSet::from([seq]),
            }),
        }
    }

    fn remove_entry(&mut self, seq: u64) {
        let entry = self.entries.remove(&seq).expect("entry exists");
        self.by_id.remove(&entry.job.id);
        if let Some(depth) = self.tenant_depth.get_mut(&entry.job.tenant) {
            *depth -= 1;
            if *depth == 0 {
                self.tenant_depth.remove(&entry.job.tenant);
            }
        }
        if let Some(bucket) = self.buckets.iter_mut().find(|b| b.model == entry.job.model) {
            bucket.seqs.remove(&seq);
        }
    }

    fn timed_place<M: ThroughputModel + Send + Sync>(
        &mut self,
        fleet: &mut Fleet<M>,
        job: JobSpec,
    ) -> Option<usize> {
        let start = std::time::Instant::now();
        let board = fleet.place(job);
        self.place_hist.record(start.elapsed().as_secs_f64() * 1e3);
        board
    }
}
