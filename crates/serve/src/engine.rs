//! The tick-able serving engine: the event loop of [`crate::ServingSim`]
//! extracted from trace replay into an incremental, caller-clocked core.
//!
//! Historically the serving runtime *was* its trace loop — the only way
//! to drive a fleet was to hand [`crate::ServingSim::run`] a complete
//! [`ArrivalTrace`] and wait for the report. A network daemon cannot do
//! that: jobs arrive one RPC at a time, stamped by a wall clock, and the
//! process must answer `status` / `metrics` probes *mid-run*. The
//! [`ServingEngine`] is the shared core both drivers sit on:
//!
//! * [`crate::ServingSim`] replays a trace by calling
//!   [`ServingEngine::submit`] / [`ServingEngine::depart`] per event and
//!   [`ServingEngine::finish`] at the end — bit-for-bit the behaviour
//!   (and [`crate::ServingReport::digest`]) of the pre-extraction loop.
//! * `omniboost-rpc` feeds the same calls from network requests, clocked
//!   either by the daemon's wall clock or by caller-supplied virtual
//!   stamps (which is what makes the wire path digest-identical to the
//!   in-process path for the same trace).
//!
//! The tick discipline mirrors the old loop exactly: events sharing a
//! timestamp accumulate into one **open tick**; the arrival of a newer
//! stamp (or [`ServingEngine::advance_to`] / [`ServingEngine::finish`])
//! closes it — draining freed capacity, rescheduling dirty boards and
//! recording the [`TickRecord`]. Throughput/utilization integrals cover
//! the interval since the previous stamp with the deployment that
//! actually served it, exactly as the replay loop integrated them.

use crate::fleet::Fleet;
use crate::mempool::{Mempool, MempoolStats, SubmitOutcome};
use crate::scheduler::OnlineScheduler;
use crate::sim::{BoardDecision, LatencyStats, ServingConfig, ServingReport, ServingSummary};
use crate::slo::SloAccumulator;
use crate::tenants::TenantAccumulator;
use crate::TickRecord;
use omniboost_estimator::CacheArchive;
use omniboost_hw::{Board, EvalCacheStats, ThroughputModel};
use omniboost_models::{JobEvent, JobSpec};
use omniboost_telemetry::{LogHistogram, Telemetry};

/// Events of the in-progress tick (the newest timestamp seen), not yet
/// drained / rescheduled / recorded.
#[derive(Debug, Default)]
struct OpenTick {
    at_ms: u64,
    events: Vec<JobEvent>,
    placed: Vec<(u64, usize)>,
    queued: Vec<u64>,
    rejected: Vec<u64>,
    expired: Vec<u64>,
    capacity_freed: bool,
}

/// Per-run accumulators (reset by [`ServingEngine::begin_run`]).
#[derive(Debug, Default)]
struct RunState {
    ticks: Vec<TickRecord>,
    open: Option<OpenTick>,
    last_t: u64,
    tps_integral: f64,
    busy_ms: Vec<u64>,
    peak_queue: usize,
    arrivals: usize,
    departures: usize,
    placements: usize,
    tenant_acc: TenantAccumulator,
    slo_acc: SloAccumulator,
    /// Decision-latency histograms fed per closed tick, replacing the
    /// per-sample vectors the summaries used to re-collect: bounded
    /// memory for a long-lived daemon, O(1) per decision, and mid-run
    /// snapshots no longer re-walk every tick. Always on — these are
    /// plain structs, not telemetry-gated.
    cold_hist: LogHistogram,
    warm_hist: LogHistogram,
    memo_hist: LogHistogram,
    delta_hist: LogHistogram,
}

/// The incremental serving core: a fleet, the admission mempool, and the
/// tick state machine. See the module docs for the contract; see
/// [`crate::ServingSim`] for the trace-replay driver and
/// `omniboost-rpc` for the wall-clock daemon driver.
pub struct ServingEngine<M> {
    fleet: Fleet<M>,
    config: ServingConfig,
    pool: Mempool,
    cache_preloaded: usize,
    run: RunState,
    telemetry: Telemetry,
}

impl<M: ThroughputModel + Send + Sync> ServingEngine<M> {
    /// Builds a fleet of `boards` with one evaluator per board and loads
    /// any persisted cache archive ([`ServingConfig::cache_path`]).
    pub fn new(
        boards: Vec<Board>,
        config: ServingConfig,
        mut make_evaluator: impl FnMut(Board) -> M,
    ) -> Self {
        assert!(!boards.is_empty(), "a fleet needs at least one board");
        let policy = config.policy;
        let online = config.online;
        let fleet = Fleet::new(boards, config.placement, config.use_memo, |board| {
            OnlineScheduler::new(make_evaluator(board.clone()), policy, online)
        });
        let pool = Mempool::new(config.admission);
        let n = fleet.len();
        let mut engine = Self {
            fleet,
            config,
            pool,
            cache_preloaded: 0,
            run: RunState {
                busy_ms: vec![0; n],
                ..RunState::default()
            },
            telemetry: Telemetry::noop(),
        };
        engine.load_caches();
        engine
    }

    /// Startup half of cache persistence: warm every board's scheduler
    /// from its profile's segment of the configured [`CacheArchive`]
    /// snapshot. Profiles without a segment, mismatched or unreadable
    /// snapshots start cold (a daemon must boot regardless); corrupt
    /// files are reported by
    /// [`ServingSummary::cache_preloaded_entries`] staying 0. (The
    /// archive replaced the pre-PR-5 single-segment format; an old
    /// snapshot reads as unreadable — one cold boot — and the next
    /// shutdown rewrites it as an archive.)
    fn load_caches(&mut self) {
        let Some(path) = self.config.cache_path.clone() else {
            return;
        };
        if !path.exists() {
            return;
        }
        let Ok(archive) = CacheArchive::load(&path) else {
            return;
        };
        let capacity = self.config.online.eval_cache_capacity;
        self.cache_preloaded += self.fleet.preload_caches(&archive, capacity);
    }

    /// Shutdown half of cache persistence: merge the boards' caches
    /// **per hardware profile** (recency preserved within a profile)
    /// and rewrite the archive — segments of profiles this fleet does
    /// not run survive untouched, so heterogeneous deployments never
    /// clobber each other's warm state.
    fn save_caches(&mut self) {
        let Some(path) = self.config.cache_path.clone() else {
            return;
        };
        let capacity = self.config.online.eval_cache_capacity;
        if capacity == 0 {
            return;
        }
        // Start from the persisted archive when readable so foreign
        // profiles' segments carry forward.
        let mut archive = CacheArchive::load(&path).unwrap_or_default();
        self.fleet.archive_caches(&mut archive, capacity);
        // Persistence failure must not take the daemon down with it.
        let _ = archive.save(&path);
    }

    /// Attaches a telemetry handle: engine phases (submit, depart,
    /// queue drain, tick flush, cache flush) emit scoped spans, and the
    /// fleet propagates the handle into every board runtime so decision
    /// phases are covered too. Telemetry is observational only — the
    /// replay digest is bit-for-bit identical whether the handle
    /// records or not.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
        self.fleet.set_telemetry(self.telemetry.clone());
    }

    /// The engine's telemetry handle (no-op unless
    /// [`ServingEngine::set_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Number of boards in the fleet.
    pub fn num_boards(&self) -> usize {
        self.fleet.len()
    }

    /// Entries warm-loaded from the persisted cache archive at startup.
    pub fn cache_preloaded_entries(&self) -> usize {
        self.cache_preloaded
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Jobs resident per board, in slot order.
    pub fn board_jobs(&self) -> Vec<usize> {
        self.fleet.board_jobs()
    }

    /// Jobs resident across the fleet.
    pub fn resident_jobs(&self) -> usize {
        self.fleet.board_jobs().iter().sum()
    }

    /// Waiting entries in the admission pool.
    pub fn queue_depth(&self) -> usize {
        self.pool.len()
    }

    /// Fleet throughput under the current deployment (sum of per-job
    /// inferences/s).
    pub fn aggregate_throughput(&self) -> f64 {
        self.fleet.aggregate_throughput()
    }

    /// Borrowed snapshots of the run's decision-latency histograms in
    /// export order: cold, warm, memo, single-job delta. The RPC
    /// daemon's `/metrics` renders these as Prometheus histogram
    /// series.
    pub fn decision_histograms(&self) -> [(&'static str, &LogHistogram); 4] {
        [
            ("decision_cold_ms", &self.run.cold_hist),
            ("decision_warm_ms", &self.run.warm_hist),
            ("decision_memo_ms", &self.run.memo_hist),
            ("decision_single_job_delta_ms", &self.run.delta_hist),
        ]
    }

    /// Lifetime intake counters of the admission pool.
    pub fn pool_stats(&self) -> MempoolStats {
        self.pool.stats()
    }

    /// Arrivals submitted this run.
    pub fn arrivals(&self) -> usize {
        self.run.arrivals
    }

    /// Placements this run (immediate and queue-drained).
    pub fn placements(&self) -> usize {
        self.run.placements
    }

    /// The newest timestamp the engine has seen this run.
    pub fn now(&self) -> u64 {
        self.run.open.as_ref().map_or(self.run.last_t, |o| o.at_ms)
    }

    /// The board currently serving `job_id`, if any.
    pub fn board_of(&self, job_id: u64) -> Option<usize> {
        self.fleet.board_of(job_id)
    }

    /// Starts a fresh run: empty fleet and queue, zeroed accumulators.
    /// Evaluation caches, decision memos and scheduler counters stay
    /// warm — beginning a run on a live engine is a warm reboot.
    pub fn begin_run(&mut self) {
        self.fleet.reset_jobs();
        self.pool.reset();
        self.run = RunState {
            busy_ms: vec![0; self.fleet.len()],
            ..RunState::default()
        };
    }

    /// Integrates the interval `[last_t, t)` under the still-current
    /// deployment.
    fn integrate_to(&mut self, t: u64) {
        let dt = t.saturating_sub(self.run.last_t);
        if dt > 0 {
            self.run.tps_integral += self.fleet.aggregate_throughput() * dt as f64;
            self.run.tenant_acc.integrate(self.fleet.slots(), dt);
            self.run.slo_acc.integrate(self.fleet.slots(), dt);
            for (b, slot) in self.fleet.slots().iter().enumerate() {
                if !slot.jobs.is_empty() {
                    self.run.busy_ms[b] += dt;
                }
            }
        }
        self.run.last_t = t;
    }

    /// Opens (or re-enters) the tick at `at_ms`, closing any older open
    /// tick first. Returns the clamped timestamp: time never runs
    /// backwards — a stale stamp (possible when wall-clocked callers
    /// race) lands in the currently-open tick instead.
    fn open_tick(&mut self, at_ms: u64) -> u64 {
        let t = at_ms.max(self.now());
        if let Some(open) = &self.run.open {
            if open.at_ms == t {
                return t;
            }
            self.close_tick();
        }
        self.integrate_to(t);
        // TTL sweep first: an entry that outlived its TTL must not grab
        // capacity this tick frees. No-op without a TTL.
        let expired = self.pool.expire(t);
        self.run.open = Some(OpenTick {
            at_ms: t,
            expired,
            ..OpenTick::default()
        });
        t
    }

    /// Closes the open tick: offers freed capacity to the pool,
    /// reschedules every board whose job set changed, and records the
    /// [`TickRecord`]. No-op when no tick is open.
    fn close_tick(&mut self) {
        let Some(mut open) = self.run.open.take() else {
            return;
        };
        // Capacity only ever grows when a resident job departs, so the
        // pool is drained exactly then (guaranteed class first, then the
        // configured order, visiting only entries some board can
        // actually admit — no head-of-line blocking); re-probing every
        // board for every waiting job on arrival-only ticks would be
        // pure waste.
        if open.capacity_freed && !self.pool.is_empty() {
            let _drain_span = self.telemetry.span("serve.pool.drain");
            for d in self
                .pool
                .drain(&mut self.fleet, open.at_ms, &self.run.tenant_acc)
            {
                self.run.placements += 1;
                open.placed.push((d.job.id, d.board));
                self.run
                    .tenant_acc
                    .placement(&d.job, open.at_ms - d.queued_at);
            }
        }
        self.run.peak_queue = self.run.peak_queue.max(self.pool.len());

        // Reschedule every board whose job set changed (concurrent
        // across boards).
        let flush_span = self.telemetry.span("serve.tick.flush");
        let decisions = self.fleet.flush_dirty();
        drop(flush_span);

        // Feed the always-on decision-latency histograms the summaries
        // are built from (see `RunState`).
        for d in &decisions {
            match d.kind {
                crate::DecisionKind::Cold => self.run.cold_hist.record(d.decision_ms),
                crate::DecisionKind::WarmArrival | crate::DecisionKind::WarmDepart => {
                    self.run.warm_hist.record(d.decision_ms)
                }
                crate::DecisionKind::Memo => self.run.memo_hist.record(d.decision_ms),
            }
            if d.single_job_delta {
                self.run.delta_hist.record(d.decision_ms);
            }
        }
        if !open.expired.is_empty() && self.telemetry.is_recording() {
            self.telemetry
                .incr("serve.pool.expired", open.expired.len() as u64);
            self.telemetry.event(
                "serve.pool.expire",
                format!(
                    "{} queued entries TTL-evicted at t={}ms",
                    open.expired.len(),
                    open.at_ms
                ),
            );
        }

        self.run.ticks.push(TickRecord {
            at_ms: open.at_ms,
            events: open.events,
            placements: open.placed,
            queued: open.queued,
            rejected: open.rejected,
            expired: open.expired,
            decisions,
            queue_depth: self.pool.len(),
            board_jobs: self.fleet.board_jobs(),
            aggregate_tps: self.fleet.aggregate_throughput(),
        });
    }

    /// Submits one job at `at_ms` through the admission mempool,
    /// returning what happened to it ([`SubmitOutcome`]). Stamps are
    /// clamped monotonic: a stamp older than the newest seen joins the
    /// current tick.
    pub fn submit(&mut self, job: JobSpec, at_ms: u64) -> SubmitOutcome {
        let _span = self.telemetry.span("serve.submit");
        let t = self.open_tick(at_ms);
        self.run.arrivals += 1;
        self.run.tenant_acc.arrival(&job);
        self.run.slo_acc.arrival(&job);
        let outcome = self.pool.submit(&mut self.fleet, job, t);
        let open = self.run.open.as_mut().expect("tick open");
        open.events.push(JobEvent::Arrive(job));
        match outcome {
            SubmitOutcome::Placed(board) => {
                self.run.placements += 1;
                open.placed.push((job.id, board));
                self.run.tenant_acc.placement(&job, 0);
            }
            SubmitOutcome::Queued => open.queued.push(job.id),
            SubmitOutcome::Rejected(_) => open.rejected.push(job.id),
        }
        outcome
    }

    /// Departs the job with `job_id` at `at_ms` (clamped monotonic).
    /// Returns whether the job was known — waiting in the pool or
    /// resident on a board. Unknown ids are recorded as events (the
    /// trace-replay contract) but change nothing.
    pub fn depart(&mut self, job_id: u64, at_ms: u64) -> bool {
        let _span = self.telemetry.span("serve.depart");
        self.open_tick(at_ms);
        self.run.departures += 1;
        let open = self.run.open.as_mut().expect("tick open");
        open.events.push(JobEvent::Depart { job_id });
        // A job may depart while still queued — an O(log n) id-index
        // removal, not a queue walk.
        if self.pool.depart(job_id) {
            true
        } else if let Some(board) = self.fleet.board_of(job_id) {
            self.fleet.remove_job(board, job_id);
            self.run.open.as_mut().expect("tick open").capacity_freed = true;
            true
        } else {
            false
        }
    }

    /// Advances the engine's clock to `at_ms` with no event: closes any
    /// older open tick and integrates the idle interval. A no-op when
    /// `at_ms` is not newer than the engine's clock.
    pub fn advance_to(&mut self, at_ms: u64) {
        if at_ms <= self.now() {
            return;
        }
        self.close_tick();
        self.integrate_to(at_ms);
    }

    /// Ends the run: closes the open tick, integrates the tail out to
    /// `horizon_ms`, archives evaluation caches (when configured) and
    /// returns the full [`ServingReport`]. The engine survives —
    /// [`ServingEngine::begin_run`] starts the next run warm.
    pub fn finish(&mut self, horizon_ms: u64) -> ServingReport {
        self.close_tick();
        // Tail: integrate from the last event to the horizon.
        if horizon_ms > self.run.last_t {
            self.integrate_to(horizon_ms);
        }
        {
            let _span = self.telemetry.span("serve.cache.flush");
            self.save_caches();
        }

        let run = std::mem::take(&mut self.run);
        self.run.busy_ms = vec![0; self.fleet.len()];

        let all: Vec<&BoardDecision> = run.ticks.iter().flat_map(|t| t.decisions.iter()).collect();
        let eval_cache = self
            .fleet
            .slots()
            .iter()
            .map(|s| s.scheduler.eval_cache().stats())
            .fold(EvalCacheStats::default(), EvalCacheStats::merge);
        let horizon = horizon_ms.max(run.last_t).max(1);
        let still_queued: Vec<JobSpec> = self.pool.queued_jobs();
        let pool_stats = self.pool.stats();
        // Wall-clock placement latencies are not surfaced by the
        // serving summary; drop them so runs never bleed together.
        let _ = self.pool.take_place_histogram();
        let summary = ServingSummary {
            events: run.arrivals + run.departures,
            arrivals: run.arrivals,
            departures: run.departures,
            placements: run.placements,
            peak_queue_depth: run.peak_queue,
            left_in_queue: self.pool.len(),
            rejected: pool_stats.rejected,
            expired: pool_stats.expired,
            pool: pool_stats,
            slo: run.slo_acc.finish(),
            decisions: all.len(),
            cold: LatencyStats::from_histogram(&run.cold_hist),
            warm: LatencyStats::from_histogram(&run.warm_hist),
            memo: LatencyStats::from_histogram(&run.memo_hist),
            single_job_delta: LatencyStats::from_histogram(&run.delta_hist),
            migrated_layers: all.iter().map(|d| d.migrated_layers).sum(),
            mean_aggregate_tps: run.tps_integral / horizon as f64,
            board_utilization: run
                .busy_ms
                .iter()
                .map(|ms| *ms as f64 / horizon as f64)
                .collect(),
            eval_cache,
            cache_preloaded_entries: self.cache_preloaded,
            tenants: run.tenant_acc.finish(horizon, &still_queued),
        };
        ServingReport {
            ticks: run.ticks,
            summary,
        }
    }

    /// A mid-run snapshot of the summary as of `at_ms`, without
    /// disturbing the run: accumulators are cloned and integrated out to
    /// the stamp locally, latency stats cover the decisions of closed
    /// ticks. This is what a live `/metrics` scrape exports.
    pub fn snapshot(&self, at_ms: u64) -> ServingSummary {
        let run = &self.run;
        let now = at_ms.max(self.now());
        let dt = now.saturating_sub(run.last_t);
        let mut tenant_acc = run.tenant_acc.clone();
        let mut slo_acc = run.slo_acc.clone();
        let mut tps_integral = run.tps_integral;
        let mut busy_ms = run.busy_ms.clone();
        if dt > 0 {
            tps_integral += self.fleet.aggregate_throughput() * dt as f64;
            tenant_acc.integrate(self.fleet.slots(), dt);
            slo_acc.integrate(self.fleet.slots(), dt);
            for (b, slot) in self.fleet.slots().iter().enumerate() {
                if !slot.jobs.is_empty() {
                    busy_ms[b] += dt;
                }
            }
        }
        let all: Vec<&BoardDecision> = run.ticks.iter().flat_map(|t| t.decisions.iter()).collect();
        let eval_cache = self
            .fleet
            .slots()
            .iter()
            .map(|s| s.scheduler.eval_cache().stats())
            .fold(EvalCacheStats::default(), EvalCacheStats::merge);
        let horizon = now.max(1);
        let pool_stats = self.pool.stats();
        ServingSummary {
            events: run.arrivals + run.departures,
            arrivals: run.arrivals,
            departures: run.departures,
            placements: run.placements,
            peak_queue_depth: run.peak_queue.max(self.pool.len()),
            left_in_queue: self.pool.len(),
            rejected: pool_stats.rejected,
            expired: pool_stats.expired,
            pool: pool_stats,
            slo: slo_acc.finish(),
            decisions: all.len(),
            cold: LatencyStats::from_histogram(&run.cold_hist),
            warm: LatencyStats::from_histogram(&run.warm_hist),
            memo: LatencyStats::from_histogram(&run.memo_hist),
            single_job_delta: LatencyStats::from_histogram(&run.delta_hist),
            migrated_layers: all.iter().map(|d| d.migrated_layers).sum(),
            mean_aggregate_tps: tps_integral / horizon as f64,
            board_utilization: busy_ms
                .iter()
                .map(|ms| *ms as f64 / horizon as f64)
                .collect(),
            eval_cache,
            cache_preloaded_entries: self.cache_preloaded,
            tenants: tenant_acc.finish(horizon, &self.pool.queued_jobs()),
        }
    }
}
