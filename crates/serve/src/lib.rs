//! # omniboost-serve
//!
//! The online serving subsystem: everything the one-shot evaluation of
//! the paper leaves out of a production multi-DNN manager.
//!
//! The paper (and `omniboost::Runtime`) schedules a *fixed* mix once and
//! measures it. A deployed system faces **changing traffic**: DNN jobs
//! arrive and depart over time, across more than one board. This crate
//! layers an event-driven scheduling runtime on top of `omniboost`:
//!
//! * **Arrival traces** — seeded, reproducible event sequences from
//!   Poisson / bursty / diurnal-ramp generators
//!   ([`omniboost_models::scenarios`]), replayed by a deterministic
//!   discrete-time driver ([`ServingSim`]).
//! * **Warm-started rescheduling** ([`ReschedulePolicy::WarmStart`]) —
//!   unchanged mixes answer from the runtime's decision memo; a
//!   single-job delta seeds the MCTS root from the previous mapping's
//!   surviving device paths (`SchedState::from_partial_mapping`) so the
//!   search explores only the open decisions under a fraction of the
//!   cold budget; *migration cost* (layers whose device changed) is
//!   tracked next to throughput, exposing the latency/stability
//!   frontier.
//! * **A fleet** ([`PlacementPolicy`]) — N boards behind a placement
//!   policy (least-loaded by estimated throughput headroom, or
//!   round-robin), per-board schedulers rescheduling concurrently
//!   (rayon across boards; on a 1-core host this degrades gracefully to
//!   a sequential loop).
//! * **An admission mempool** ([`Mempool`], [`AdmissionPolicy`]) — the
//!   one intake path shared with the orchestrator: validates on submit,
//!   enforces per-tenant in-queue quotas, queue-jumps
//!   [`SloClass::Guaranteed`] work, retries unplaceable jobs with
//!   exponential backoff, TTL-evicts stale entries, and drains through
//!   per-model admissibility buckets instead of walking a FIFO
//!   linearly.
//! * **Serving metrics** ([`ServingReport`]) — per-event decision
//!   latency by kind, queue depth, migration churn, per-board
//!   utilization and time-weighted aggregate throughput.
//! * **Cache persistence** — the cross-decision evaluation cache
//!   survives process restarts (`BoardScopedCache` snapshots keyed on
//!   the board fingerprint), wired into the daemon's startup/shutdown
//!   via [`ServingConfig::cache_path`].
//!
//! See `examples/serving_sim.rs` for a runnable walkthrough and
//! `crates/bench/benches/serving.rs` for the cold-vs-warm measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod fleet;
mod mempool;
mod scheduler;
mod sim;
mod slo;
mod tenants;

pub use engine::ServingEngine;
pub use fleet::{BoardSlot, Fleet, PlacementPolicy};
pub use mempool::{
    AdmissionPolicy, Drained, Mempool, MempoolStats, QueueOrder, RejectReason, SubmitOutcome,
};
pub use scheduler::{DecisionKind, OnlineConfig, OnlineScheduler, ReschedulePolicy, WarmHint};
pub use sim::{
    BoardDecision, LatencyStats, ServingConfig, ServingReport, ServingSim, ServingSummary,
    TickRecord,
};
pub use slo::{SloAccumulator, SloSummary};
pub use tenants::{tenant_tps_ratio, TenantAccumulator, TenantSummary};

// Re-exported so serving users reach the observability handle without
// a separate dependency edge.
pub use omniboost_telemetry::{LogHistogram, Telemetry};

// Re-export the trace machinery (and the budget type OnlineConfig is
// built from) so serving users need one import path.
pub use omniboost_mcts::SearchBudget;
pub use omniboost_models::{
    ArrivalProcess, ArrivalTrace, JobEvent, JobSpec, SloClass, TraceConfig,
};
