//! The fleet layer: N boards, a placement policy, per-board runtimes.

use crate::scheduler::OnlineScheduler;
use omniboost::Runtime;
use omniboost_hw::{Board, Mapping, ThroughputModel, ThroughputReport, Workload};
use omniboost_models::{zoo, DnnModel, JobSpec};

/// How arriving jobs are assigned to boards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Cycle through boards in index order, skipping boards that cannot
    /// admit the job — the no-information baseline.
    RoundRobin,
    /// Pick the admissible board with the most estimated throughput
    /// headroom: the lowest [`Board::load_score`] once the job is added
    /// (aggregate model FLOPs normalized by the board's peak compute, so
    /// heterogeneous boards compare fairly). Ties break on the lowest
    /// index, keeping placement deterministic.
    LeastLoaded,
}

impl std::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementPolicy::RoundRobin => f.write_str("round-robin"),
            PlacementPolicy::LeastLoaded => f.write_str("least-loaded"),
        }
    }
}

/// One board of the fleet: its runtime (simulator + decision memo), its
/// online scheduler, the jobs currently resident, and the last
/// deployment (jobs + mapping + measured report) for warm starts and
/// migration accounting.
pub(crate) struct BoardSlot<M> {
    pub index: usize,
    pub board: Board,
    pub runtime: Runtime,
    pub scheduler: OnlineScheduler<M>,
    /// Jobs currently assigned (arrival order preserved; departures
    /// remove in place, so surviving jobs keep their relative order —
    /// the invariant warm hints rely on).
    pub jobs: Vec<JobSpec>,
    /// Built models, parallel to `jobs`.
    pub models: Vec<DnnModel>,
    /// Jobs of the last deployment, pairing `mapping`'s rows.
    pub deployed_jobs: Vec<JobSpec>,
    /// Mapping currently deployed (None while the board is idle).
    pub mapping: Option<Mapping>,
    /// Measured throughput of the current deployment.
    pub report: Option<ThroughputReport>,
    /// Whether jobs changed since the last deployment.
    pub dirty: bool,
    /// Running totals over resident jobs, maintained on every add and
    /// remove so placement can probe admission and load without
    /// materializing hypothetical workloads (or cloning models).
    resident_flops: u64,
    resident_weight_bytes: u64,
}

impl<M> BoardSlot<M> {
    /// The board's current workload.
    pub fn workload(&self) -> Workload {
        Workload::new(self.models.clone())
    }

    /// Total inferences/s the board currently serves (sum over resident
    /// jobs; 0 while idle).
    pub fn throughput(&self) -> f64 {
        self.report.as_ref().map_or(0.0, |r| r.per_dnn.iter().sum())
    }

    /// Removes the job with `job_id`, keeping both vectors aligned.
    /// Returns whether it was resident.
    pub fn remove_job(&mut self, job_id: u64) -> bool {
        match self.jobs.iter().position(|j| j.id == job_id) {
            Some(i) => {
                self.jobs.remove(i);
                let model = self.models.remove(i);
                self.resident_flops -= model.total_flops();
                self.resident_weight_bytes -= model.total_weight_bytes();
                self.dirty = true;
                true
            }
            None => false,
        }
    }
}

/// A fleet of boards sharing a placement policy.
pub struct Fleet<M> {
    pub(crate) slots: Vec<BoardSlot<M>>,
    policy: PlacementPolicy,
    rr_cursor: usize,
}

impl<M: ThroughputModel + Sync> Fleet<M> {
    /// Builds the fleet: one runtime and one scheduler per board.
    pub(crate) fn new(
        boards: Vec<Board>,
        policy: PlacementPolicy,
        use_memo: bool,
        mut make_scheduler: impl FnMut(&Board) -> OnlineScheduler<M>,
    ) -> Self {
        let slots = boards
            .into_iter()
            .enumerate()
            .map(|(index, board)| {
                let runtime = if use_memo {
                    Runtime::new(board.clone()).with_memo()
                } else {
                    Runtime::new(board.clone())
                };
                BoardSlot {
                    index,
                    scheduler: make_scheduler(&board),
                    board,
                    runtime,
                    jobs: Vec::new(),
                    models: Vec::new(),
                    deployed_jobs: Vec::new(),
                    mapping: None,
                    report: None,
                    dirty: false,
                    resident_flops: 0,
                    resident_weight_bytes: 0,
                }
            })
            .collect();
        Self {
            slots,
            policy,
            rr_cursor: 0,
        }
    }

    /// Number of boards.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the fleet has no boards.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Jobs resident per board.
    pub fn board_jobs(&self) -> Vec<usize> {
        self.slots.iter().map(|s| s.jobs.len()).collect()
    }

    /// Aggregate fleet throughput (sum of per-job inf/s across boards).
    pub fn aggregate_throughput(&self) -> f64 {
        self.slots.iter().map(BoardSlot::throughput).sum()
    }

    /// Picks a board for `job` under the placement policy and assigns
    /// it, or returns `None` when no board can admit the job (the caller
    /// queues it). **Admission is a hard gate for every policy**: a
    /// board whose limits (concurrent-DNN cap, memory budget) the job
    /// would break is never chosen.
    pub(crate) fn place(&mut self, job: JobSpec) -> Option<usize> {
        let model = zoo::build(job.model);
        let (job_flops, job_weight) = (model.total_flops(), model.total_weight_bytes());
        // Admission and load probing work off the slots' running totals
        // — no hypothetical workload (and no model clone) per candidate.
        let admissible = |slot: &BoardSlot<M>| -> bool {
            slot.board
                .admit_totals(slot.jobs.len() + 1, slot.resident_weight_bytes + job_weight)
                .is_ok()
        };
        let chosen = match self.policy {
            PlacementPolicy::RoundRobin => {
                let n = self.slots.len();
                (0..n)
                    .map(|k| (self.rr_cursor + k) % n)
                    .find(|&i| admissible(&self.slots[i]))
            }
            PlacementPolicy::LeastLoaded => self
                .slots
                .iter()
                .filter(|s| admissible(s))
                .map(|s| {
                    (
                        s.index,
                        s.board.load_score_flops(s.resident_flops + job_flops),
                    )
                })
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                .map(|(i, _)| i),
        };
        let index = chosen?;
        if self.policy == PlacementPolicy::RoundRobin {
            self.rr_cursor = (index + 1) % self.slots.len();
        }
        let slot = &mut self.slots[index];
        slot.jobs.push(job);
        slot.resident_flops += job_flops;
        slot.resident_weight_bytes += job_weight;
        slot.models.push(model);
        slot.dirty = true;
        Some(index)
    }

    /// Finds the board hosting `job_id`.
    pub(crate) fn board_of(&self, job_id: u64) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.jobs.iter().any(|j| j.id == job_id))
    }

    /// Returns every board to its empty pre-trace state: resident jobs,
    /// deployments and placement cursor cleared. Evaluation caches,
    /// decision memos and scheduler counters deliberately survive —
    /// replaying another trace on the same fleet is a warm reboot, not a
    /// new process.
    pub(crate) fn reset_jobs(&mut self) {
        for slot in &mut self.slots {
            slot.jobs.clear();
            slot.models.clear();
            slot.deployed_jobs.clear();
            slot.mapping = None;
            slot.report = None;
            slot.dirty = false;
            slot.resident_flops = 0;
            slot.resident_weight_bytes = 0;
        }
        self.rr_cursor = 0;
    }
}
