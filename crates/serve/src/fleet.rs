//! The fleet layer: N boards, a placement policy, per-board runtimes.
//!
//! PR 5 opened this up as the substrate of the orchestration control
//! plane (`omniboost-orchestrator`): slots carry an **active** flag
//! (failed/drained boards deactivate in place so indices stay stable),
//! boards can join a running fleet, resident jobs can be evacuated or
//! moved between boards, and the per-slot reschedule step
//! ([`BoardSlot::flush`]) is a public method shared by the serving sim
//! and the orchestrator.

use crate::scheduler::{DecisionKind, OnlineScheduler, WarmHint};
use crate::sim::BoardDecision;
use omniboost::{PreviousDeployment, Runtime};
use omniboost_estimator::CacheArchive;
use omniboost_hw::{Board, Mapping, ThroughputModel, ThroughputReport, Workload};
use omniboost_models::{zoo, DnnModel, JobSpec};
use omniboost_telemetry::Telemetry;
use rayon::prelude::*;

/// How arriving jobs are assigned to boards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Cycle through boards in index order, skipping boards that cannot
    /// admit the job — the no-information baseline.
    RoundRobin,
    /// Pick the admissible board with the most estimated throughput
    /// headroom: the lowest [`Board::load_score`] once the job is added
    /// (aggregate model FLOPs normalized by the board's peak compute, so
    /// heterogeneous boards compare fairly). Ties break on the lowest
    /// index, keeping placement deterministic.
    LeastLoaded,
    /// [`PlacementPolicy::LeastLoaded`] with a tenant-fairness reserve:
    /// the emptiest admissible board is **reserved for tenants running
    /// below their fair share** of attained throughput. A tenant already
    /// above its fair share (total attained inferences/s divided by the
    /// number of tenants with resident jobs, plus a small tolerance
    /// band) places on the least-loaded board *excluding* the reserved
    /// one, so minority tenants keep finding premium headroom while the
    /// majority's placement quality degrades only marginally. Tenants
    /// at/below fair share — including tenants with nothing resident —
    /// place exactly like least-loaded.
    FairShare,
}

/// Attained-throughput tolerance above the exact fair share before a
/// tenant counts as over-served (keeps the reserve from flapping on
/// measurement noise around the boundary).
const FAIR_SHARE_TOLERANCE: f64 = 1.05;

impl std::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementPolicy::RoundRobin => f.write_str("round-robin"),
            PlacementPolicy::LeastLoaded => f.write_str("least-loaded"),
            PlacementPolicy::FairShare => f.write_str("fair-share"),
        }
    }
}

/// One board of the fleet: its runtime (simulator + decision memo), its
/// online scheduler, the jobs currently resident, and the last
/// deployment (jobs + mapping + measured report) for warm starts and
/// migration accounting.
pub struct BoardSlot<M> {
    /// Stable slot index (never reused, even after a board fails).
    pub index: usize,
    /// The hardware profile this slot runs.
    pub board: Board,
    /// Decide → deploy → measure driver (owns the decision memo).
    pub runtime: Runtime,
    /// The slot's online scheduler.
    pub scheduler: OnlineScheduler<M>,
    /// Whether the board is in rotation. Failed/drained boards flip to
    /// `false` and stop receiving placements; the slot (index, caches)
    /// stays so a later join never aliases a dead board's identity.
    pub active: bool,
    /// Jobs currently assigned (arrival order preserved; departures
    /// remove in place, so surviving jobs keep their relative order —
    /// the invariant warm hints rely on).
    pub jobs: Vec<JobSpec>,
    /// Built models, parallel to `jobs`.
    pub models: Vec<DnnModel>,
    /// Jobs of the last deployment, pairing `mapping`'s rows.
    pub deployed_jobs: Vec<JobSpec>,
    /// Mapping currently deployed (None while the board is idle).
    pub mapping: Option<Mapping>,
    /// Measured throughput of the current deployment.
    pub report: Option<ThroughputReport>,
    /// Whether jobs changed since the last deployment.
    pub dirty: bool,
    /// Running totals over resident jobs, maintained on every add and
    /// remove so placement can probe admission and load without
    /// materializing hypothetical workloads (or cloning models).
    resident_flops: u64,
    resident_weight_bytes: u64,
}

impl<M> BoardSlot<M> {
    /// The board's current workload.
    pub fn workload(&self) -> Workload {
        Workload::new(self.models.clone())
    }

    /// Total inferences/s the board currently serves (sum over resident
    /// jobs; 0 while idle).
    pub fn throughput(&self) -> f64 {
        self.report.as_ref().map_or(0.0, |r| r.per_dnn.iter().sum())
    }

    /// Aggregate FLOPs of one inference of every resident job.
    pub fn resident_flops(&self) -> u64 {
        self.resident_flops
    }

    /// Aggregate weight bytes of every resident job's model — the
    /// memory half of the admission check, exposed so planners can
    /// project admission without materializing workloads.
    pub fn resident_weight_bytes(&self) -> u64 {
        self.resident_weight_bytes
    }

    /// The slot's load score: seconds of its own peak compute one
    /// inference of every resident job costs (the placement metric).
    pub fn load_score(&self) -> f64 {
        self.board.load_score_flops(self.resident_flops)
    }

    /// Whether the board admits its residents plus one extra `model`.
    pub fn admits(&self, model: &DnnModel) -> bool {
        self.board
            .admit_totals(
                self.jobs.len() + 1,
                self.resident_weight_bytes + model.total_weight_bytes(),
            )
            .is_ok()
    }

    /// Appends a job (the caller picked this slot; admission is checked
    /// by every placement/rebalance path before calling).
    pub fn push_job(&mut self, job: JobSpec, model: DnnModel) {
        self.resident_flops += model.total_flops();
        self.resident_weight_bytes += model.total_weight_bytes();
        self.jobs.push(job);
        self.models.push(model);
        self.dirty = true;
    }

    /// Removes the job with `job_id`, keeping both vectors aligned.
    /// Returns whether it was resident.
    pub fn remove_job(&mut self, job_id: u64) -> bool {
        self.take_job(job_id).is_some()
    }

    /// Removes and returns the job with `job_id` and its built model —
    /// the donor half of a between-board move.
    pub fn take_job(&mut self, job_id: u64) -> Option<(JobSpec, DnnModel)> {
        let i = self.jobs.iter().position(|j| j.id == job_id)?;
        let job = self.jobs.remove(i);
        let model = self.models.remove(i);
        self.resident_flops -= model.total_flops();
        self.resident_weight_bytes -= model.total_weight_bytes();
        self.dirty = true;
        Some((job, model))
    }

    /// Clears every resident job and the deployment, returning the jobs
    /// in arrival order — the evacuation half of a board failure or
    /// drain. The caller re-places them (or queues what no longer fits);
    /// conservation is on the caller, and proptested at the orchestrator
    /// level.
    pub fn evacuate(&mut self) -> Vec<JobSpec> {
        let jobs = std::mem::take(&mut self.jobs);
        self.models.clear();
        self.deployed_jobs.clear();
        self.mapping = None;
        self.report = None;
        self.dirty = false;
        self.resident_flops = 0;
        self.resident_weight_bytes = 0;
        jobs
    }

    /// Installs a deployment decided *outside* the flush path — the
    /// commit half of an accepted rebalance move, whose mapping and
    /// measured report came from the speculative scoring pass
    /// ([`omniboost::Runtime::run_speculative`]). Clears the dirty flag:
    /// the installed deployment covers the current job set.
    pub fn install_deployment(&mut self, mapping: Mapping, report: ThroughputReport) {
        self.deployed_jobs = self.jobs.clone();
        self.mapping = Some(mapping);
        self.report = Some(report);
        self.dirty = false;
    }
}

impl<M: ThroughputModel + Sync> BoardSlot<M> {
    /// Reschedules the slot if its job set changed since the last
    /// deployment: builds the warm hint and migration pairing from the
    /// previous deployment, runs the decision through the runtime (memo
    /// first), and updates the deployment state. `None` when the slot
    /// was clean (or is now idle).
    pub fn flush(&mut self) -> Option<BoardDecision> {
        if !self.dirty {
            return None;
        }
        self.dirty = false;
        if self.jobs.is_empty() {
            // Idle board: nothing deployed, nothing to decide.
            self.deployed_jobs.clear();
            self.mapping = None;
            self.report = None;
            return None;
        }
        let workload = self.workload();
        // Arm the jobs' SLO floors so the mapping search will not trade
        // a guaranteed job's floor away for aggregate throughput. An
        // all-floorless vector is dropped scheduler-side, keeping
        // pre-SLO workloads' decisions (and replay digests) bit-for-bit.
        self.scheduler.set_floors(
            self.jobs
                .iter()
                .map(|job| job.slo.min_tps().unwrap_or(0.0))
                .collect(),
        );
        // Pair each current job with its row in the previous deployment.
        let pairing: Vec<Option<usize>> = self
            .jobs
            .iter()
            .map(|job| self.deployed_jobs.iter().position(|p| p.id == job.id))
            .collect();
        let carried = pairing.iter().filter(|p| p.is_some()).count();
        // Single-job delta: exactly one departure (all current jobs
        // carried, one previous row dropped) or exactly one arrival (all
        // but the appended last job carried). Warm starts are defined on
        // exactly this event class; anything wider falls back to a cold
        // search.
        let one_departure = carried == self.jobs.len() && self.deployed_jobs.len() == carried + 1;
        let one_arrival = carried + 1 == self.jobs.len()
            && pairing.last() == Some(&None)
            && self.deployed_jobs.len() == carried;
        let single_job_delta = self.mapping.is_some() && (one_departure || one_arrival);
        // Warm hint: the carried device paths from the previous mapping,
        // reordered to the new workload's prefix.
        if let Some(prev) = &self.mapping {
            if single_job_delta {
                let decided = if one_departure {
                    self.jobs.len()
                } else {
                    self.jobs.len() - 1
                };
                let rows: Vec<Vec<_>> = pairing[..decided]
                    .iter()
                    .map(|p| prev.assignments()[p.expect("carried row")].clone())
                    .collect();
                // On arrivals, flag the worst-placed carried job — the
                // one attaining the smallest share of its compute demand
                // under the last measured deployment — for release into
                // the warm search space next to the arriving DNN.
                // (With fewer than two carried jobs the release root
                // degenerates into the global challenger already raced.)
                // Candidates rank **SLO-class first**: a guaranteed job
                // whose measured rate has fallen below its floor is the
                // most urgent release (its placement is already broken),
                // then best-effort jobs, and only last a guaranteed job
                // currently honoring its floor — releasing a satisfied
                // floor risks trading it away for aggregate throughput.
                // Within a class, "worst-placed" = the lowest attained
                // compute rate (measured inf/s × the model's
                // per-inference FLOPs). This is deliberately *absolute*,
                // which skews toward small models — they convert board
                // capacity into FLOPs less efficiently even when
                // perfectly placed — but it benchmarked ahead of the
                // self-normalized alternative (current tps over the
                // job's own peak on this board), which lost the serving
                // bench's ≥99%-of-cold throughput bar on one cell; see
                // the ROADMAP follow-up. All-best-effort slots rank
                // identically to the historical rule.
                let release = if one_arrival && decided >= 2 {
                    self.report.as_ref().and_then(|report| {
                        (0..decided)
                            .map(|i| {
                                let prev_row = pairing[i].expect("carried row");
                                let measured = report.per_dnn[prev_row];
                                let class = match self.jobs[i].slo.min_tps() {
                                    Some(floor) if measured < floor => 0u8,
                                    None => 1,
                                    Some(_) => 2,
                                };
                                let attained = measured * self.models[i].total_flops() as f64;
                                (i, class, attained)
                            })
                            .min_by(|a, b| {
                                a.1.cmp(&b.1).then(a.2.total_cmp(&b.2)).then(a.0.cmp(&b.0))
                            })
                            .map(|(i, _, _)| i)
                    })
                } else {
                    None
                };
                self.scheduler.set_warm_hint(WarmHint {
                    carried: Mapping::new(rows),
                    decided,
                    release,
                });
            }
        }
        let previous = self.mapping.clone();
        let context = previous.as_ref().map(|mapping| PreviousDeployment {
            mapping,
            pairing: &pairing,
        });
        // When the scheduler's periodic cold refresh is due, bypass the
        // decision memo and overwrite its entry — a memoized mix must
        // not shield drift from the refresh. Floored workloads go
        // through the memo like any other mix: the scheduler's
        // `memo_salt` folds the armed floor vector into the memo key,
        // so a hit can only replay a mapping decided under the exact
        // same floors — a floorless mapping can never be served to a
        // floored mix (or vice versa).
        let outcome = if self.scheduler.refresh_due() {
            self.runtime
                .run_refreshed(&mut self.scheduler, &workload, context)
        } else {
            self.runtime
                .run_rescheduled(&mut self.scheduler, &workload, context)
        }
        .expect("placement guarantees admission");
        // A memo hit never reaches the scheduler; drop any armed hint so
        // it cannot leak into a later, unrelated decision.
        self.scheduler.clear_hint();
        let kind = if outcome.memo_hit {
            DecisionKind::Memo
        } else {
            self.scheduler.last_kind()
        };
        self.deployed_jobs = self.jobs.clone();
        self.mapping = Some(outcome.mapping);
        let throughput: f64 = outcome.report.per_dnn.iter().sum();
        self.report = Some(outcome.report);
        Some(BoardDecision {
            board: self.index,
            kind,
            decision_ms: outcome.decision_time.as_secs_f64() * 1e3,
            single_job_delta,
            migrated_layers: outcome.migrated_layers.unwrap_or(0),
            evaluations: if outcome.memo_hit {
                0
            } else {
                self.scheduler.last_evaluations()
            },
            jobs: self.jobs.len(),
            throughput,
        })
    }
}

/// One hardware profile's slice of the [`LoadIndex`]: active slots of
/// that profile ordered by current load score. Grouping by profile is
/// what makes the index exact on heterogeneous fleets — *within* a
/// profile the post-placement score (current + job FLOPs over the same
/// peak) is monotone in the current score, so the front of the ordered
/// set is the profile's best candidate; *across* profiles the peaks
/// differ and the (few) per-group champions are compared directly.
struct LoadGroup {
    fingerprint: u64,
    /// Active slots, keyed `(load-score bits, slot index)`. Scores are
    /// non-negative finite `f64`s, so the IEEE bit pattern orders
    /// exactly like the value.
    by_load: std::collections::BTreeSet<(u64, usize)>,
    /// The subset still below the profile's concurrent-DNN cap — the
    /// only slots a placement can ever choose (the rare memory-budget
    /// rejection is re-checked per candidate).
    open: std::collections::BTreeSet<(u64, usize)>,
}

/// What the index currently records for one slot (None while the slot
/// is deactivated).
#[derive(Clone, Copy)]
struct IndexEntry {
    group: usize,
    key: u64,
    open: bool,
}

/// The load index: every active slot, bucketed by hardware profile and
/// ordered by load score, plus an index-ordered view of the open slots
/// for round-robin. Placement and top-k donor/receiver selection read
/// the ordered fronts instead of scanning every slot; every job
/// mutation updates the affected slot's entry in O(log n).
#[derive(Default)]
struct LoadIndex {
    groups: Vec<LoadGroup>,
    entries: Vec<Option<IndexEntry>>,
    /// Open (active, below the DNN cap) slots by index — the
    /// round-robin iteration order.
    open_by_index: std::collections::BTreeSet<usize>,
}

impl LoadIndex {
    fn group_for(&mut self, fingerprint: u64) -> usize {
        // Linear over groups: a fleet runs a handful of profiles.
        if let Some(g) = self
            .groups
            .iter()
            .position(|g| g.fingerprint == fingerprint)
        {
            return g;
        }
        self.groups.push(LoadGroup {
            fingerprint,
            by_load: std::collections::BTreeSet::new(),
            open: std::collections::BTreeSet::new(),
        });
        self.groups.len() - 1
    }

    fn remove(&mut self, index: usize) {
        if let Some(entry) = self.entries.get_mut(index).and_then(Option::take) {
            let group = &mut self.groups[entry.group];
            group.by_load.remove(&(entry.key, index));
            if entry.open {
                group.open.remove(&(entry.key, index));
                self.open_by_index.remove(&index);
            }
        }
    }

    fn insert<M>(&mut self, slot: &BoardSlot<M>) {
        let index = slot.index;
        if self.entries.len() <= index {
            self.entries.resize(index + 1, None);
        }
        debug_assert!(self.entries[index].is_none(), "slot {index} double-indexed");
        if !slot.active {
            return;
        }
        let key = slot.load_score().to_bits();
        let open = slot.jobs.len() < slot.board.max_concurrent_dnns;
        let group = self.group_for(slot.board.fingerprint());
        self.groups[group].by_load.insert((key, index));
        if open {
            self.groups[group].open.insert((key, index));
            self.open_by_index.insert(index);
        }
        self.entries[index] = Some(IndexEntry { group, key, open });
    }
}

/// A fleet of boards sharing a placement policy.
pub struct Fleet<M> {
    slots: Vec<BoardSlot<M>>,
    policy: PlacementPolicy,
    use_memo: bool,
    rr_cursor: usize,
    index: LoadIndex,
    /// Resident job id → slot index (O(1) departures and `board_of`).
    job_slots: std::collections::HashMap<u64, usize>,
    /// Boards currently in rotation, maintained on deactivate/join so
    /// `active_boards` never rescans.
    active_count: usize,
    /// Observability handle, propagated into every slot's runtime (and
    /// into runtimes built later by joins and profile swaps). No-op by
    /// default; never consulted for decisions, so digests are unchanged
    /// whether it records or not.
    telemetry: Telemetry,
}

impl<M: ThroughputModel + Sync> Fleet<M> {
    /// Builds the fleet: one runtime and one scheduler per board.
    pub fn new(
        boards: Vec<Board>,
        policy: PlacementPolicy,
        use_memo: bool,
        mut make_scheduler: impl FnMut(&Board) -> OnlineScheduler<M>,
    ) -> Self {
        let mut fleet = Self {
            slots: Vec::new(),
            policy,
            use_memo,
            rr_cursor: 0,
            index: LoadIndex::default(),
            job_slots: std::collections::HashMap::new(),
            active_count: 0,
            telemetry: Telemetry::noop(),
        };
        for board in boards {
            let scheduler = make_scheduler(&board);
            fleet.add_board(board, scheduler);
        }
        fleet
    }

    /// Appends a freshly joined board as a new active slot and returns
    /// its (stable) index.
    pub fn add_board(&mut self, board: Board, scheduler: OnlineScheduler<M>) -> usize {
        let index = self.slots.len();
        let mut runtime = if self.use_memo {
            Runtime::new(board.clone()).with_memo()
        } else {
            Runtime::new(board.clone())
        };
        runtime.set_telemetry(self.telemetry.clone());
        self.slots.push(BoardSlot {
            index,
            scheduler,
            board,
            runtime,
            active: true,
            jobs: Vec::new(),
            models: Vec::new(),
            deployed_jobs: Vec::new(),
            mapping: None,
            report: None,
            dirty: false,
            resident_flops: 0,
            resident_weight_bytes: 0,
        });
        self.active_count += 1;
        self.index.insert(&self.slots[index]);
        index
    }

    /// Attaches a telemetry handle and propagates it into every slot's
    /// runtime; boards joined or profile-swapped later inherit it too.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
        for slot in &mut self.slots {
            slot.runtime.set_telemetry(self.telemetry.clone());
        }
    }

    /// The fleet's telemetry handle (no-op unless
    /// [`Fleet::set_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Number of slots (including deactivated ones — indices are
    /// stable).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the fleet has no boards.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of boards currently in rotation (a maintained counter,
    /// not a rescan).
    pub fn active_boards(&self) -> usize {
        debug_assert_eq!(
            self.active_count,
            self.slots.iter().filter(|s| s.active).count(),
        );
        self.active_count
    }

    /// The slots, in stable index order.
    pub fn slots(&self) -> &[BoardSlot<M>] {
        &self.slots
    }

    /// Mutable slot access — the orchestrator's rebalance/evacuation
    /// surgery. Invariants (job/model alignment, resident totals) are
    /// maintained by [`BoardSlot`]'s methods; mutate through those, and
    /// call [`Fleet::reindex`] for every slot whose job set changed
    /// before the next placement — the load index does not watch raw
    /// slot mutations.
    pub fn slots_mut(&mut self) -> &mut [BoardSlot<M>] {
        &mut self.slots
    }

    /// Re-derives slot `index`'s load-index entry and job→board rows
    /// from its current state. Required after mutating a slot's job set
    /// through [`Fleet::slots_mut`] (the rebalancer's take/push
    /// surgery); the fleet's own mutation paths call it internally.
    pub fn reindex(&mut self, index: usize) {
        self.index.remove(index);
        self.index.insert(&self.slots[index]);
        for job in &self.slots[index].jobs {
            self.job_slots.insert(job.id, index);
        }
    }

    /// Removes `job_id` from `board` (a departure), keeping the load
    /// index and the job→board map in sync. Returns whether the job was
    /// resident.
    pub fn remove_job(&mut self, board: usize, job_id: u64) -> bool {
        let removed = self.slots[board].remove_job(job_id);
        if removed {
            self.job_slots.remove(&job_id);
            self.reindex(board);
        }
        removed
    }

    /// The `k` most-loaded active boards that hold at least one job —
    /// rebalance donors — as `(slot index, load score)` descending.
    /// Ties break on the lowest index. Read off the load index: per
    /// profile group the back of the ordered set, merged across the
    /// handful of groups.
    pub fn most_loaded(&self, k: usize) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = Vec::new();
        for group in &self.index.groups {
            out.extend(
                group
                    .by_load
                    .iter()
                    .rev()
                    .filter(|(_, i)| !self.slots[*i].jobs.is_empty())
                    .take(k)
                    .map(|&(_, i)| (i, self.slots[i].load_score())),
            );
        }
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// The `k` least-loaded active boards outside `exclude` — rebalance
    /// receivers — as `(slot index, load score)` ascending, ties on the
    /// lowest index.
    pub fn least_loaded(&self, k: usize, exclude: &[usize]) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = Vec::new();
        for group in &self.index.groups {
            out.extend(
                group
                    .by_load
                    .iter()
                    .filter(|(_, i)| !exclude.contains(i))
                    .take(k)
                    .map(|&(_, i)| (i, self.slots[i].load_score())),
            );
        }
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// Exhaustively validates the load index, the active-board counter
    /// and the job→board map against a linear rescan of every slot —
    /// the test harness behind the index-agreement proptest (the
    /// placement fast path additionally cross-checks each decision
    /// against a linear scan under debug assertions).
    pub fn index_check(&self) -> Result<(), String> {
        let mut indexed = 0usize;
        for slot in &self.slots {
            let entry = self.index.entries.get(slot.index).copied().flatten();
            if !slot.active {
                if entry.is_some() {
                    return Err(format!("inactive slot {} still indexed", slot.index));
                }
                continue;
            }
            let Some(entry) = entry else {
                return Err(format!("active slot {} missing from index", slot.index));
            };
            indexed += 1;
            let key = slot.load_score().to_bits();
            let open = slot.jobs.len() < slot.board.max_concurrent_dnns;
            let group = &self.index.groups[entry.group];
            if entry.key != key {
                return Err(format!("slot {} key stale", slot.index));
            }
            if group.fingerprint != slot.board.fingerprint() {
                return Err(format!("slot {} in wrong profile group", slot.index));
            }
            if !group.by_load.contains(&(key, slot.index)) {
                return Err(format!("slot {} not in by_load", slot.index));
            }
            if entry.open != open
                || group.open.contains(&(key, slot.index)) != open
                || self.index.open_by_index.contains(&slot.index) != open
            {
                return Err(format!("slot {} open-state stale", slot.index));
            }
        }
        let active = self.slots.iter().filter(|s| s.active).count();
        if indexed != active || self.active_count != active {
            return Err(format!(
                "counts diverge: {indexed} indexed, {} counted, {active} active",
                self.active_count
            ));
        }
        let sized: usize = self.index.groups.iter().map(|g| g.by_load.len()).sum();
        if sized != active {
            return Err(format!("{sized} group entries for {active} active slots"));
        }
        let resident: usize = self.slots.iter().map(|s| s.jobs.len()).sum();
        if self.job_slots.len() != resident {
            return Err(format!(
                "job map holds {} rows for {resident} resident jobs",
                self.job_slots.len()
            ));
        }
        for slot in &self.slots {
            for job in &slot.jobs {
                if self.job_slots.get(&job.id) != Some(&slot.index) {
                    return Err(format!(
                        "job {} mapped away from slot {}",
                        job.id, slot.index
                    ));
                }
            }
        }
        Ok(())
    }

    /// Jobs resident per board.
    pub fn board_jobs(&self) -> Vec<usize> {
        self.slots.iter().map(|s| s.jobs.len()).collect()
    }

    /// Aggregate fleet throughput (sum of per-job inf/s across boards).
    pub fn aggregate_throughput(&self) -> f64 {
        self.slots.iter().map(BoardSlot::throughput).sum()
    }

    /// Evacuates every job off slot `index` **without** deactivating it
    /// — the evacuate-always degrade arm (the weakened board stays in
    /// rotation for later placements). Returns the jobs in arrival
    /// order; the caller re-places them.
    pub fn evacuate_jobs(&mut self, index: usize) -> Vec<JobSpec> {
        let evacuees = self.slots[index].evacuate();
        for job in &evacuees {
            self.job_slots.remove(&job.id);
        }
        self.reindex(index);
        evacuees
    }

    /// Deactivates a slot (board failed or drained) and returns its
    /// evacuated jobs in arrival order. The caller re-places them.
    pub fn deactivate(&mut self, index: usize) -> Vec<JobSpec> {
        let slot = &mut self.slots[index];
        if slot.active {
            self.active_count -= 1;
        }
        slot.active = false;
        let evacuees = slot.evacuate();
        for job in &evacuees {
            self.job_slots.remove(&job.id);
        }
        self.index.remove(index);
        evacuees
    }

    /// Swaps slot `index`'s hardware profile **in place** — the
    /// degrade/recover half of the partial-failure chaos engine. The
    /// slot keeps its stable index and as many resident jobs as the new
    /// profile still admits; jobs evicted to satisfy the new admission
    /// limits come back newest-first for the caller to requeue.
    ///
    /// The runtime and scheduler are rebuilt (both are calibrated
    /// against a specific board: the runtime owns the board's oracle
    /// simulator, the scheduler its evaluator), so the decision memo
    /// and evaluation cache restart cold — warm reboots preload the
    /// fresh scheduler from a [`CacheArchive`] segment keyed by the new
    /// profile's fingerprint before the next flush. The previous
    /// deployment is dropped rather than carried: it was priced on the
    /// old profile, and surviving jobs must re-price on the new one
    /// (the next [`BoardSlot::flush`] runs a cold decision).
    pub fn swap_board(
        &mut self,
        index: usize,
        board: Board,
        scheduler: OnlineScheduler<M>,
    ) -> Vec<JobSpec> {
        self.index.remove(index);
        let use_memo = self.use_memo;
        let slot = &mut self.slots[index];
        slot.runtime = if use_memo {
            Runtime::new(board.clone()).with_memo()
        } else {
            Runtime::new(board.clone())
        };
        slot.runtime.set_telemetry(self.telemetry.clone());
        slot.board = board;
        slot.scheduler = scheduler;
        slot.deployed_jobs.clear();
        slot.mapping = None;
        slot.report = None;
        let mut evicted = Vec::new();
        while !slot.jobs.is_empty()
            && slot
                .board
                .admit_totals(slot.jobs.len(), slot.resident_weight_bytes)
                .is_err()
        {
            let job = slot.jobs.pop().expect("non-empty job set");
            let model = slot.models.pop().expect("models parallel jobs");
            slot.resident_flops -= model.total_flops();
            slot.resident_weight_bytes -= model.total_weight_bytes();
            self.job_slots.remove(&job.id);
            evicted.push(job);
        }
        slot.dirty = !slot.jobs.is_empty();
        if self.slots[index].active {
            self.index.insert(&self.slots[index]);
        }
        evicted
    }

    /// Attained inferences/s per tenant under the current deployments,
    /// plus the number of tenants with at least one resident job — the
    /// inputs of the fair-share placement rule.
    fn tenant_attained(&self) -> (Vec<(u32, f64)>, usize) {
        let mut attained: Vec<(u32, f64)> = Vec::new();
        let mut add = |tenant: u32, tps: f64| match attained.iter_mut().find(|(t, _)| *t == tenant)
        {
            Some(slot) => slot.1 += tps,
            None => attained.push((tenant, tps)),
        };
        for slot in &self.slots {
            if let Some(report) = &slot.report {
                for (job, tps) in slot.deployed_jobs.iter().zip(&report.per_dnn) {
                    add(job.tenant, *tps);
                }
            }
        }
        let mut resident: Vec<u32> = self
            .slots
            .iter()
            .flat_map(|s| s.jobs.iter().map(|j| j.tenant))
            .collect();
        resident.sort_unstable();
        resident.dedup();
        (attained, resident.len())
    }

    /// Whether `tenant` currently attains more than its fair share of
    /// the fleet's throughput (see [`PlacementPolicy::FairShare`]).
    fn over_fair_share(&self, tenant: u32) -> bool {
        let (attained, active_tenants) = self.tenant_attained();
        if active_tenants < 2 {
            return false;
        }
        let total: f64 = attained.iter().map(|(_, tps)| tps).sum();
        let fair = total / active_tenants as f64;
        let mine = attained
            .iter()
            .find(|(t, _)| *t == tenant)
            .map_or(0.0, |(_, tps)| *tps);
        mine > fair * FAIR_SHARE_TOLERANCE
    }

    /// Candidate ordering: post-placement load score, then current load
    /// score, then slot index. The current-score tiebreak makes the
    /// index walk (ordered by current score within a profile group) and
    /// a flat linear scan provably agree even when two different
    /// current loads round to the same post-placement `f64`.
    fn by_load(a: &(f64, u64, usize), b: &(f64, u64, usize)) -> std::cmp::Ordering {
        a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
    }

    /// Whether **some** active board could admit one more job of
    /// `job_weight` bytes right now — the mempool's per-model-bucket
    /// drain probe. Walks each profile group's open slots until one
    /// passes the memory check, so the common case is O(profiles); the
    /// predicate is exactly "[`Fleet::place`] would succeed" (every
    /// policy places iff an admissible board exists), which is what
    /// makes bucket-skipping in the mempool behaviour-preserving.
    pub fn can_admit(&self, job_weight: u64) -> bool {
        let admits = self.index.groups.iter().any(|group| {
            group.open.iter().any(|&(_, i)| {
                let slot = &self.slots[i];
                slot.board
                    .admit_totals(slot.jobs.len() + 1, slot.resident_weight_bytes + job_weight)
                    .is_ok()
            })
        });
        debug_assert_eq!(
            admits,
            self.slots.iter().any(|slot| {
                slot.active
                    && slot
                        .board
                        .admit_totals(slot.jobs.len() + 1, slot.resident_weight_bytes + job_weight)
                        .is_ok()
            }),
            "indexed admissibility probe diverged from the linear scan"
        );
        admits
    }

    /// The linear-scan reference for one placement decision — the
    /// pre-index implementation, kept as the debug-mode oracle the
    /// indexed fast path is asserted against on every placement.
    #[cfg(debug_assertions)]
    fn place_linear(
        &self,
        tenant: u32,
        job_flops: u64,
        job_weight: u64,
        floor: Option<f64>,
    ) -> Option<usize> {
        let admissible = |slot: &BoardSlot<M>| -> bool {
            slot.active
                && slot
                    .board
                    .admit_totals(slot.jobs.len() + 1, slot.resident_weight_bytes + job_weight)
                    .is_ok()
        };
        let loaded = |slot: &BoardSlot<M>| -> (f64, u64, usize) {
            (
                slot.board.load_score_flops(slot.resident_flops + job_flops),
                slot.load_score().to_bits(),
                slot.index,
            )
        };
        // Guaranteed floor: when the globally least-loaded admissible
        // board's projected load honors the floor, it wins regardless
        // of policy (mirrors the indexed fast path in `place`).
        if let Some(min_tps) = floor {
            if let Some(best) = self
                .slots
                .iter()
                .filter(|s| admissible(s))
                .map(loaded)
                .min_by(Self::by_load)
            {
                if best.0 <= 1.0 / min_tps {
                    return Some(best.2);
                }
            }
        }
        match self.policy {
            PlacementPolicy::RoundRobin => {
                let n = self.slots.len();
                (0..n)
                    .map(|k| (self.rr_cursor + k) % n)
                    .find(|&i| admissible(&self.slots[i]))
            }
            PlacementPolicy::LeastLoaded => self
                .slots
                .iter()
                .filter(|s| admissible(s))
                .map(loaded)
                .min_by(Self::by_load)
                .map(|(_, _, i)| i),
            PlacementPolicy::FairShare => {
                let mut candidates: Vec<(f64, u64, usize)> = self
                    .slots
                    .iter()
                    .filter(|s| admissible(s))
                    .map(loaded)
                    .collect();
                candidates.sort_by(Self::by_load);
                let skip_reserved = candidates.len() >= 2 && self.over_fair_share(tenant);
                candidates.get(usize::from(skip_reserved)).map(|c| c.2)
            }
        }
    }

    /// The best (and, for fair share, second-best) placement candidates
    /// under the load index: per profile group, walk the open slots in
    /// load order and keep the first `per_group` that also pass the
    /// memory check. Within a group the walk order *is* post-placement
    /// order (same peak, same added FLOPs), so the survivors are the
    /// group's true top candidates; merging the handful of groups costs
    /// O(groups), not O(boards).
    fn index_candidates(
        &self,
        per_group: usize,
        job_flops: u64,
        job_weight: u64,
    ) -> Vec<(f64, u64, usize)> {
        let mut candidates: Vec<(f64, u64, usize)> = Vec::new();
        for group in &self.index.groups {
            let mut taken = 0usize;
            for &(key, i) in &group.open {
                let slot = &self.slots[i];
                if slot
                    .board
                    .admit_totals(slot.jobs.len() + 1, slot.resident_weight_bytes + job_weight)
                    .is_err()
                {
                    continue;
                }
                candidates.push((
                    slot.board.load_score_flops(slot.resident_flops + job_flops),
                    key,
                    i,
                ));
                taken += 1;
                if taken == per_group {
                    break;
                }
            }
        }
        candidates.sort_by(Self::by_load);
        candidates
    }

    /// Picks a board for `job` under the placement policy and assigns
    /// it, or returns `None` when no active board can admit the job (the
    /// caller queues it). **Admission is a hard gate for every policy**:
    /// a board whose limits (concurrent-DNN cap, memory budget) the job
    /// would break is never chosen, and neither is a deactivated board.
    /// Candidate selection reads the load index (O(log n) per
    /// decision); debug builds re-derive the choice with the historical
    /// linear scan and assert both agree.
    ///
    /// **Guaranteed-class jobs** ([`omniboost_models::SloClass`])
    /// additionally get a floor check: when the least-loaded admissible
    /// board's *projected* load score stays within `1 / min_tps`
    /// seconds per round — the speculative placement honors the floor —
    /// that board wins regardless of policy, so a round-robin cursor or
    /// a fair-share reserve never pushes a guaranteed job onto a board
    /// that cannot carry it. Best-effort jobs take the historical path
    /// untouched (pre-SLO traces replay bit-for-bit).
    pub fn place(&mut self, job: JobSpec) -> Option<usize> {
        let model = zoo::build(job.model);
        let (job_flops, job_weight) = (model.total_flops(), model.total_weight_bytes());
        let floor = job.slo.min_tps();
        // Admission and load probing work off the slots' running totals
        // — no hypothetical workload (and no model clone) per candidate.
        let floor_chosen = floor.and_then(|min_tps| {
            self.index_candidates(1, job_flops, job_weight)
                .first()
                .filter(|c| c.0 <= 1.0 / min_tps)
                .map(|c| c.2)
        });
        let chosen = if floor_chosen.is_some() {
            floor_chosen
        } else {
            match self.policy {
                PlacementPolicy::RoundRobin => {
                    // First open slot in cyclic index order from the cursor
                    // that also passes the memory check.
                    let admits = |i: &usize| -> bool {
                        let slot = &self.slots[*i];
                        slot.board
                            .admit_totals(
                                slot.jobs.len() + 1,
                                slot.resident_weight_bytes + job_weight,
                            )
                            .is_ok()
                    };
                    let cursor = self.rr_cursor;
                    self.index
                        .open_by_index
                        .range(cursor..)
                        .chain(self.index.open_by_index.range(..cursor))
                        .copied()
                        .find(admits)
                }
                PlacementPolicy::LeastLoaded => self
                    .index_candidates(1, job_flops, job_weight)
                    .first()
                    .map(|c| c.2),
                PlacementPolicy::FairShare => {
                    // Reserve the emptiest admissible board for tenants at
                    // or below fair share; an over-served tenant takes the
                    // next-best board when one exists.
                    let candidates = self.index_candidates(2, job_flops, job_weight);
                    let skip_reserved = candidates.len() >= 2 && self.over_fair_share(job.tenant);
                    candidates.get(usize::from(skip_reserved)).map(|c| c.2)
                }
            }
        };
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            chosen,
            self.place_linear(job.tenant, job_flops, job_weight, floor),
            "load-index placement diverged from the linear scan ({})",
            self.policy
        );
        let index = chosen?;
        if self.policy == PlacementPolicy::RoundRobin {
            self.rr_cursor = (index + 1) % self.slots.len();
        }
        self.slots[index].push_job(job, model);
        self.job_slots.insert(job.id, index);
        self.reindex(index);
        Some(index)
    }

    /// Finds the board hosting `job_id` (an O(1) map lookup).
    pub fn board_of(&self, job_id: u64) -> Option<usize> {
        let board = self.job_slots.get(&job_id).copied();
        debug_assert_eq!(
            board,
            self.slots
                .iter()
                .position(|s| s.jobs.iter().any(|j| j.id == job_id)),
            "job map out of sync for job {job_id}"
        );
        board
    }

    /// Reschedules every dirty board — concurrently across boards (each
    /// board's search is independent; on a multi-core host rayon fans
    /// them out, on one core this degrades to a sequential loop) — and
    /// returns the decisions in slot order.
    pub fn flush_dirty(&mut self) -> Vec<BoardDecision>
    where
        M: Send,
    {
        self.slots
            .par_iter_mut()
            .map(BoardSlot::flush)
            .collect::<Vec<Option<BoardDecision>>>()
            .into_iter()
            .flatten()
            .collect()
    }

    /// Warm-loads every slot whose hardware profile has a segment in
    /// `archive`; returns the number of preloaded cache entries.
    pub fn preload_caches(&mut self, archive: &CacheArchive, capacity: usize) -> usize {
        let mut preloaded = 0usize;
        for slot in &mut self.slots {
            if let Some(cache) = archive.segment(capacity, &slot.board) {
                preloaded += cache.cache().len();
                slot.scheduler.preload_cache(cache);
            }
        }
        preloaded
    }

    /// Merges every slot's evaluation cache into `archive`, one segment
    /// per hardware profile (recency preserved within a profile;
    /// segments of profiles absent from this fleet are left alone).
    pub fn archive_caches(&self, archive: &mut CacheArchive, capacity: usize) {
        if capacity == 0 {
            return;
        }
        let mut fingerprints: Vec<u64> = self.slots.iter().map(|s| s.board.fingerprint()).collect();
        fingerprints.sort_unstable();
        fingerprints.dedup();
        for fp in fingerprints {
            let mut merged = omniboost_estimator::BoardScopedCache::new(capacity);
            let mut seen = false;
            for slot in &self.slots {
                if slot.board.fingerprint() != fp {
                    continue;
                }
                if !seen {
                    merged.begin(&slot.board);
                    seen = true;
                }
                merged.cache().absorb(slot.scheduler.eval_cache());
            }
            archive.upsert(&merged);
        }
    }

    /// Returns every board to its empty pre-trace state: resident jobs,
    /// deployments and placement cursor cleared. Evaluation caches,
    /// decision memos, scheduler counters and the active flags
    /// deliberately survive — replaying another trace on the same fleet
    /// is a warm reboot, not a new process.
    pub fn reset_jobs(&mut self) {
        for slot in &mut self.slots {
            slot.evacuate();
        }
        self.rr_cursor = 0;
        self.job_slots.clear();
        self.index = LoadIndex::default();
        for slot in &self.slots {
            self.index.insert(slot);
        }
    }
}
