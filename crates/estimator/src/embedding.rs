//! The distributed embeddings tensor `U` (§IV-A).
//!
//! Three slices (GPU, big CPU, LITTLE CPU), one row per dataset model,
//! one column per layer (zero-padded to the widest model). Each cell is
//! the *normalized* execution time of that layer on that component, from
//! kernel-level profiling (Eq. 1–3).

use omniboost_hw::{Board, Device, LayerTimeTable, NoiseModel};
use omniboost_models::DnnModel;
use omniboost_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// The design-time embedding tensor over a model dataset.
///
/// ```
/// use omniboost_estimator::EmbeddingTensor;
/// use omniboost_hw::{Board, NoiseModel};
/// use omniboost_models::zoo;
///
/// let board = Board::hikey970();
/// let emb = EmbeddingTensor::profile(&board, &zoo::build_all(), NoiseModel::none());
/// assert_eq!(emb.num_models(), 11);
/// assert_eq!(emb.max_layers(), 37);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingTensor {
    model_names: Vec<String>,
    layer_counts: Vec<usize>,
    max_layers: usize,
    /// Normalization scale: the largest profiled layer time (ms).
    scale_ms: f64,
    /// `values[device][model][layer]`, zero-padded, in `[0, 1]`.
    values: Vec<f32>,
}

impl EmbeddingTensor {
    /// Profiles every model on every device and assembles the tensor.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn profile(board: &Board, models: &[DnnModel], noise: NoiseModel) -> Self {
        assert!(!models.is_empty(), "embedding needs at least one model");
        let tables: Vec<LayerTimeTable> = models
            .iter()
            .map(|m| LayerTimeTable::profile(board, m, noise))
            .collect();
        let max_layers = tables.iter().map(LayerTimeTable::num_layers).max().unwrap();
        let scale_ms = tables
            .iter()
            .map(LayerTimeTable::max_time_ms)
            .fold(0.0f64, f64::max);
        let mut values = vec![0.0f32; Device::COUNT * models.len() * max_layers];
        for (mi, table) in tables.iter().enumerate() {
            for dev in Device::ALL {
                for l in 0..table.num_layers() {
                    let idx = (dev.index() * models.len() + mi) * max_layers + l;
                    values[idx] = (table.time_ms(dev, l) / scale_ms) as f32;
                }
            }
        }
        Self {
            model_names: models.iter().map(|m| m.name().to_owned()).collect(),
            layer_counts: models.iter().map(DnnModel::num_layers).collect(),
            max_layers,
            scale_ms,
            values,
        }
    }

    /// Number of dataset models (tensor rows).
    pub fn num_models(&self) -> usize {
        self.model_names.len()
    }

    /// Column count (widest model's layer count).
    pub fn max_layers(&self) -> usize {
        self.max_layers
    }

    /// The normalization scale in milliseconds.
    pub fn scale_ms(&self) -> f64 {
        self.scale_ms
    }

    /// Row index of a model by name, if it is in the dataset.
    pub fn row_of(&self, model_name: &str) -> Option<usize> {
        self.model_names.iter().position(|n| n == model_name)
    }

    /// Name of the model in a row.
    pub fn model_name_of(&self, row: usize) -> &str {
        &self.model_names[row]
    }

    /// Flat `[device][model][layer]` value buffer (persistence support).
    pub(crate) fn raw_values(&self) -> &[f32] {
        &self.values
    }

    /// Rebuilds a tensor from persisted parts (validation is the
    /// caller's job; used by the binary loader).
    pub(crate) fn from_raw(
        model_names: Vec<String>,
        layer_counts: Vec<usize>,
        max_layers: usize,
        scale_ms: f64,
        values: Vec<f32>,
    ) -> Self {
        Self {
            model_names,
            layer_counts,
            max_layers,
            scale_ms,
            values,
        }
    }

    /// Layer count of the model in a row.
    pub fn layer_count(&self, row: usize) -> usize {
        self.layer_counts[row]
    }

    /// Normalized cell value `U[device][row][layer]`.
    pub fn value(&self, device: Device, row: usize, layer: usize) -> f32 {
        self.values[(device.index() * self.num_models() + row) * self.max_layers + layer]
    }

    /// The full tensor as a `[3, M, L]` dense tensor (CNN-input layout).
    pub fn as_tensor(&self) -> Tensor {
        Tensor::from_vec(
            self.values.clone(),
            &[Device::COUNT, self.num_models(), self.max_layers],
        )
    }

    /// Input shape of the CNN fed by this embedding: `[3, M, L]`.
    pub fn input_shape(&self) -> [usize; 3] {
        [Device::COUNT, self.num_models(), self.max_layers]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omniboost_models::zoo;

    fn embedding() -> EmbeddingTensor {
        EmbeddingTensor::profile(&Board::hikey970(), &zoo::build_all(), NoiseModel::none())
    }

    #[test]
    fn values_are_normalized() {
        let e = embedding();
        assert!(e.values.iter().all(|v| (0.0..=1.0).contains(v)));
        // The scale element itself reaches 1.0.
        let max = e.values.iter().fold(0.0f32, |a, b| a.max(*b));
        assert!((max - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_padding_beyond_layer_count() {
        let e = embedding();
        let row = e.row_of("alexnet").unwrap();
        assert_eq!(e.layer_count(row), 11);
        for dev in Device::ALL {
            for l in 11..e.max_layers() {
                assert_eq!(e.value(dev, row, l), 0.0);
            }
        }
    }

    #[test]
    fn little_cpu_rows_dominate_gpu_rows() {
        // Same layer must cost more (normalized) on the LITTLE cluster.
        let e = embedding();
        let row = e.row_of("vgg19").unwrap();
        let gpu: f32 = (0..24).map(|l| e.value(Device::Gpu, row, l)).sum();
        let little: f32 = (0..24).map(|l| e.value(Device::LittleCpu, row, l)).sum();
        assert!(little > gpu);
    }

    #[test]
    fn unknown_model_has_no_row() {
        assert_eq!(embedding().row_of("nonexistent"), None);
    }

    #[test]
    fn as_tensor_shape_matches() {
        let e = embedding();
        assert_eq!(e.as_tensor().shape(), &[3, 11, 37]);
    }
}
