//! The trained CNN estimator wrapped as a [`ThroughputModel`] — the
//! "ranking mechanism" half of OmniBoost (§IV).

use crate::dataset::Dataset;
use crate::embedding::EmbeddingTensor;
use crate::mask::MaskTensor;
use crate::model::EstimatorNet;
use crate::preprocess::TargetTransform;
use crate::train::{train, TrainConfig, TrainHistory};
use omniboost_hw::{Board, HwError, Mapping, ThroughputModel, ThroughputReport, Workload};
use omniboost_tensor::Module;
use parking_lot::Mutex;

/// A trained throughput estimator: embedding tensor + CNN + target
/// transform.
///
/// Interior mutability (a mutex around the network) lets the estimator be
/// queried through `&self`, matching the [`ThroughputModel`] trait that
/// oracles also implement; the CNN caches activations during `forward`,
/// hence the lock.
pub struct CnnEstimator {
    embedding: EmbeddingTensor,
    net: Mutex<EstimatorNet>,
    transform: TargetTransform,
    /// Clamp predictions by the first-principles fair-sharing bound
    /// derived from the embedding (see [`crate::bound`]). On by default:
    /// it protects the argmax search from exploiting the network's
    /// over-estimates. Disable for the pure-CNN ablation.
    clamp_to_feasible: bool,
}

impl CnnEstimator {
    /// Trains an estimator on a generated dataset (design-time flow of
    /// Fig. 2, steps 1–3).
    pub fn train(_board: &Board, dataset: &Dataset, config: &TrainConfig) -> (Self, TrainHistory) {
        let (net, transform, history) = train(dataset, config);
        (
            Self {
                embedding: dataset.embedding.clone(),
                net: Mutex::new(net),
                transform,
                clamp_to_feasible: true,
            },
            history,
        )
    }

    /// Wraps pre-trained pieces (used by tests and ablations).
    pub fn from_parts(
        embedding: EmbeddingTensor,
        net: EstimatorNet,
        transform: TargetTransform,
    ) -> Self {
        Self {
            embedding,
            net: Mutex::new(net),
            transform,
            clamp_to_feasible: true,
        }
    }

    /// Enables or disables the feasibility clamp (enabled by default).
    #[must_use]
    pub fn with_feasibility_clamp(mut self, enabled: bool) -> Self {
        self.clamp_to_feasible = enabled;
        self
    }

    /// The design-time embedding tensor.
    pub fn embedding(&self) -> &EmbeddingTensor {
        &self.embedding
    }

    /// The CNN's activation family.
    pub fn activation(&self) -> crate::model::ActivationKind {
        self.net.lock().activation()
    }

    /// Snapshot of the CNN's parameter tensors (persistence support).
    pub(crate) fn export_net_params(&self) -> Vec<omniboost_tensor::Tensor> {
        omniboost_tensor::export_params(&mut *self.net.lock())
    }

    /// The fitted transform's flat representation (persistence support).
    pub(crate) fn transform_arrays(&self) -> Vec<Vec<f32>> {
        self.transform.arrays().iter().map(|a| a.to_vec()).collect()
    }

    /// Rebuilds an estimator from persisted parts, validating shapes.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rebuild(
        model_names: Vec<String>,
        layer_counts: Vec<usize>,
        max_layers: usize,
        scale_ms: f64,
        values: Vec<f32>,
        transform_flat: Vec<f32>,
        activation: crate::model::ActivationKind,
        snapshot: Vec<omniboost_tensor::Tensor>,
    ) -> Result<Self, crate::io::LoadError> {
        use crate::io::LoadError;
        let num_models = model_names.len();
        if layer_counts.len() != num_models {
            return Err(LoadError::Corrupt("layer count table"));
        }
        let embedding =
            EmbeddingTensor::from_raw(model_names, layer_counts, max_layers, scale_ms, values);
        // Exactly 4 triples: anything else is a truncated/garbled blob.
        // Without this guard, `chunks(3)` would panic on a ragged final
        // chunk (`copy_from_slice`) or silently zero-fill missing rows.
        if transform_flat.len() != 12 {
            return Err(LoadError::Corrupt("target transform"));
        }
        let mut arrays = [[0.0f32; 3]; 4];
        for (i, chunk) in transform_flat.chunks(3).enumerate().take(4) {
            arrays[i].copy_from_slice(chunk);
        }
        let transform = TargetTransform::from_arrays(arrays);
        let mut net = crate::model::EstimatorNet::new(num_models, max_layers, activation, 0);
        {
            let mut params = net.params_mut();
            if params.len() != snapshot.len() {
                return Err(LoadError::Corrupt("parameter count"));
            }
            for (p, s) in params.iter_mut().zip(&snapshot) {
                if p.value.shape() != s.shape() {
                    return Err(LoadError::Corrupt("parameter shape"));
                }
            }
        }
        omniboost_tensor::import_params(&mut net, &snapshot);
        Ok(Self {
            embedding,
            net: Mutex::new(net),
            transform,
            clamp_to_feasible: true,
        })
    }

    /// Raw per-device throughput attribution prediction (denormalized).
    ///
    /// # Errors
    ///
    /// [`HwError::UnknownModel`] if the workload contains a model that was
    /// not profiled into the embedding.
    pub fn predict(&self, workload: &Workload, mapping: &Mapping) -> Result<[f64; 3], HwError> {
        mapping.validate(workload)?;
        let mask = MaskTensor::build(&self.embedding, workload, mapping)
            .map_err(|e| HwError::UnknownModel(e.0))?;
        let input = mask.apply(&self.embedding);
        // Inference-mode forward: no per-layer gradient caches on the
        // serving path.
        let norm = self.net.lock().predict(&input);
        let bound = crate::bound::FeasibilityBound::new(&self.embedding);
        Ok(self.postprocess(norm, workload, mapping, &bound))
    }

    /// Predicted scalar objective `T` (the sum of the three outputs — see
    /// the crate docs for the attribution convention).
    ///
    /// # Errors
    ///
    /// Same as [`CnnEstimator::predict`].
    pub fn predict_average(&self, workload: &Workload, mapping: &Mapping) -> Result<f64, HwError> {
        Ok(self.predict(workload, mapping)?.iter().sum())
    }

    /// Denormalizes and (optionally) feasibility-blends one raw network
    /// output triple — the shared tail of [`CnnEstimator::predict`] and
    /// [`CnnEstimator::predict_batch`].
    fn postprocess(
        &self,
        norm: [f32; 3],
        workload: &Workload,
        mapping: &Mapping,
        bound: &crate::bound::FeasibilityBound<'_>,
    ) -> [f64; 3] {
        // The network is trained in normalized target space; clamp into
        // the unit interval before inverting, mirroring training.
        let clamped = norm.map(|v| v.clamp(0.0, 1.0));
        let raw = self.transform.invert(clamped);
        let mut out = raw.map(|v| f64::from(v.max(0.0)));
        if self.clamp_to_feasible {
            let t_hat: f64 = out.iter().sum();
            if t_hat > 0.0 {
                if let Some(ub) = bound.average_upper_bound(workload, mapping) {
                    // Shrink toward the feasibility bound: the final
                    // score is the geometric mean of the (bounded) CNN
                    // prediction and the first-principles bound. The
                    // bound contributes a physically sound ranking the
                    // network cannot hallucinate away; the network
                    // contributes the measured contention behaviour the
                    // bound cannot see. Pure-CNN remains available via
                    // `with_feasibility_clamp(false)`.
                    let clamped = t_hat.min(ub);
                    let blended = (clamped * ub).sqrt();
                    let scale = blended / t_hat;
                    for v in &mut out {
                        *v *= scale;
                    }
                }
            }
        }
        out
    }

    /// Batched raw per-device prediction: one masked-input build per
    /// mapping, then a **single minibatched CNN forward** for the whole
    /// batch instead of `B` mutex-guarded passes.
    ///
    /// Element `i` equals `self.predict(workload, &mappings[i])` (the
    /// network treats batch rows independently); invalid mappings error
    /// individually without failing the rest of the batch.
    pub fn predict_batch(
        &self,
        workload: &Workload,
        mappings: &[Mapping],
    ) -> Vec<Result<[f64; 3], HwError>> {
        let mut out: Vec<Option<Result<[f64; 3], HwError>>> = Vec::with_capacity(mappings.len());
        let mut inputs = Vec::with_capacity(mappings.len());
        let mut live: Vec<usize> = Vec::with_capacity(mappings.len());
        for (i, mapping) in mappings.iter().enumerate() {
            let prepared = mapping.validate(workload).and_then(|()| {
                MaskTensor::build(&self.embedding, workload, mapping)
                    .map_err(|e| HwError::UnknownModel(e.0))
            });
            match prepared {
                Ok(mask) => {
                    inputs.push(mask.apply(&self.embedding));
                    live.push(i);
                    out.push(None);
                }
                Err(e) => out.push(Some(Err(e))),
            }
        }
        // One lock acquisition and one forward pass for the whole batch.
        let norms = self.net.lock().predict_batch(&inputs);
        let bound = crate::bound::FeasibilityBound::new(&self.embedding);
        for (i, norm) in live.into_iter().zip(norms) {
            out[i] = Some(Ok(self.postprocess(norm, workload, &mappings[i], &bound)));
        }
        out.into_iter()
            .map(|slot| slot.expect("every batch slot is filled"))
            .collect()
    }
}

impl ThroughputModel for CnnEstimator {
    /// Evaluates a mapping with one CNN forward pass.
    ///
    /// The estimator predicts aggregate per-device attribution, not
    /// individual DNN rates, so `per_dnn` is filled with the predicted
    /// average (every DNN gets `T`), keeping `report.average == T̂`.
    fn evaluate(
        &self,
        workload: &Workload,
        mapping: &Mapping,
    ) -> Result<ThroughputReport, HwError> {
        let per_device_pred = self.predict(workload, mapping)?;
        let t_hat: f64 = per_device_pred.iter().sum();
        Ok(ThroughputReport::new(
            vec![t_hat; workload.len()],
            per_device_pred,
        ))
    }

    /// Scores the whole batch with **one** minibatched CNN forward pass
    /// (one mutex acquisition total, instead of one per mapping), then
    /// assembles per-mapping reports exactly as the scalar path does.
    fn evaluate_batch(
        &self,
        workload: &Workload,
        mappings: &[Mapping],
    ) -> Vec<Result<ThroughputReport, HwError>> {
        self.predict_batch(workload, mappings)
            .into_iter()
            .map(|res| {
                res.map(|per_device_pred| {
                    let t_hat: f64 = per_device_pred.iter().sum();
                    ThroughputReport::new(vec![t_hat; workload.len()], per_device_pred)
                })
            })
            .collect()
    }

    fn model_name(&self) -> &str {
        "cnn-estimator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;
    use crate::metrics::mean_absolute_error;
    use omniboost_hw::Device;
    use omniboost_models::ModelId;
    use rand::SeedableRng;

    fn trained() -> (Board, CnnEstimator) {
        let board = Board::hikey970();
        let dataset = DatasetConfig {
            num_workloads: 40,
            threads: 4,
            ..DatasetConfig::default()
        }
        .generate(&board);
        let config = TrainConfig {
            epochs: 12,
            batch_size: 8,
            ..TrainConfig::default()
        };
        let (est, _) = CnnEstimator::train(&board, &dataset, &config);
        (board, est)
    }

    #[test]
    fn predicts_nonnegative_finite_throughput() {
        let (_, est) = trained();
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let m = Mapping::all_on(&w, Device::Gpu);
        let p = est.predict(&w, &m).unwrap();
        assert!(p.iter().all(|v| v.is_finite() && *v >= 0.0));
        let r = est.evaluate(&w, &m).unwrap();
        assert!((r.average - p.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn evaluate_batch_matches_scalar_evaluate() {
        // Batched-vs-scalar equivalence: one minibatched forward must
        // reproduce N scalar evaluations within 1e-9 (they are in fact
        // bitwise equal — the CNN treats batch rows independently).
        let (_, est) = trained();
        let w = Workload::from_ids([ModelId::Vgg19, ModelId::ResNet50, ModelId::AlexNet]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut mappings: Vec<Mapping> =
            (0..12).map(|_| Mapping::random(&w, 3, &mut rng)).collect();
        // Duplicates must not confuse the batch path.
        mappings.push(mappings[0].clone());
        let batch = est.evaluate_batch(&w, &mappings);
        assert_eq!(batch.len(), mappings.len());
        for (m, b) in mappings.iter().zip(batch) {
            let scalar = est.evaluate(&w, m).unwrap();
            let batched = b.unwrap();
            assert!((scalar.average - batched.average).abs() < 1e-9);
            for (s, q) in scalar.per_device.iter().zip(batched.per_device) {
                assert!((s - q).abs() < 1e-9, "{s} vs {q}");
            }
            assert_eq!(scalar.per_dnn.len(), batched.per_dnn.len());
        }
    }

    #[test]
    fn evaluate_batch_reports_errors_individually() {
        let (_, est) = trained();
        let known = Workload::from_ids([ModelId::AlexNet, ModelId::MobileNet]);
        let good = Mapping::all_on(&known, Device::Gpu);
        // A mapping with the wrong shape errors without sinking the batch.
        let bad = Mapping::new(vec![vec![Device::Gpu; 2], vec![Device::Gpu; 2]]);
        let out = est.evaluate_batch(&known, &[good.clone(), bad, good]);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
        assert!(out[2].is_ok());
    }

    #[test]
    fn predict_batch_empty_is_empty() {
        let (_, est) = trained();
        let w = Workload::from_ids([ModelId::AlexNet]);
        assert!(est.predict_batch(&w, &[]).is_empty());
    }

    #[test]
    fn unknown_model_is_reported() {
        let (_, est) = trained();
        let custom =
            omniboost_models::DnnModelBuilder::new(omniboost_models::TensorShape::new(3, 32, 32))
                .conv("c", 8, 3, 1, 1)
                .build("mystery")
                .unwrap();
        let w = Workload::new(vec![custom]);
        let m = Mapping::all_on(&w, Device::Gpu);
        assert!(matches!(
            est.predict(&w, &m),
            Err(HwError::UnknownModel(name)) if name == "mystery"
        ));
    }

    #[test]
    fn short_training_beats_mean_predictor_on_train_set() {
        // Even a briefly-trained estimator should track targets better
        // than predicting the global mean everywhere.
        let board = Board::hikey970();
        let dataset = DatasetConfig {
            num_workloads: 40,
            threads: 4,
            ..DatasetConfig::default()
        }
        .generate(&board);
        let config = TrainConfig {
            epochs: 20,
            batch_size: 8,
            ..TrainConfig::default()
        };
        let (est, _) = CnnEstimator::train(&board, &dataset, &config);
        let (train_set, _) = dataset.split(0.8);
        let truths: Vec<f64> = train_set
            .iter()
            .map(|s| s.target.iter().sum::<f32>() as f64)
            .collect();
        let mean_t: f64 = truths.iter().sum::<f64>() / truths.len() as f64;

        // Re-predict through the full pipeline for a handful of samples.
        let mut est_err = Vec::new();
        let mut mean_err = Vec::new();
        for (i, s) in train_set.iter().enumerate().take(12) {
            // The sample does not retain its mapping, so run the network
            // directly on the stored masked input.
            let out = est.net.lock().predict(&s.input);
            let clamped = out.map(|v| v.clamp(0.0, 1.0));
            let raw = est.transform.invert(clamped);
            let t_hat: f64 = raw.iter().map(|v| f64::from(v.max(0.0))).sum();
            est_err.push((t_hat - truths[i]).abs());
            mean_err.push((mean_t - truths[i]).abs());
        }
        let e = mean_absolute_error(&est_err.iter().map(|_| 0.0).collect::<Vec<_>>(), &est_err);
        let m = mean_absolute_error(&mean_err.iter().map(|_| 0.0).collect::<Vec<_>>(), &mean_err);
        assert!(e <= m * 1.5, "estimator MAE {e} vs mean-predictor MAE {m}");
    }
}
