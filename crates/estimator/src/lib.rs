//! # omniboost-estimator
//!
//! The throughput-estimation stack of OmniBoost (DAC 2023): the
//! distributed embeddings tensor (§IV-A), workload mask tensors, the
//! lightweight ResNet9-style CNN with ~20k trainable parameters and GELU
//! activations (§IV-B), plus dataset generation and the training loop
//! that reproduces Fig. 4.
//!
//! ## Data flow (Fig. 3 of the paper)
//!
//! 1. The [`EmbeddingTensor`] holds the normalized execution time of every
//!    layer of every dataset model on every computing component — built
//!    once at design time from kernel profiling.
//! 2. A queried workload mapping is turned into a [`MaskTensor`]; its
//!    element-wise product with the embedding tensor is the CNN input.
//! 3. The [`EstimatorNet`] CNN maps that masked tensor to three outputs —
//!    the normalized per-component throughput attribution, whose sum is
//!    the paper's average-throughput objective `T`.
//!
//! For serving recurring traffic, [`EvalCache`]/[`CachedEstimator`]
//! (module [`cache`]) add a bounded, sharded, cross-decision LRU over
//! evaluator reports keyed on `(workload fingerprint, mapping)`, so
//! repeat queries skip the CNN forward entirely.
//!
//! ## Output attribution convention
//!
//! The paper trains the three outputs as "the average throughput for each
//! computing component". We make that precise: each DNN's measured
//! throughput is attributed to devices proportionally to the fraction of
//! its layers they host, then divided by the DNN count. With this
//! convention the three targets **sum exactly to `T`**, so a single
//! forward pass predicts both the per-component breakdown and the scalar
//! objective the MCTS maximizes.
//!
//! ```no_run
//! use omniboost_estimator::{CnnEstimator, DatasetConfig, TrainConfig};
//! use omniboost_hw::Board;
//!
//! let board = Board::hikey970();
//! let dataset = DatasetConfig::default().generate(&board);
//! let (estimator, history) = CnnEstimator::train(&board, &dataset, &TrainConfig::default());
//! assert!(history.final_validation_loss() < history.validation[0]);
//! # let _ = estimator;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod board_cache;
pub mod bound;
pub mod cache;
mod dataset;
mod embedding;
mod estimator;
pub mod io;
mod mask;
mod metrics;
mod model;
mod preprocess;
mod train;

pub use board_cache::{BoardScopedCache, CacheArchive, DecisionScope};
pub use bound::FeasibilityBound;
pub use cache::{CachedEstimator, EvalCache};
pub use dataset::{Dataset, DatasetConfig, Sample};
pub use embedding::EmbeddingTensor;
pub use estimator::CnnEstimator;
pub use io::LoadError;
pub use mask::{MaskTensor, UnknownModelError};
pub use metrics::{mean_absolute_error, mean_absolute_percentage_error, r_squared};
pub use model::{ActivationKind, EstimatorNet};
pub use omniboost_hw::EvalCacheStats;
pub use preprocess::TargetTransform;
pub use train::{LossKind, TrainConfig, TrainHistory};
