//! The ResNet9-style CNN estimator network (§IV-B).
//!
//! The paper's estimator is "a lightweight ResNet9-based CNN performance
//! estimator with only 20,044 trainable parameters", GELU activations and
//! a 3-neuron linear output head (no output activation — it solves a
//! regression problem). Our instantiation follows the same recipe at the
//! same parameter budget (20,003 parameters; the 41-parameter difference
//! comes from the paper not specifying exact channel widths).

use omniboost_tensor::{
    Conv2d, Flatten, Gelu, GlobalAvgPool, Linear, MaxPool2d, Module, Param, Relu, ResidualBlock,
    Sequential, Tensor,
};

/// Activation family used inside the network — GELU in the paper, ReLU
/// kept for the convergence ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationKind {
    /// Gaussian Error Linear Unit (the paper's choice).
    Gelu,
    /// Rectified Linear Unit (the original ResNet9 activation).
    Relu,
}

/// The CNN that maps a masked embedding tensor `[N, 3, M, L]` to three
/// per-component throughput outputs `[N, 3]`.
///
/// Architecture (channels): 3 → conv(8) → conv(16) → pool →
/// residual(16) → conv(24) → pool → residual(24) → GAP → linear(3).
///
/// ```
/// use omniboost_estimator::{ActivationKind, EstimatorNet};
/// use omniboost_tensor::{Module, Tensor};
///
/// let mut net = EstimatorNet::new(11, 37, ActivationKind::Gelu, 42);
/// let y = net.forward(&Tensor::randn(&[2, 3, 11, 37], 1));
/// assert_eq!(y.shape(), &[2, 3]);
/// assert_eq!(net.num_params(), 20_003);
/// ```
pub struct EstimatorNet {
    net: Sequential,
    num_models: usize,
    max_layers: usize,
    activation: ActivationKind,
    training: bool,
}

fn act(kind: ActivationKind) -> Box<dyn Module + Send> {
    match kind {
        ActivationKind::Gelu => Box::new(Gelu::new()),
        ActivationKind::Relu => Box::new(Relu::new()),
    }
}

/// Wrapper making `Box<dyn Module + Send>` pushable into [`Sequential`].
struct Boxed(Box<dyn Module + Send>);

impl Module for Boxed {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.0.forward(input)
    }
    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        self.0.backward(grad_output)
    }
    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.0.params_mut()
    }
    fn set_training(&mut self, training: bool) {
        self.0.set_training(training);
    }
    fn set_gemm_backward(&mut self, enabled: bool) {
        self.0.set_gemm_backward(enabled);
    }
}

impl EstimatorNet {
    /// Builds the network for an `M × L` embedding grid.
    ///
    /// # Panics
    ///
    /// Panics if the grid is too small to survive two 2× poolings.
    pub fn new(
        num_models: usize,
        max_layers: usize,
        activation: ActivationKind,
        seed: u64,
    ) -> Self {
        assert!(
            num_models >= 4 && max_layers >= 4,
            "embedding grid too small for the two-pool architecture"
        );
        let net = Sequential::new()
            .push(Conv2d::new(3, 8, 3, 1, 1, seed))
            .push(Boxed(act(activation)))
            .push(Conv2d::new(8, 16, 3, 1, 1, seed.wrapping_add(1)))
            .push(Boxed(act(activation)))
            .push(MaxPool2d::new(2))
            .push(ResidualBlock::new(16, seed.wrapping_add(2)))
            .push(Conv2d::new(16, 24, 3, 1, 1, seed.wrapping_add(4)))
            .push(Boxed(act(activation)))
            .push(MaxPool2d::new(2))
            .push(ResidualBlock::new(24, seed.wrapping_add(5)))
            .push(GlobalAvgPool::new())
            .push(Flatten::new())
            // Regression head: 3 outputs, no activation (§IV-B).
            .push(Linear::new(24, 3, seed.wrapping_add(7)));
        Self {
            net,
            num_models,
            max_layers,
            activation,
            training: true,
        }
    }

    /// Embedding rows this network expects.
    pub fn num_models(&self) -> usize {
        self.num_models
    }

    /// Embedding columns this network expects.
    pub fn max_layers(&self) -> usize {
        self.max_layers
    }

    /// The activation family in use.
    pub fn activation(&self) -> ActivationKind {
        self.activation
    }

    /// Convenience single-sample inference: `[3, M, L]` (or `[1, 3, M, L]`)
    /// in, three outputs out. Runs in inference mode — no layer caches
    /// activations, so the serving path pays zero gradient-cache clones.
    pub fn predict(&mut self, input: &Tensor) -> [f32; 3] {
        let was_training = self.training;
        self.set_training(false);
        let y = if input.shape().len() == 3 {
            self.forward(&input.reshape(&[1, 3, self.num_models, self.max_layers]))
        } else {
            self.forward(input)
        };
        self.set_training(was_training);
        [y.data()[0], y.data()[1], y.data()[2]]
    }

    /// True minibatch inference: stacks `B` per-mapping inputs (each
    /// `[3, M, L]` or `[1, 3, M, L]`) into one `[B, 3, M, L]` tensor and
    /// runs a single forward pass instead of `B` separate ones.
    ///
    /// Every layer in this network treats batch items independently, so
    /// the outputs are bitwise identical to `B` calls of
    /// [`EstimatorNet::predict`]; one pass simply amortizes the per-call
    /// module dispatch and activation allocations — the overhead §V-B's
    /// 500-query decision loop pays per iteration on the scalar path.
    ///
    /// Runs in inference mode: no layer caches activations for a
    /// backward that never comes, so serving a batch no longer pays one
    /// full input clone per conv/activation layer.
    ///
    /// # Panics
    ///
    /// Panics if any input does not match the network's `[3, M, L]` grid.
    pub fn predict_batch(&mut self, inputs: &[Tensor]) -> Vec<[f32; 3]> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let (m, l) = (self.num_models, self.max_layers);
        let per = 3 * m * l;
        let mut data = Vec::with_capacity(inputs.len() * per);
        for t in inputs {
            assert!(
                t.data().len() == per && (t.shape() == [3, m, l] || t.shape() == [1, 3, m, l]),
                "batch input grid mismatch"
            );
            data.extend_from_slice(t.data());
        }
        let x = Tensor::from_vec(data, &[inputs.len(), 3, m, l]);
        let was_training = self.training;
        self.set_training(false);
        let y = self.forward(&x);
        self.set_training(was_training);
        let out = y.data();
        (0..inputs.len())
            .map(|i| [out[3 * i], out[3 * i + 1], out[3 * i + 2]])
            .collect()
    }
}

impl Module for EstimatorNet {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(
            &input.shape()[1..],
            &[3, self.num_models, self.max_layers],
            "input grid mismatch"
        );
        self.net.forward(input)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        self.net.backward(grad_output)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.net.params_mut()
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
        self.net.set_training(training);
    }

    fn set_gemm_backward(&mut self, enabled: bool) {
        self.net.set_gemm_backward(enabled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_budget_matches_paper() {
        let mut net = EstimatorNet::new(11, 37, ActivationKind::Gelu, 1);
        let n = net.num_params();
        // Paper: 20,044. Ours: 20,003 (<0.3% off; exact widths unspecified).
        assert_eq!(n, 20_003);
        assert!((19_500..=20_500).contains(&n));
    }

    #[test]
    fn forward_shape_is_three_outputs() {
        let mut net = EstimatorNet::new(11, 37, ActivationKind::Gelu, 2);
        let y = net.forward(&Tensor::randn(&[5, 3, 11, 37], 3));
        assert_eq!(y.shape(), &[5, 3]);
    }

    #[test]
    fn relu_variant_same_param_count() {
        let mut g = EstimatorNet::new(11, 37, ActivationKind::Gelu, 1);
        let mut r = EstimatorNet::new(11, 37, ActivationKind::Relu, 1);
        assert_eq!(g.num_params(), r.num_params());
    }

    #[test]
    fn backward_produces_input_gradient() {
        let mut net = EstimatorNet::new(11, 37, ActivationKind::Gelu, 4);
        let x = Tensor::randn(&[1, 3, 11, 37], 5);
        let y = net.forward(&x);
        let g = net.backward(&Tensor::full(y.shape(), 1.0));
        assert_eq!(g.shape(), x.shape());
        assert!(g.max_abs() > 0.0);
    }

    #[test]
    fn predict_accepts_unbatched_input() {
        let mut net = EstimatorNet::new(11, 37, ActivationKind::Gelu, 6);
        let out = net.predict(&Tensor::randn(&[3, 11, 37], 7));
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "input grid mismatch")]
    fn wrong_grid_is_rejected() {
        let mut net = EstimatorNet::new(11, 37, ActivationKind::Gelu, 1);
        let _ = net.forward(&Tensor::zeros(&[1, 3, 5, 5]));
    }

    /// The serving path must not keep gradient caches: after an
    /// inference-mode batch, there is nothing for backward to consume.
    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn predict_batch_leaves_no_gradient_caches() {
        let mut net = EstimatorNet::new(11, 37, ActivationKind::Gelu, 6);
        let inputs: Vec<Tensor> = (0..3).map(|i| Tensor::randn(&[3, 11, 37], i)).collect();
        let _ = net.predict_batch(&inputs);
        let _ = net.backward(&Tensor::zeros(&[3, 3]));
    }

    /// Inference mode changes bookkeeping, never values, and training
    /// mode is restored afterwards.
    #[test]
    fn predict_matches_training_forward_values() {
        let mut net = EstimatorNet::new(11, 37, ActivationKind::Gelu, 7);
        let x = Tensor::randn(&[1, 3, 11, 37], 8);
        let y = net.forward(&x);
        let p = net.predict(&x);
        assert_eq!([y.data()[0], y.data()[1], y.data()[2]], p);
        // Training still works after a predict call (mode restored).
        let y2 = net.forward(&x);
        let g = net.backward(&Tensor::full(y2.shape(), 1.0));
        assert!(g.max_abs() > 0.0);
    }
}
