//! Cross-decision evaluation cache: a bounded, sharded LRU over
//! `(workload fingerprint, mapping) → ThroughputReport`.
//!
//! The per-decision reward memo inside the scheduling environment and the
//! runtime's decision memo both die with their scope: a new `decide` call
//! re-queries the estimator for every mapping it visits, even mappings
//! scored seconds ago for the same recurring workload. [`EvalCache`]
//! closes that gap — it outlives individual decisions, so recurring
//! traffic (the serving scenario) amortizes estimator work across
//! queries. [`CachedEstimator`] wraps any [`ThroughputModel`]
//! (the CNN estimator in production, oracles in ablations) and threads
//! every `evaluate`/`evaluate_batch` through the cache.
//!
//! Design:
//!
//! * **Keyed on content, not identity** — [`Workload::fingerprint`]
//!   (names + layer counts + weight bytes) plus the full [`Mapping`], so
//!   two equal workload values share entries and distinct architectures
//!   under one name do not collide.
//! * **Sharded** — the key hash picks one of [`NUM_SHARDS`] independent
//!   mutex-guarded LRU shards, so root-parallel search trees do not
//!   serialize on a single cache lock.
//! * **Bounded** — each shard holds at most `ceil(capacity / NUM_SHARDS)`
//!   entries with least-recently-*used* eviction (lookup hits refresh
//!   recency), implemented as an index-linked list over a slab: O(1)
//!   lookup, insert and eviction, no unsafe.
//! * **Observable** — hit/miss/eviction counters ([`EvalCacheStats`])
//!   surface on `RunOutcome` next to the runtime memo stats.
//!
//! Only successful reports are cached: errors are cheap to recompute,
//! workload-shape errors would be cached forever, and the paper's
//! evaluators are deterministic, so a cached report is exactly what a
//! fresh query would return.

use omniboost_hw::{EvalCacheStats, HwError, Mapping, ThroughputModel, ThroughputReport, Workload};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independent LRU shards (power of two, masks cheaply).
const NUM_SHARDS: usize = 8;

/// Sentinel index for "no entry" in the intrusive LRU list.
const NIL: usize = usize::MAX;

type Key = (u64, Mapping);

/// One slab slot of a shard's LRU list.
struct Entry {
    key: Key,
    value: ThroughputReport,
    /// Towards more-recently-used.
    prev: usize,
    /// Towards less-recently-used.
    next: usize,
}

/// One mutex-guarded LRU shard: slab + index map + recency list.
struct Shard {
    map: HashMap<Key, usize>,
    slab: Vec<Entry>,
    /// Most-recently-used entry, or [`NIL`] when empty.
    head: usize,
    /// Least-recently-used entry, or [`NIL`] when empty.
    tail: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Unlinks `i` from the recency list (it must be linked).
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    /// Links `i` at the most-recently-used end.
    fn link_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &Key) -> Option<ThroughputReport> {
        let i = *self.map.get(key)?;
        self.unlink(i);
        self.link_front(i);
        Some(self.slab[i].value.clone())
    }

    /// Inserts (or refreshes) an entry; returns whether an eviction
    /// happened to make room.
    fn insert(&mut self, key: Key, value: ThroughputReport) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            self.unlink(i);
            self.link_front(i);
            return false;
        }
        let mut evicted = false;
        let slot = if self.slab.len() < self.capacity {
            self.slab.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        } else {
            // Recycle the least-recently-used slot in place.
            let lru = self.tail;
            self.unlink(lru);
            let old_key = std::mem::replace(&mut self.slab[lru].key, key.clone());
            self.map.remove(&old_key);
            self.slab[lru].value = value;
            evicted = true;
            lru
        };
        self.map.insert(key, slot);
        self.link_front(slot);
        evicted
    }
}

/// Bounded, sharded, cross-decision LRU cache of evaluator reports.
///
/// Thread-safe behind `&self`; see the module docs for the design.
/// A `capacity` of 0 disables the cache entirely (every lookup misses
/// without being counted, nothing is stored) so a single code path can
/// serve both cached and uncached configurations.
pub struct EvalCache {
    shards: Vec<Mutex<Shard>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for EvalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl EvalCache {
    /// Creates a cache holding at most `capacity` reports (rounded up to
    /// a multiple of the shard count; 0 disables caching).
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(NUM_SHARDS);
        let shards = (0..NUM_SHARDS)
            .map(|_| Mutex::new(Shard::new(per_shard)))
            .collect();
        Self {
            shards,
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Configured capacity bound (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the cache is a no-op (capacity 0).
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Number of cached reports across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether no reports are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative hit/miss/eviction counters.
    pub fn stats(&self) -> EvalCacheStats {
        EvalCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached report (counters are preserved). Call after
    /// retraining the wrapped estimator.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.map.clear();
            s.slab.clear();
            s.head = NIL;
            s.tail = NIL;
        }
    }

    /// FNV-1a over the key picks the shard — independent from the
    /// `HashMap` hasher inside the shard, and stable across processes.
    fn shard_of(key: &Key) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = omniboost_hw::Fnv1a::default();
        key.hash(&mut h);
        (h.finish() as usize) & (NUM_SHARDS - 1)
    }

    /// Cached report for a (fingerprint, mapping) pair, refreshing its
    /// recency. Counts a hit or a miss (disabled caches count nothing).
    pub fn get(&self, fingerprint: u64, mapping: &Mapping) -> Option<ThroughputReport> {
        if self.is_disabled() {
            return None;
        }
        // Cloned key for lookup: Mapping is the key's owned half and
        // shard maps are keyed by value. One clone per query is far
        // cheaper than the evaluator call a hit saves.
        let key = (fingerprint, mapping.clone());
        let found = self.shards[Self::shard_of(&key)].lock().get(&key);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a report (no-op when disabled), evicting the shard's
    /// least-recently-used entry if it is full.
    pub fn insert(&self, fingerprint: u64, mapping: &Mapping, report: ThroughputReport) {
        if self.is_disabled() {
            return;
        }
        let key = (fingerprint, mapping.clone());
        let evicted = self.shards[Self::shard_of(&key)].lock().insert(key, report);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot of every cached entry, **least-recently-used first** (per
    /// shard, shards concatenated) — replaying the snapshot through
    /// [`EvalCache::insert`] reproduces the recency order, which is what
    /// persistence ([`crate::BoardScopedCache::save`]) and cache merging
    /// rely on.
    pub fn entries_lru_first(&self) -> Vec<(u64, Mapping, ThroughputReport)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let s = shard.lock();
            let mut i = s.tail;
            while i != NIL {
                let e = &s.slab[i];
                out.push((e.key.0, e.key.1.clone(), e.value.clone()));
                i = e.prev;
            }
        }
        out
    }

    /// Copies every entry of `other` into this cache (recency order
    /// preserved, capacity bound enforced by normal eviction). Used by
    /// the serving daemon to merge per-board caches before persisting.
    pub fn absorb(&self, other: &EvalCache) {
        for (fp, mapping, report) in other.entries_lru_first() {
            self.insert(fp, &mapping, report);
        }
    }
}

/// A [`ThroughputModel`] that answers repeat queries from an
/// [`EvalCache`] and forwards the rest to the wrapped model.
///
/// Borrowing both halves keeps the wrapper free to construct per
/// decision while the cache (and its contents) persist across decisions:
///
/// ```
/// use omniboost_estimator::{CachedEstimator, EvalCache};
/// use omniboost_hw::{AnalyticModel, Board, Device, Mapping, ThroughputModel, Workload};
/// use omniboost_models::ModelId;
///
/// let model = AnalyticModel::new(Board::hikey970());
/// let cache = EvalCache::new(1024);
/// let cached = CachedEstimator::new(&model, &cache);
/// let w = Workload::from_ids([ModelId::AlexNet]);
/// let m = Mapping::all_on(&w, Device::Gpu);
/// let first = cached.evaluate(&w, &m)?;          // miss: queries the model
/// let second = cached.evaluate(&w, &m)?;         // hit: answered from cache
/// assert_eq!(first, second);
/// assert_eq!(cache.stats().hits, 1);
/// # Ok::<(), omniboost_hw::HwError>(())
/// ```
pub struct CachedEstimator<'c, M> {
    inner: M,
    cache: &'c EvalCache,
}

impl<'c, M: ThroughputModel> CachedEstimator<'c, M> {
    /// Wraps a model with a cache.
    pub fn new(inner: M, cache: &'c EvalCache) -> Self {
        Self { inner, cache }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The backing cache.
    pub fn cache(&self) -> &EvalCache {
        self.cache
    }
}

impl<M: ThroughputModel> ThroughputModel for CachedEstimator<'_, M> {
    fn evaluate(
        &self,
        workload: &Workload,
        mapping: &Mapping,
    ) -> Result<ThroughputReport, HwError> {
        let fp = workload.fingerprint();
        if let Some(report) = self.cache.get(fp, mapping) {
            return Ok(report);
        }
        let result = self.inner.evaluate(workload, mapping);
        if let Ok(report) = &result {
            self.cache.insert(fp, mapping, report.clone());
        }
        result
    }

    /// Splits the batch into cache hits and misses, forwards the misses
    /// as **one** inner `evaluate_batch` call (preserving the wrapped
    /// model's amortization), and stores the fresh reports.
    fn evaluate_batch(
        &self,
        workload: &Workload,
        mappings: &[Mapping],
    ) -> Vec<Result<ThroughputReport, HwError>> {
        let fp = workload.fingerprint();
        let mut out: Vec<Option<Result<ThroughputReport, HwError>>> = mappings
            .iter()
            .map(|m| self.cache.get(fp, m).map(Ok))
            .collect();
        let miss_idx: Vec<usize> = (0..mappings.len()).filter(|i| out[*i].is_none()).collect();
        if !miss_idx.is_empty() {
            let miss_mappings: Vec<Mapping> =
                miss_idx.iter().map(|&i| mappings[i].clone()).collect();
            let fresh = self.inner.evaluate_batch(workload, &miss_mappings);
            for (&i, result) in miss_idx.iter().zip(fresh) {
                if let Ok(report) = &result {
                    self.cache.insert(fp, &mappings[i], report.clone());
                }
                out[i] = Some(result);
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every batch slot is filled"))
            .collect()
    }

    fn model_name(&self) -> &str {
        self.inner.model_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omniboost_hw::{AnalyticModel, Board, Device};
    use omniboost_models::ModelId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::AtomicUsize;

    /// Counts every mapping that reaches the wrapped model.
    struct Counting<M> {
        inner: M,
        queries: AtomicUsize,
    }

    impl<M> Counting<M> {
        fn new(inner: M) -> Self {
            Self {
                inner,
                queries: AtomicUsize::new(0),
            }
        }

        fn queries(&self) -> usize {
            self.queries.load(Ordering::Relaxed)
        }
    }

    impl<M: ThroughputModel> ThroughputModel for Counting<M> {
        fn evaluate(
            &self,
            workload: &Workload,
            mapping: &Mapping,
        ) -> Result<ThroughputReport, HwError> {
            self.queries.fetch_add(1, Ordering::Relaxed);
            self.inner.evaluate(workload, mapping)
        }

        fn evaluate_batch(
            &self,
            workload: &Workload,
            mappings: &[Mapping],
        ) -> Vec<Result<ThroughputReport, HwError>> {
            self.queries.fetch_add(mappings.len(), Ordering::Relaxed);
            self.inner.evaluate_batch(workload, mappings)
        }
    }

    fn setup() -> (Workload, Counting<AnalyticModel>) {
        let board = Board::hikey970();
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet]);
        (w, Counting::new(AnalyticModel::new(board)))
    }

    #[test]
    fn repeat_evaluations_hit_the_cache() {
        let (w, model) = setup();
        let cache = EvalCache::new(64);
        let cached = CachedEstimator::new(&model, &cache);
        let m = Mapping::all_on(&w, Device::Gpu);
        let a = cached.evaluate(&w, &m).unwrap();
        let b = cached.evaluate(&w, &m).unwrap();
        assert_eq!(a, b);
        assert_eq!(model.queries(), 1, "second query must not reach the model");
        assert_eq!(
            cache.stats(),
            EvalCacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn batch_path_matches_scalar_and_reuses_entries() {
        let (w, model) = setup();
        let cache = EvalCache::new(128);
        let cached = CachedEstimator::new(&model, &cache);
        let mut rng = StdRng::seed_from_u64(5);
        let mappings: Vec<Mapping> = (0..10).map(|_| Mapping::random(&w, 3, &mut rng)).collect();
        // Warm half the cache through the scalar path.
        for m in &mappings[..5] {
            cached.evaluate(&w, m).unwrap();
        }
        assert_eq!(model.queries(), 5);
        let batch = cached.evaluate_batch(&w, &mappings);
        // Only the cold half reached the model.
        assert_eq!(model.queries(), 10);
        for (m, b) in mappings.iter().zip(batch) {
            assert_eq!(model.inner.evaluate(&w, m).unwrap(), b.unwrap());
        }
    }

    #[test]
    fn batch_errors_pass_through_uncached() {
        let (w, model) = setup();
        let cache = EvalCache::new(16);
        let cached = CachedEstimator::new(&model, &cache);
        let good = Mapping::all_on(&w, Device::Gpu);
        let bad = Mapping::new(vec![vec![Device::Gpu; 2]]);
        let out = cached.evaluate_batch(&w, &[good.clone(), bad.clone()]);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
        // Errors are not cached: the bad mapping re-queries (and fails)
        // again, the good one hits.
        let before = model.queries();
        let again = cached.evaluate_batch(&w, &[good, bad]);
        assert!(again[0].is_ok());
        assert!(again[1].is_err());
        assert_eq!(model.queries(), before + 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Single-entry-per-shard capacity forces evictions quickly; use a
        // tiny capacity and verify the use-order (not insert-order) rule
        // on one shard by using one workload and probing recency.
        let (w, model) = setup();
        let cache = EvalCache::new(NUM_SHARDS); // one slot per shard
        let cached = CachedEstimator::new(&model, &cache);
        let mut rng = StdRng::seed_from_u64(9);
        // Find two mappings living on the same shard.
        let fp = w.fingerprint();
        let mut same_shard: Vec<Mapping> = Vec::new();
        while same_shard.len() < 3 {
            let m = Mapping::random(&w, 3, &mut rng);
            if (same_shard.is_empty()
                || EvalCache::shard_of(&(fp, m.clone()))
                    == EvalCache::shard_of(&(fp, same_shard[0].clone())))
                && !same_shard.contains(&m)
            {
                same_shard.push(m);
            }
        }
        let (a, b, c) = (&same_shard[0], &same_shard[1], &same_shard[2]);
        cached.evaluate(&w, a).unwrap(); // cache: [a]
        cached.evaluate(&w, b).unwrap(); // evicts a -> [b]
        assert_eq!(cache.stats().evictions, 1);
        let before = model.queries();
        cached.evaluate(&w, b).unwrap(); // hit
        assert_eq!(model.queries(), before, "b must still be cached");
        cached.evaluate(&w, c).unwrap(); // evicts b -> [c]
        cached.evaluate(&w, a).unwrap(); // miss again (was evicted first)
        assert_eq!(model.queries(), before + 2);
    }

    #[test]
    fn lru_refresh_on_hit_changes_eviction_order() {
        // Direct shard-level check of the recency rule: insert a, b;
        // touch a; insert c. The LRU is now b, not a.
        let mut shard = Shard::new(2);
        let (w, model) = setup();
        let report = model
            .inner
            .evaluate(&w, &Mapping::all_on(&w, Device::Gpu))
            .unwrap();
        let key = |i: u64| (i, Mapping::all_on(&w, Device::Gpu));
        shard.insert(key(1), report.clone());
        shard.insert(key(2), report.clone());
        assert!(shard.get(&key(1)).is_some(), "refresh 1");
        assert!(shard.insert(key(3), report.clone()), "must evict");
        assert!(shard.get(&key(1)).is_some(), "1 was refreshed, kept");
        assert!(shard.get(&key(2)).is_none(), "2 was LRU, evicted");
        assert!(shard.get(&key(3)).is_some());
    }

    #[test]
    fn capacity_zero_disables_the_cache() {
        let (w, model) = setup();
        let cache = EvalCache::new(0);
        assert!(cache.is_disabled());
        let cached = CachedEstimator::new(&model, &cache);
        let m = Mapping::all_on(&w, Device::Gpu);
        cached.evaluate(&w, &m).unwrap();
        cached.evaluate(&w, &m).unwrap();
        assert_eq!(model.queries(), 2, "disabled cache must not answer");
        assert_eq!(cache.stats(), EvalCacheStats::default());
        assert!(cache.is_empty());
    }

    #[test]
    fn distinct_workloads_do_not_collide() {
        let board = Board::hikey970();
        let model = Counting::new(AnalyticModel::new(board));
        let cache = EvalCache::new(64);
        let cached = CachedEstimator::new(&model, &cache);
        let w1 = Workload::from_ids([ModelId::AlexNet]);
        let w2 = Workload::from_ids([ModelId::MobileNet]);
        let m1 = Mapping::all_on(&w1, Device::Gpu);
        let m2 = Mapping::all_on(&w2, Device::Gpu);
        let r1 = cached.evaluate(&w1, &m1).unwrap();
        let r2 = cached.evaluate(&w2, &m2).unwrap();
        assert_ne!(r1, r2);
        // Same-shape mappings under different workloads stay separate.
        assert_eq!(cached.evaluate(&w1, &m1).unwrap(), r1);
        assert_eq!(cached.evaluate(&w2, &m2).unwrap(), r2);
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let (w, model) = setup();
        let cache = EvalCache::new(32);
        let cached = CachedEstimator::new(&model, &cache);
        let m = Mapping::all_on(&w, Device::BigCpu);
        cached.evaluate(&w, &m).unwrap();
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        cached.evaluate(&w, &m).unwrap();
        assert_eq!(model.queries(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn concurrent_access_is_safe_and_coherent() {
        let (w, model) = setup();
        let cache = EvalCache::new(256);
        let cached = CachedEstimator::new(&model, &cache);
        let mut rng = StdRng::seed_from_u64(31);
        let mappings: Vec<Mapping> = (0..16).map(|_| Mapping::random(&w, 3, &mut rng)).collect();
        let expected: Vec<ThroughputReport> = mappings
            .iter()
            .map(|m| model.inner.evaluate(&w, m).unwrap())
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for (m, want) in mappings.iter().zip(&expected) {
                        assert_eq!(&cached.evaluate(&w, m).unwrap(), want);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 64);
        assert!(stats.misses >= 16);
    }
}
