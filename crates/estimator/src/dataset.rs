//! Training-dataset generation (§V): random multi-DNN workloads with
//! random partitionings, labelled by "measuring" them on the board (our
//! discrete-event simulator).

use crate::embedding::EmbeddingTensor;
use crate::mask::MaskTensor;
use omniboost_hw::{Board, Device, Mapping, NoiseModel, ThroughputModel, Workload};
use omniboost_models::{zoo, ModelId};
use omniboost_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One labelled training example.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Masked embedding input, `[3, M, L]`.
    pub input: Tensor,
    /// Raw (unnormalized) per-device throughput attribution; the three
    /// values sum to the workload's average throughput `T`.
    pub target: [f32; 3],
    /// The models in the mix (for reporting).
    pub mix: Vec<ModelId>,
    /// Number of pipeline stages in the sampled mapping.
    pub max_stages: usize,
}

/// A generated dataset plus the embedding it was built against.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The design-time embedding tensor.
    pub embedding: EmbeddingTensor,
    /// The labelled samples.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Splits into `(train, validation)` by the given training fraction,
    /// preserving generation order (the paper uses a 400/100 split).
    pub fn split(&self, train_fraction: f64) -> (&[Sample], &[Sample]) {
        let n = ((self.samples.len() as f64) * train_fraction).round() as usize;
        let n = n.clamp(1, self.samples.len().saturating_sub(1).max(1));
        self.samples.split_at(n.min(self.samples.len()))
    }
}

/// Configuration of the random-workload generator.
///
/// Defaults follow §V: 500 workloads of 1–5 concurrent DNNs drawn from
/// the 11-model dataset, randomly partitioned across the three computing
/// components.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Number of workloads to generate.
    pub num_workloads: usize,
    /// Minimum DNNs per mix.
    pub min_dnns: usize,
    /// Maximum DNNs per mix.
    pub max_dnns: usize,
    /// Stage cap for the random partitioner (the paper's `x` = 3).
    pub max_stages: usize,
    /// Profiling measurement-noise amplitude.
    pub noise_amplitude: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for board evaluation.
    pub threads: usize,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            num_workloads: 500,
            min_dnns: 1,
            max_dnns: 5,
            max_stages: 3,
            noise_amplitude: 0.03,
            seed: 0xDAC_2023,
            threads: 4,
        }
    }
}

impl DatasetConfig {
    /// Generates the dataset against a board.
    ///
    /// Workloads that the board rejects (inadmissible mixes) are skipped
    /// and resampled, so the output always has `num_workloads` samples.
    pub fn generate(&self, board: &Board) -> Dataset {
        let models = zoo::build_all();
        let noise = NoiseModel::new(self.noise_amplitude, self.seed);
        let embedding = EmbeddingTensor::profile(board, &models, noise);
        let sim = board.simulator();

        let n = self.num_workloads;
        if n == 0 {
            return Dataset {
                embedding,
                samples: Vec::new(),
            };
        }
        let threads = self.threads.max(1).min(n);
        let mut samples: Vec<Option<Sample>> = vec![None; n];
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (ti, out_chunk) in samples.chunks_mut(chunk).enumerate() {
                let embedding = &embedding;
                let sim = &sim;
                let base = self.seed.wrapping_add(0x9E37 * (ti as u64 + 1));
                let cfg = self;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(base);
                    for slot in out_chunk.iter_mut() {
                        *slot = Some(generate_one(cfg, sim, embedding, &mut rng));
                    }
                });
            }
        });

        Dataset {
            embedding,
            samples: samples.into_iter().map(|s| s.expect("filled")).collect(),
        }
    }
}

fn generate_one(
    cfg: &DatasetConfig,
    sim: &omniboost_hw::DesSimulator,
    embedding: &EmbeddingTensor,
    rng: &mut StdRng,
) -> Sample {
    loop {
        let k = rng.gen_range(cfg.min_dnns..=cfg.max_dnns);
        let mut ids = ModelId::ALL.to_vec();
        ids.shuffle(rng);
        let mix: Vec<ModelId> = ids.into_iter().take(k).collect();
        let workload = Workload::from_ids(mix.clone());
        let mapping = Mapping::random(&workload, cfg.max_stages, rng);
        let Ok(report) = sim.evaluate(&workload, &mapping) else {
            continue;
        };
        let target = attribute_per_device(&workload, &mapping, &report.per_dnn);
        let mask = MaskTensor::build(embedding, &workload, &mapping)
            .expect("zoo models are always in the embedding");
        let input =
            mask.apply(embedding)
                .reshape(&[3, embedding.num_models(), embedding.max_layers()]);
        return Sample {
            input,
            target,
            mix,
            max_stages: mapping.max_stages(),
        };
    }
}

/// Attributes each DNN's throughput to devices proportionally to the
/// fraction of its layers they host, normalized by the DNN count, so the
/// three outputs sum to the paper's objective `T`.
pub(crate) fn attribute_per_device(
    workload: &Workload,
    mapping: &Mapping,
    per_dnn: &[f64],
) -> [f32; 3] {
    let m = workload.len() as f64;
    let mut out = [0.0f32; 3];
    for (di, dnn) in workload.dnns().iter().enumerate() {
        let total = dnn.num_layers() as f64;
        for dev in Device::ALL {
            let on_dev = mapping.assignments()[di]
                .iter()
                .filter(|d| **d == dev)
                .count() as f64;
            out[dev.index()] += (per_dnn[di] * on_dev / total / m) as f32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> DatasetConfig {
        DatasetConfig {
            num_workloads: 12,
            threads: 3,
            ..DatasetConfig::default()
        }
    }

    #[test]
    fn generates_requested_count() {
        let d = tiny_config().generate(&Board::hikey970());
        assert_eq!(d.samples.len(), 12);
        for s in &d.samples {
            assert_eq!(s.input.shape(), &[3, 11, 37]);
            assert!(s.target.iter().all(|v| *v >= 0.0 && v.is_finite()));
            assert!((1..=5).contains(&s.mix.len()));
            assert!(s.max_stages <= 3);
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let board = Board::hikey970();
        let a = tiny_config().generate(&board);
        let b = tiny_config().generate(&board);
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.mix, y.mix);
            assert_eq!(x.target, y.target);
        }
    }

    #[test]
    fn attribution_sums_to_average_throughput() {
        let board = Board::hikey970();
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet]);
        let mut rng = StdRng::seed_from_u64(3);
        let mapping = Mapping::random(&w, 3, &mut rng);
        let report = board.simulator().evaluate(&w, &mapping).unwrap();
        let attr = attribute_per_device(&w, &mapping, &report.per_dnn);
        let sum: f32 = attr.iter().sum();
        assert!(
            (sum - report.average as f32).abs() / (report.average as f32) < 1e-4,
            "sum {sum} vs T {}",
            report.average
        );
    }

    #[test]
    fn split_respects_fraction() {
        let d = tiny_config().generate(&Board::hikey970());
        let (train, val) = d.split(0.75);
        assert_eq!(train.len(), 9);
        assert_eq!(val.len(), 3);
    }
}
