//! Regression quality metrics for estimator evaluation.

/// Mean absolute error between predictions and truths.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mean_absolute_error(predictions: &[f64], truths: &[f64]) -> f64 {
    assert_eq!(predictions.len(), truths.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty inputs");
    predictions
        .iter()
        .zip(truths)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / predictions.len() as f64
}

/// Mean absolute percentage error (skips zero truths).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mean_absolute_percentage_error(predictions: &[f64], truths: &[f64]) -> f64 {
    assert_eq!(predictions.len(), truths.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty inputs");
    let mut total = 0.0;
    let mut count = 0usize;
    for (p, t) in predictions.iter().zip(truths) {
        if t.abs() > f64::EPSILON {
            total += ((p - t) / t).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        100.0 * total / count as f64
    }
}

/// Coefficient of determination R².
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn r_squared(predictions: &[f64], truths: &[f64]) -> f64 {
    assert_eq!(predictions.len(), truths.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty inputs");
    let mean = truths.iter().sum::<f64>() / truths.len() as f64;
    let ss_res: f64 = predictions
        .iter()
        .zip(truths)
        .map(|(p, t)| (t - p).powi(2))
        .sum();
    let ss_tot: f64 = truths.iter().map(|t| (t - mean).powi(2)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(mean_absolute_error(&t, &t), 0.0);
        assert_eq!(mean_absolute_percentage_error(&t, &t), 0.0);
        assert_eq!(r_squared(&t, &t), 1.0);
    }

    #[test]
    fn known_values() {
        let p = [2.0, 2.0];
        let t = [1.0, 3.0];
        assert_eq!(mean_absolute_error(&p, &t), 1.0);
        // |1|/1 + |-1|/3 → (1 + 0.3333)/2 × 100 ≈ 66.67%.
        assert!((mean_absolute_percentage_error(&p, &t) - 66.666).abs() < 0.01);
        // ss_res = 1 + 1 = 2, ss_tot = 1 + 1 = 2 → R² = 0.
        assert_eq!(r_squared(&p, &t), 0.0);
    }

    #[test]
    fn mape_skips_zero_truths() {
        let p = [5.0, 2.0];
        let t = [0.0, 2.0];
        assert_eq!(mean_absolute_percentage_error(&p, &t), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = mean_absolute_error(&[1.0], &[1.0, 2.0]);
    }
}
