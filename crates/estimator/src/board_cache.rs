//! Board-scoped cross-decision evaluation caching.
//!
//! Every scheduler that owns an [`EvalCache`] used to repeat the same
//! two fragments by hand in its `decide` implementation: *flush when the
//! board changes* (cache keys carry no board identity, so reports are
//! valid for exactly one piece of hardware) and *miss-delta accounting*
//! (`last_evaluations` must count evaluator queries that actually ran,
//! not cache hits). [`BoardScopedCache`] folds both into one wrapper:
//! [`BoardScopedCache::begin`] scopes a decision to a board and hands
//! back a [`DecisionScope`] that wraps evaluators and answers "how many
//! fresh queries did this decision cost?" afterwards.
//!
//! The wrapper also owns **persistence**: a cache snapshot outlives the
//! process ([`BoardScopedCache::save`] / [`BoardScopedCache::load`]),
//! keyed on the process-stable [`Board::fingerprint`] so a snapshot
//! collected on one piece of hardware can never warm-start another
//! (entries themselves are keyed on the process-stable
//! `Workload::fingerprint()`, so they mean the same thing in every
//! process).

use crate::cache::{CachedEstimator, EvalCache};
use crate::io::LoadError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use omniboost_hw::{Board, Device, EvalCacheStats, Mapping, ThroughputModel, ThroughputReport};
use std::fs;
use std::path::Path;

const MAGIC: u32 = 0x0B00_CACE;
const VERSION: u16 = 1;
/// Archive container magic ([`CacheArchive`]): distinct from the
/// single-segment magic so either format is recognized unambiguously.
const ARCHIVE_MAGIC: u32 = 0x0B00_CAFE;
const ARCHIVE_VERSION: u16 = 1;

/// An [`EvalCache`] bound to (at most) one board at a time, with the
/// per-decision bookkeeping every caching scheduler needs.
///
/// ```
/// use omniboost_estimator::BoardScopedCache;
/// use omniboost_hw::{AnalyticModel, Board, Device, Mapping, ThroughputModel, Workload};
/// use omniboost_models::ModelId;
///
/// let board = Board::hikey970();
/// let mut cache = BoardScopedCache::new(1024);
/// let w = Workload::from_ids([ModelId::AlexNet]);
/// let m = Mapping::all_on(&w, Device::Gpu);
///
/// let scope = cache.begin(&board);
/// let model = scope.wrap(AnalyticModel::new(board.clone()));
/// model.evaluate(&w, &m)?;
/// assert_eq!(scope.fresh_evaluations(0), 1);
///
/// // Same board, recurring mapping: the next decision is free.
/// let scope = cache.begin(&board);
/// let model = scope.wrap(AnalyticModel::new(board.clone()));
/// model.evaluate(&w, &m)?;
/// assert_eq!(scope.fresh_evaluations(1), 0);
/// # Ok::<(), omniboost_hw::HwError>(())
/// ```
pub struct BoardScopedCache {
    cache: EvalCache,
    /// Fingerprint of the board the cached reports were computed
    /// against; `None` until the first decision (or after `clear`).
    board_fingerprint: Option<u64>,
}

impl std::fmt::Debug for BoardScopedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoardScopedCache")
            .field("board_fingerprint", &self.board_fingerprint)
            .field("cache", &self.cache)
            .finish()
    }
}

impl BoardScopedCache {
    /// Creates a cache holding at most `capacity` reports (0 disables
    /// caching entirely, matching [`EvalCache::new`]).
    pub fn new(capacity: usize) -> Self {
        Self {
            cache: EvalCache::new(capacity),
            board_fingerprint: None,
        }
    }

    /// The underlying cache (stats, capacity, len).
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// Whether the cache is a no-op (capacity 0).
    pub fn is_disabled(&self) -> bool {
        self.cache.is_disabled()
    }

    /// Cumulative hit/miss/eviction counters.
    pub fn stats(&self) -> EvalCacheStats {
        self.cache.stats()
    }

    /// The stats when caching is enabled — the exact body every
    /// scheduler's `eval_cache_stats` hook shares.
    pub fn stats_if_enabled(&self) -> Option<EvalCacheStats> {
        (!self.is_disabled()).then(|| self.stats())
    }

    /// Drops every cached report and forgets the bound board.
    pub fn clear(&mut self) {
        self.cache.clear();
        self.board_fingerprint = None;
    }

    /// Scopes the next decision to `board`: flushes the cache if the
    /// board changed since the last decision (stale reports from other
    /// hardware must never be replayed) and snapshots the miss counter
    /// so the scope can report how many evaluator queries the decision
    /// actually cost.
    pub fn begin(&mut self, board: &Board) -> DecisionScope<'_> {
        let fp = board.fingerprint();
        if self.board_fingerprint != Some(fp) {
            self.cache.clear();
            self.board_fingerprint = Some(fp);
        }
        DecisionScope {
            misses_before: self.cache.stats().misses,
            cache: &self.cache,
        }
    }

    /// Serializes the board fingerprint plus every cached entry
    /// (least-recently-used first, so loading replays recency).
    pub fn to_bytes(&self) -> Bytes {
        let entries = self.cache.entries_lru_first();
        let mut buf = BytesMut::with_capacity(64 + entries.len() * 128);
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u64_le(self.board_fingerprint.unwrap_or(0));
        buf.put_u64_le(entries.len() as u64);
        for (fp, mapping, report) in &entries {
            buf.put_u64_le(*fp);
            buf.put_u32_le(mapping.len() as u32);
            for devs in mapping.assignments() {
                buf.put_u32_le(devs.len() as u32);
                for d in devs {
                    buf.put_u8(d.index() as u8);
                }
            }
            buf.put_u32_le(report.per_dnn.len() as u32);
            for t in &report.per_dnn {
                buf.put_f64_le(*t);
            }
            for t in &report.per_device {
                buf.put_f64_le(*t);
            }
        }
        buf.freeze()
    }

    /// Reconstructs a snapshot written by [`BoardScopedCache::to_bytes`]
    /// into a cache of the given `capacity`, validating that it was
    /// collected on `board`.
    ///
    /// # Errors
    ///
    /// [`LoadError::Corrupt`]/[`LoadError::Version`] for malformed
    /// blobs; [`LoadError::BoardMismatch`] when the snapshot belongs to
    /// different hardware (callers start cold instead).
    pub fn from_bytes(mut blob: Bytes, capacity: usize, board: &Board) -> Result<Self, LoadError> {
        let buf = &mut blob;
        if buf.remaining() < 4 + 2 + 8 + 8 {
            return Err(LoadError::Corrupt("cache header"));
        }
        if buf.get_u32_le() != MAGIC {
            return Err(LoadError::Corrupt("cache magic"));
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(LoadError::Version(version));
        }
        let found = buf.get_u64_le();
        let expected = board.fingerprint();
        if found != expected {
            return Err(LoadError::BoardMismatch { expected, found });
        }
        let count = buf.get_u64_le() as usize;
        let out = Self {
            cache: EvalCache::new(capacity),
            board_fingerprint: Some(expected),
        };
        for _ in 0..count {
            if buf.remaining() < 8 + 4 {
                return Err(LoadError::Corrupt("cache entry header"));
            }
            let fp = buf.get_u64_le();
            let dnns = buf.get_u32_le() as usize;
            let mut assignments = Vec::with_capacity(dnns);
            for _ in 0..dnns {
                if buf.remaining() < 4 {
                    return Err(LoadError::Corrupt("cache mapping length"));
                }
                let layers = buf.get_u32_le() as usize;
                if buf.remaining() < layers {
                    return Err(LoadError::Corrupt("cache mapping body"));
                }
                let devs: Result<Vec<Device>, _> = (0..layers)
                    .map(|_| {
                        Device::from_index(buf.get_u8() as usize)
                            .ok_or(LoadError::Corrupt("cache device index"))
                    })
                    .collect();
                assignments.push(devs?);
            }
            if buf.remaining() < 4 {
                return Err(LoadError::Corrupt("cache report length"));
            }
            let per_dnn_len = buf.get_u32_le() as usize;
            if buf.remaining() < (per_dnn_len + Device::COUNT) * 8 {
                return Err(LoadError::Corrupt("cache report body"));
            }
            let per_dnn: Vec<f64> = (0..per_dnn_len).map(|_| buf.get_f64_le()).collect();
            if per_dnn_len != dnns {
                return Err(LoadError::Corrupt("cache report shape"));
            }
            let mut per_device = [0.0f64; Device::COUNT];
            for d in &mut per_device {
                *d = buf.get_f64_le();
            }
            if per_dnn
                .iter()
                .chain(per_device.iter())
                .any(|v| !v.is_finite())
            {
                return Err(LoadError::Corrupt("cache report values"));
            }
            // `average` is derived, not stored — it can't disagree.
            let report = ThroughputReport::new(per_dnn, per_device);
            out.cache.insert(fp, &Mapping::new(assignments), report);
        }
        if buf.remaining() > 0 {
            return Err(LoadError::Corrupt("cache trailing bytes"));
        }
        Ok(out)
    }

    /// Persists the cache next to the rest of the design-time artefacts.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        fs::write(path, self.to_bytes())
    }

    /// Loads a snapshot previously written by [`BoardScopedCache::save`]
    /// for the given board; see [`BoardScopedCache::from_bytes`].
    ///
    /// # Errors
    ///
    /// I/O, corruption, version and board-mismatch [`LoadError`]s.
    pub fn load(path: impl AsRef<Path>, capacity: usize, board: &Board) -> Result<Self, LoadError> {
        let raw = fs::read(path)?;
        Self::from_bytes(Bytes::from(raw), capacity, board)
    }

    /// Fingerprint of the board the cached reports belong to (`None`
    /// before the first decision).
    pub fn board_fingerprint(&self) -> Option<u64> {
        self.board_fingerprint
    }
}

/// A multi-profile cache snapshot: one serialized [`BoardScopedCache`]
/// segment **per board fingerprint**, so a heterogeneous fleet persists
/// and reloads each hardware profile's reports independently.
///
/// The single-segment [`BoardScopedCache::save`] format rejects any
/// board whose fingerprint differs from the one the snapshot was
/// collected on — correct for one board, but in a mixed fleet it meant
/// every profile except the first booted cold. The archive keys
/// segments by fingerprint: at startup each board pulls **its own**
/// segment (and only a genuinely unknown profile starts cold), at
/// shutdown each profile's merged cache overwrites its segment while
/// segments of profiles absent from the current fleet are preserved.
#[derive(Debug, Default, Clone)]
pub struct CacheArchive {
    /// `(board fingerprint, single-segment blob)`, unique fingerprints.
    segments: Vec<(u64, Vec<u8>)>,
}

impl CacheArchive {
    /// An empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of profile segments held.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the archive holds no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Inserts (or replaces) the segment for `cache`'s board profile.
    /// A cache that never saw a decision has no fingerprint and is
    /// skipped — there is nothing worth persisting.
    pub fn upsert(&mut self, cache: &BoardScopedCache) {
        let Some(fp) = cache.board_fingerprint else {
            return;
        };
        let blob = cache.to_bytes().to_vec();
        match self.segments.iter_mut().find(|(f, _)| *f == fp) {
            Some(slot) => slot.1 = blob,
            None => self.segments.push((fp, blob)),
        }
    }

    /// Decodes the segment matching `board`'s fingerprint into a cache
    /// of `capacity` entries; `None` when the archive holds no segment
    /// for this profile **or** the stored segment is corrupt (a daemon
    /// must boot cold rather than refuse to boot).
    pub fn segment(&self, capacity: usize, board: &Board) -> Option<BoardScopedCache> {
        let fp = board.fingerprint();
        let blob = self.segments.iter().find(|(f, _)| *f == fp)?.1.clone();
        BoardScopedCache::from_bytes(Bytes::from(blob), capacity, board).ok()
    }

    /// Serializes the archive: segments sorted by fingerprint so equal
    /// contents produce equal bytes regardless of insertion order.
    pub fn to_bytes(&self) -> Bytes {
        let mut segments = self.segments.clone();
        segments.sort_by_key(|(fp, _)| *fp);
        let mut buf =
            BytesMut::with_capacity(16 + segments.iter().map(|(_, b)| b.len() + 16).sum::<usize>());
        buf.put_u32_le(ARCHIVE_MAGIC);
        buf.put_u16_le(ARCHIVE_VERSION);
        buf.put_u64_le(segments.len() as u64);
        for (fp, blob) in &segments {
            buf.put_u64_le(*fp);
            buf.put_u64_le(blob.len() as u64);
            buf.put_slice(blob.as_slice());
        }
        buf.freeze()
    }

    /// Parses an archive written by [`CacheArchive::to_bytes`]. Segment
    /// *containers* are validated here (bounds, duplicates); segment
    /// *contents* are validated lazily by [`CacheArchive::segment`]
    /// against the requesting board.
    ///
    /// # Errors
    ///
    /// [`LoadError::Corrupt`] / [`LoadError::Version`] on malformed
    /// blobs.
    pub fn from_bytes(mut blob: Bytes) -> Result<Self, LoadError> {
        let buf = &mut blob;
        if buf.remaining() < 4 + 2 + 8 {
            return Err(LoadError::Corrupt("archive header"));
        }
        if buf.get_u32_le() != ARCHIVE_MAGIC {
            return Err(LoadError::Corrupt("archive magic"));
        }
        let version = buf.get_u16_le();
        if version != ARCHIVE_VERSION {
            return Err(LoadError::Version(version));
        }
        let count = buf.get_u64_le() as usize;
        let mut segments: Vec<(u64, Vec<u8>)> = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            if buf.remaining() < 16 {
                return Err(LoadError::Corrupt("archive segment header"));
            }
            let fp = buf.get_u64_le();
            let len = buf.get_u64_le() as usize;
            if buf.remaining() < len {
                return Err(LoadError::Corrupt("archive segment body"));
            }
            if segments.iter().any(|(f, _)| *f == fp) {
                return Err(LoadError::Corrupt("archive duplicate segment"));
            }
            segments.push((fp, buf.copy_to_bytes(len).to_vec()));
        }
        if buf.remaining() > 0 {
            return Err(LoadError::Corrupt("archive trailing bytes"));
        }
        Ok(Self { segments })
    }

    /// Persists the archive.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        fs::write(path, self.to_bytes())
    }

    /// Loads an archive previously written by [`CacheArchive::save`].
    ///
    /// # Errors
    ///
    /// I/O, corruption and version [`LoadError`]s.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, LoadError> {
        let raw = fs::read(path)?;
        Self::from_bytes(Bytes::from(raw))
    }
}

/// One decision's view of a [`BoardScopedCache`]: wraps evaluators and
/// accounts fresh evaluator work. See [`BoardScopedCache::begin`].
pub struct DecisionScope<'c> {
    cache: &'c EvalCache,
    misses_before: u64,
}

impl<'c> DecisionScope<'c> {
    /// The scoped cache (shareable across the whole decision).
    pub fn cache(&self) -> &'c EvalCache {
        self.cache
    }

    /// Threads every query of `model` through the scoped cache.
    pub fn wrap<M: ThroughputModel>(&self, model: M) -> CachedEstimator<'c, M> {
        CachedEstimator::new(model, self.cache)
    }

    /// Evaluator queries that actually ran since [`BoardScopedCache::begin`]
    /// — the truthful `last_evaluations` every scheduler reports. With
    /// caching disabled the cache counts nothing, so callers pass their
    /// own `uncached_count` (the raw query tally) as the fallback.
    pub fn fresh_evaluations(&self, uncached_count: usize) -> usize {
        if self.cache.is_disabled() {
            uncached_count
        } else {
            (self.cache.stats().misses - self.misses_before) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omniboost_hw::{AnalyticModel, Workload};
    use omniboost_models::ModelId;

    fn setup() -> (Board, Workload, Mapping) {
        let board = Board::hikey970();
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet]);
        let m = Mapping::all_on(&w, Device::Gpu);
        (board, w, m)
    }

    #[test]
    fn board_change_flushes_between_decisions() {
        let (board, w, m) = setup();
        let mut cache = BoardScopedCache::new(64);
        {
            let scope = cache.begin(&board);
            scope
                .wrap(AnalyticModel::new(board.clone()))
                .evaluate(&w, &m)
                .unwrap();
            assert_eq!(scope.fresh_evaluations(0), 1);
        }
        assert_eq!(cache.cache().len(), 1);
        // A different board: the entry must not survive into the scope.
        let mut other = Board::hikey970();
        other.max_concurrent_dnns += 1;
        let scope = cache.begin(&other);
        scope
            .wrap(AnalyticModel::new(other.clone()))
            .evaluate(&w, &m)
            .unwrap();
        assert_eq!(scope.fresh_evaluations(0), 1, "stale report replayed");
    }

    #[test]
    fn fresh_evaluations_falls_back_when_disabled() {
        let (board, w, m) = setup();
        let mut cache = BoardScopedCache::new(0);
        assert!(cache.is_disabled());
        assert_eq!(cache.stats_if_enabled(), None);
        let scope = cache.begin(&board);
        let model = scope.wrap(AnalyticModel::new(board.clone()));
        model.evaluate(&w, &m).unwrap();
        model.evaluate(&w, &m).unwrap();
        assert_eq!(scope.fresh_evaluations(2), 2);
    }

    #[test]
    fn snapshot_roundtrips_and_warm_starts() {
        let (board, w, m) = setup();
        let mut cache = BoardScopedCache::new(64);
        let scope = cache.begin(&board);
        let model = scope.wrap(AnalyticModel::new(board.clone()));
        let want = model.evaluate(&w, &m).unwrap();
        let blob = cache.to_bytes();

        let restored = BoardScopedCache::from_bytes(blob, 64, &board).unwrap();
        assert_eq!(restored.cache().len(), 1);
        // The restored cache answers without touching the evaluator, and
        // `begin` on the same board must NOT flush it.
        let mut restored = restored;
        let scope = restored.begin(&board);
        let got = scope
            .cache()
            .get(w.fingerprint(), &m)
            .expect("persisted entry answers");
        assert_eq!(got, want);
    }

    #[test]
    fn snapshot_for_other_hardware_is_rejected() {
        let (board, w, m) = setup();
        let mut cache = BoardScopedCache::new(16);
        let scope = cache.begin(&board);
        scope
            .wrap(AnalyticModel::new(board.clone()))
            .evaluate(&w, &m)
            .unwrap();
        let blob = cache.to_bytes();
        let mut other = Board::hikey970();
        other.bus.latency_ms *= 2.0;
        assert!(matches!(
            BoardScopedCache::from_bytes(blob, 16, &other),
            Err(LoadError::BoardMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_snapshots_roundtrip_to_errors_not_panics() {
        let (board, w, m) = setup();
        let mut cache = BoardScopedCache::new(16);
        let scope = cache.begin(&board);
        scope
            .wrap(AnalyticModel::new(board.clone()))
            .evaluate(&w, &m)
            .unwrap();
        let blob = cache.to_bytes().to_vec();

        // Wrong magic.
        let mut bad = blob.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            BoardScopedCache::from_bytes(Bytes::from(bad), 16, &board),
            Err(LoadError::Corrupt("cache magic"))
        ));
        // Future version.
        let mut versioned = blob.clone();
        versioned[4] = 0xFF;
        assert!(matches!(
            BoardScopedCache::from_bytes(Bytes::from(versioned), 16, &board),
            Err(LoadError::Version(_))
        ));
        // Truncations at every prefix length must error, never panic.
        for cut in 0..blob.len() {
            let short = Bytes::from(blob[..cut].to_vec());
            assert!(
                BoardScopedCache::from_bytes(short, 16, &board).is_err(),
                "truncation at {cut} accepted"
            );
        }
        // Out-of-range device index.
        let full = BoardScopedCache::from_bytes(Bytes::from(blob.clone()), 16, &board);
        assert!(full.is_ok(), "baseline blob must load");
        let mut bad_dev = blob.clone();
        // Entry layout: header(4+2+8+8) + fp(8) + dnns(4) + first len(4),
        // then device bytes start.
        let dev_off = 4 + 2 + 8 + 8 + 8 + 4 + 4;
        bad_dev[dev_off] = 9;
        assert!(matches!(
            BoardScopedCache::from_bytes(Bytes::from(bad_dev), 16, &board),
            Err(LoadError::Corrupt("cache device index"))
        ));
        // Trailing garbage.
        let mut long = blob;
        long.push(0);
        assert!(matches!(
            BoardScopedCache::from_bytes(Bytes::from(long), 16, &board),
            Err(LoadError::Corrupt("cache trailing bytes"))
        ));
    }

    /// Builds a warmed cache for `board` holding the GPU-only report.
    fn warmed(board: &Board) -> BoardScopedCache {
        let w = Workload::from_ids([ModelId::AlexNet]);
        let m = Mapping::all_on(&w, Device::Gpu);
        let mut cache = BoardScopedCache::new(64);
        let scope = cache.begin(board);
        scope
            .wrap(AnalyticModel::new(board.clone()))
            .evaluate(&w, &m)
            .unwrap();
        cache
    }

    #[test]
    fn archive_keys_segments_per_board_profile() {
        let full = Board::hikey970();
        let lite = Board::hikey970_lite();
        let mut archive = CacheArchive::new();
        archive.upsert(&warmed(&full));
        archive.upsert(&warmed(&lite));
        assert_eq!(archive.len(), 2);

        // Each profile pulls its own segment — the heterogeneous-fleet
        // fix: the lite board no longer boots cold just because the
        // snapshot "belongs" to the full board.
        let w = Workload::from_ids([ModelId::AlexNet]);
        let m = Mapping::all_on(&w, Device::Gpu);
        for board in [&full, &lite] {
            let seg = archive.segment(64, board).expect("segment for profile");
            assert_eq!(seg.board_fingerprint(), Some(board.fingerprint()));
            assert_eq!(
                seg.cache().get(w.fingerprint(), &m).unwrap(),
                AnalyticModel::new(board.clone()).evaluate(&w, &m).unwrap(),
                "segment must hold the profile's own report, not the other's"
            );
        }
        // An unknown profile has no segment: boots cold, no error.
        let mut other = Board::hikey970();
        other.bus.latency_ms *= 3.0;
        assert!(archive.segment(64, &other).is_none());
    }

    #[test]
    fn archive_roundtrips_and_upsert_replaces() {
        let full = Board::hikey970();
        let lite = Board::hikey970_lite();
        let mut archive = CacheArchive::new();
        archive.upsert(&warmed(&full));
        archive.upsert(&warmed(&lite));
        let restored = CacheArchive::from_bytes(archive.to_bytes()).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.to_bytes().to_vec(), archive.to_bytes().to_vec());

        // Upserting the same profile replaces its segment, not appends.
        let mut again = restored.clone();
        again.upsert(&warmed(&full));
        assert_eq!(again.len(), 2);

        // A fresh, never-used cache has no fingerprint: nothing to save.
        let mut empty = CacheArchive::new();
        empty.upsert(&BoardScopedCache::new(16));
        assert!(empty.is_empty());
    }

    #[test]
    fn archive_rejects_corruption_without_panicking() {
        let mut archive = CacheArchive::new();
        archive.upsert(&warmed(&Board::hikey970()));
        let blob = archive.to_bytes().to_vec();
        for cut in 0..blob.len() {
            assert!(
                CacheArchive::from_bytes(Bytes::from(blob[..cut].to_vec())).is_err(),
                "truncation at {cut} accepted"
            );
        }
        let mut bad = blob.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            CacheArchive::from_bytes(Bytes::from(bad)),
            Err(LoadError::Corrupt("archive magic"))
        ));
        let mut long = blob.clone();
        long.push(7);
        assert!(matches!(
            CacheArchive::from_bytes(Bytes::from(long)),
            Err(LoadError::Corrupt("archive trailing bytes"))
        ));
        // A segment whose *contents* are corrupted decodes to None (the
        // board boots cold) rather than failing the whole archive. The
        // inner blob starts after the archive header (14 bytes) and the
        // segment header (16 bytes); flip its magic.
        let mut seg_bad = blob;
        seg_bad[14 + 16] ^= 0xFF;
        let parsed = CacheArchive::from_bytes(Bytes::from(seg_bad)).unwrap();
        assert!(parsed.segment(64, &Board::hikey970()).is_none());
    }

    #[test]
    fn save_load_via_filesystem_preserves_recency() {
        let board = Board::hikey970();
        let w = Workload::from_ids([ModelId::AlexNet]);
        let model = AnalyticModel::new(board.clone());
        let mut cache = BoardScopedCache::new(64);
        let scope = cache.begin(&board);
        let cached = scope.wrap(&model);
        let mappings = [
            Mapping::all_on(&w, Device::Gpu),
            Mapping::all_on(&w, Device::BigCpu),
            Mapping::all_on(&w, Device::LittleCpu),
        ];
        for m in &mappings {
            cached.evaluate(&w, m).unwrap();
        }
        let dir = std::env::temp_dir().join("omniboost-cache-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("evalcache.bin");
        cache.save(&path).unwrap();
        let restored = BoardScopedCache::load(&path, 64, &board).unwrap();
        assert_eq!(restored.cache().len(), 3);
        for m in &mappings {
            assert_eq!(
                restored.cache().get(w.fingerprint(), m).unwrap(),
                model.evaluate(&w, m).unwrap()
            );
        }
        std::fs::remove_file(&path).ok();
    }
}
