//! First-principles feasibility bound on mapping throughput.
//!
//! A learned estimator queried by an argmax search (the MCTS) gets
//! *exploited*: the search gravitates to whatever inputs the network
//! over-scores. The profiled layer times in the [`EmbeddingTensor`] — the
//! same design-time data the CNN consumes — already imply a hard upper
//! bound on any mapping's throughput from first principles:
//!
//! * a DNN pipeline cannot run faster than its bottleneck stage, and
//! * a device time-shares among its resident stages (utilization ≤ 1),
//!
//! with **no** knowledge of the board's measured saturation behaviour.
//! Clamping the CNN's prediction by this bound removes physically
//! impossible over-estimates while leaving the learned contention model
//! in charge everywhere below the bound.

use crate::embedding::EmbeddingTensor;
use omniboost_hw::{Device, Mapping, Workload};

/// Fair-sharing feasibility bound computed from the embedding tensor.
#[derive(Debug, Clone, Copy)]
pub struct FeasibilityBound<'a> {
    embedding: &'a EmbeddingTensor,
    iterations: usize,
}

impl<'a> FeasibilityBound<'a> {
    /// Creates a bound calculator over a profiled embedding.
    pub fn new(embedding: &'a EmbeddingTensor) -> Self {
        Self {
            embedding,
            iterations: 60,
        }
    }

    /// Upper bound (inferences/s) on the average throughput `T` of a
    /// mapping, or `None` if a workload model is absent from the
    /// embedding.
    ///
    /// The bound ignores transfer costs and saturation (both only slow
    /// things down), so it is a true upper bound on anything the board
    /// can deliver.
    pub fn average_upper_bound(&self, workload: &Workload, mapping: &Mapping) -> Option<f64> {
        let scale = self.embedding.scale_ms();
        // Segment times per DNN, in ms.
        let mut stages: Vec<Vec<(Device, f64)>> = Vec::with_capacity(workload.len());
        for (di, dnn) in workload.dnns().iter().enumerate() {
            let row = self.embedding.row_of(dnn.name())?;
            let segs = mapping.segments(di);
            let mut st = Vec::with_capacity(segs.len());
            for seg in segs {
                let t: f64 = (seg.start..seg.end)
                    .map(|l| f64::from(self.embedding.value(seg.device, row, l)) * scale)
                    .sum();
                st.push((seg.device, t.max(1e-9)));
            }
            stages.push(st);
        }

        // Fixed point of the fair-sharing congestion recursion.
        let mut x: Vec<f64> = stages
            .iter()
            .map(|st| 1.0 / st.iter().map(|(_, t)| *t).fold(0.0f64, f64::max))
            .collect();
        for _ in 0..self.iterations {
            let mut util = [0.0f64; Device::COUNT];
            for (di, st) in stages.iter().enumerate() {
                for (dev, t) in st {
                    util[dev.index()] += x[di] * t;
                }
            }
            for (di, st) in stages.iter().enumerate() {
                let bottleneck = st
                    .iter()
                    .map(|(dev, t)| t * util[dev.index()].max(1.0))
                    .fold(0.0f64, f64::max);
                x[di] = 0.5 * x[di] + 0.5 / bottleneck;
            }
        }
        let m = workload.len() as f64;
        Some(x.iter().sum::<f64>() / m * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omniboost_hw::{Board, NoiseModel, ThroughputModel};
    use omniboost_models::{zoo, ModelId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn embedding(board: &Board) -> EmbeddingTensor {
        EmbeddingTensor::profile(board, &zoo::build_all(), NoiseModel::none())
    }

    #[test]
    fn bound_dominates_measurements_on_random_mappings() {
        let board = Board::hikey970();
        let emb = embedding(&board);
        let bound = FeasibilityBound::new(&emb);
        let sim = board.simulator();
        let mut rng = StdRng::seed_from_u64(42);
        for mix in [
            vec![ModelId::Vgg19, ModelId::ResNet50, ModelId::InceptionV3],
            vec![ModelId::AlexNet, ModelId::MobileNet],
            vec![
                ModelId::Vgg16,
                ModelId::SqueezeNet,
                ModelId::ResNet34,
                ModelId::Vgg13,
            ],
        ] {
            let w = Workload::from_ids(mix);
            for _ in 0..12 {
                let m = Mapping::random(&w, 3, &mut rng);
                let measured = sim.evaluate(&w, &m).unwrap().average;
                let ub = bound.average_upper_bound(&w, &m).unwrap();
                assert!(
                    ub * 1.05 >= measured,
                    "bound {ub} below measured {measured} for {m}"
                );
            }
        }
    }

    #[test]
    fn bound_is_tight_for_uncontended_single_dnn() {
        let board = Board::hikey970();
        let emb = embedding(&board);
        let bound = FeasibilityBound::new(&emb);
        let sim = board.simulator();
        let w = Workload::from_ids([ModelId::AlexNet]);
        let m = Mapping::all_on(&w, Device::Gpu);
        let measured = sim.evaluate(&w, &m).unwrap().average;
        let ub = bound.average_upper_bound(&w, &m).unwrap();
        assert!(
            (ub - measured).abs() / measured < 0.05,
            "{ub} vs {measured}"
        );
    }

    #[test]
    fn unknown_models_return_none() {
        let board = Board::hikey970();
        let emb = embedding(&board);
        let bound = FeasibilityBound::new(&emb);
        let custom =
            omniboost_models::DnnModelBuilder::new(omniboost_models::TensorShape::new(3, 8, 8))
                .conv("c", 4, 3, 1, 1)
                .build("ghost")
                .unwrap();
        let w = Workload::new(vec![custom]);
        let m = Mapping::all_on(&w, Device::Gpu);
        assert!(bound.average_upper_bound(&w, &m).is_none());
    }

    #[test]
    fn overloading_one_device_lowers_the_bound() {
        let board = Board::hikey970();
        let emb = embedding(&board);
        let bound = FeasibilityBound::new(&emb);
        let w = Workload::from_ids(vec![ModelId::Vgg19; 3]);
        let stacked = bound
            .average_upper_bound(&w, &Mapping::all_on(&w, Device::Gpu))
            .unwrap();
        let spread = Mapping::new(vec![
            vec![Device::Gpu; 24],
            vec![Device::BigCpu; 24],
            vec![Device::LittleCpu; 24],
        ]);
        let spread_ub = bound.average_upper_bound(&w, &spread).unwrap();
        // Stacking shares one device 3 ways; spreading does not. The
        // bound must see that sharing cost.
        assert!(stacked < spread_ub * 1.5);
    }
}
