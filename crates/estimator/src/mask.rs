//! Mask tensors (§IV-A, Fig. 3): boolean selectors that extract the
//! queried workload from the embedding tensor.
//!
//! For each device slice, the mask is 1 at `(model_row, layer)` exactly
//! when the mapping schedules that layer of that model on that device.
//! When a workload contains the *same* dataset model more than once, the
//! occurrences accumulate (the mask counts them), so the masked input
//! still distinguishes "one VGG-19 on GPU" from "two VGG-19s on GPU".

use crate::embedding::EmbeddingTensor;
use omniboost_hw::{Device, Mapping, Workload};
use omniboost_tensor::Tensor;

/// A `[3, M, L]` occurrence-count mask for one workload mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskTensor {
    shape: [usize; 3],
    counts: Vec<f32>,
}

/// Error produced when the workload references a model missing from the
/// embedding dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownModelError(pub String);

impl std::fmt::Display for UnknownModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model `{}` is not in the embedding dataset", self.0)
    }
}

impl std::error::Error for UnknownModelError {}

impl MaskTensor {
    /// Builds the mask for `(workload, mapping)` against an embedding.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownModelError`] if a workload DNN is not a dataset
    /// model (the paper requires new models to be profiled into the
    /// embedding first — its extensibility workflow).
    pub fn build(
        embedding: &EmbeddingTensor,
        workload: &Workload,
        mapping: &Mapping,
    ) -> Result<Self, UnknownModelError> {
        let [d, m, l] = embedding.input_shape();
        let mut counts = vec![0.0f32; d * m * l];
        for (di, dnn) in workload.dnns().iter().enumerate() {
            let row = embedding
                .row_of(dnn.name())
                .ok_or_else(|| UnknownModelError(dnn.name().to_owned()))?;
            for (layer, dev) in mapping.assignments()[di].iter().enumerate() {
                counts[(dev.index() * m + row) * l + layer] += 1.0;
            }
        }
        Ok(Self {
            shape: [d, m, l],
            counts,
        })
    }

    /// The mask as a dense tensor.
    pub fn as_tensor(&self) -> Tensor {
        Tensor::from_vec(self.counts.clone(), &self.shape)
    }

    /// Element-wise product with the embedding — the CNN input of Fig. 3
    /// (step 2), shaped `[1, 3, M, L]` ready for a batch-of-one forward.
    pub fn apply(&self, embedding: &EmbeddingTensor) -> Tensor {
        let u = embedding.as_tensor();
        let masked = u.hadamard(&self.as_tensor());
        let [d, m, l] = self.shape;
        masked.reshape(&[1, d, m, l])
    }

    /// Count at one coordinate.
    pub fn count(&self, device: Device, row: usize, layer: usize) -> f32 {
        let [_, m, l] = self.shape;
        self.counts[(device.index() * m + row) * l + layer]
    }

    /// Total number of (layer, occurrence) assignments in the mask.
    pub fn total_assignments(&self) -> f32 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omniboost_hw::{Board, NoiseModel};
    use omniboost_models::{zoo, ModelId};

    fn embedding() -> EmbeddingTensor {
        EmbeddingTensor::profile(&Board::hikey970(), &zoo::build_all(), NoiseModel::none())
    }

    #[test]
    fn mask_selects_assigned_layers_only() {
        let e = embedding();
        let w = Workload::from_ids([ModelId::AlexNet]);
        let mut mapping = Mapping::all_on(&w, Device::Gpu);
        mapping.assign(0, 10, Device::LittleCpu);
        let mask = MaskTensor::build(&e, &w, &mapping).unwrap();
        let row = e.row_of("alexnet").unwrap();
        assert_eq!(mask.count(Device::Gpu, row, 0), 1.0);
        assert_eq!(mask.count(Device::Gpu, row, 10), 0.0);
        assert_eq!(mask.count(Device::LittleCpu, row, 10), 1.0);
        assert_eq!(mask.total_assignments(), 11.0);
    }

    #[test]
    fn duplicate_models_accumulate() {
        let e = embedding();
        let w = Workload::from_ids([ModelId::SqueezeNet, ModelId::SqueezeNet]);
        let mapping = Mapping::all_on(&w, Device::BigCpu);
        let mask = MaskTensor::build(&e, &w, &mapping).unwrap();
        let row = e.row_of("squeezenet").unwrap();
        assert_eq!(mask.count(Device::BigCpu, row, 0), 2.0);
    }

    #[test]
    fn unknown_model_is_an_error() {
        let e = embedding();
        let custom =
            omniboost_models::DnnModelBuilder::new(omniboost_models::TensorShape::new(3, 32, 32))
                .conv("c", 8, 3, 1, 1)
                .build("mystery-net")
                .unwrap();
        let w = Workload::new(vec![custom]);
        let mapping = Mapping::all_on(&w, Device::Gpu);
        let err = MaskTensor::build(&e, &w, &mapping).unwrap_err();
        assert_eq!(err, UnknownModelError("mystery-net".into()));
    }

    #[test]
    fn apply_zeroes_unassigned_cells() {
        let e = embedding();
        let w = Workload::from_ids([ModelId::MobileNet]);
        let mapping = Mapping::all_on(&w, Device::Gpu);
        let mask = MaskTensor::build(&e, &w, &mapping).unwrap();
        let input = mask.apply(&e);
        assert_eq!(input.shape(), &[1, 3, 11, 37]);
        // Only GPU-slice mobilenet row is non-zero.
        let row = e.row_of("mobilenet").unwrap();
        let nonzero: Vec<usize> = input
            .data()
            .iter()
            .enumerate()
            .filter(|(_, v)| **v != 0.0)
            .map(|(i, _)| i)
            .collect();
        assert!(!nonzero.is_empty());
        let (m, l) = (11, 37);
        for i in &nonzero {
            let dev = i / (m * l);
            let r = (i / l) % m;
            assert_eq!(dev, Device::Gpu.index());
            assert_eq!(r, row);
        }
    }
}
