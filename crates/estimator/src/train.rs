//! Estimator training (§V, Fig. 4): Adam over minibatches with L1 loss
//! (L2 available for the ablation), 100 epochs, 400/100 split.

use crate::dataset::{Dataset, Sample};
use crate::model::{ActivationKind, EstimatorNet};
use crate::preprocess::TargetTransform;
use omniboost_tensor::{Adam, L1Loss, Loss, Module, MseLoss, Optimizer, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training criterion choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossKind {
    /// Mean absolute error (the paper's criterion).
    L1,
    /// Mean squared error (reported "too aggressive" by the paper).
    L2,
}

/// Training hyper-parameters.
///
/// Defaults reproduce §V: 100 epochs, L1 loss, Adam, 80/20 split, GELU.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Fraction of samples used for training (rest validates).
    pub train_fraction: f64,
    /// Criterion.
    pub loss: LossKind,
    /// Activation family inside the CNN.
    pub activation: ActivationKind,
    /// Seed for weight init and batch shuffling.
    pub seed: u64,
    /// Use the GEMM-structured batched backward (default). `false`
    /// selects the direct reference kernels — the A/B baseline behind
    /// the `estimator_training` bench.
    pub gemm_backward: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            batch_size: 32,
            learning_rate: 3e-3,
            train_fraction: 0.8,
            loss: LossKind::L1,
            activation: ActivationKind::Gelu,
            seed: 0xE57,
            gemm_backward: true,
        }
    }
}

/// Per-epoch loss curves — the data behind Fig. 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainHistory {
    /// Mean training loss per epoch.
    pub train: Vec<f32>,
    /// Validation loss per epoch.
    pub validation: Vec<f32>,
}

impl TrainHistory {
    /// Validation loss after the last epoch.
    pub fn final_validation_loss(&self) -> f32 {
        *self.validation.last().expect("at least one epoch")
    }

    /// Training loss after the last epoch.
    pub fn final_train_loss(&self) -> f32 {
        *self.train.last().expect("at least one epoch")
    }
}

fn stack_inputs(samples: &[&Sample]) -> Tensor {
    let shape = samples[0].input.shape();
    let (c, m, l) = (shape[0], shape[1], shape[2]);
    let mut data = Vec::with_capacity(samples.len() * c * m * l);
    for s in samples {
        data.extend_from_slice(s.input.data());
    }
    Tensor::from_vec(data, &[samples.len(), c, m, l])
}

fn stack_targets(samples: &[&Sample], transform: &TargetTransform) -> Tensor {
    let mut data = Vec::with_capacity(samples.len() * 3);
    for s in samples {
        data.extend_from_slice(&transform.apply(s.target));
    }
    Tensor::from_vec(data, &[samples.len(), 3])
}

/// The training split staged for zero-copy minibatching: one contiguous
/// input arena, targets pre-transformed once (instead of re-applying the
/// transform to every sample every epoch), and reusable minibatch
/// tensors. Per step the loop memcpys shuffled rows into the buffers —
/// no `Vec` collection, no re-stacking, no allocation.
struct EpochStager {
    arena_x: Vec<f32>,
    arena_t: Vec<f32>,
    per_sample: usize,
    /// Full-size minibatch buffers…
    batch_x: Tensor,
    batch_t: Tensor,
    /// …and the (possibly absent) trailing partial-batch buffers.
    tail_x: Option<Tensor>,
    tail_t: Option<Tensor>,
    batch_size: usize,
}

impl EpochStager {
    fn new(train_set: &[Sample], transform: &TargetTransform, batch_size: usize) -> Self {
        let shape = train_set[0].input.shape();
        let (c, m, l) = (shape[0], shape[1], shape[2]);
        let per_sample = c * m * l;
        let mut arena_x = Vec::with_capacity(train_set.len() * per_sample);
        let mut arena_t = Vec::with_capacity(train_set.len() * 3);
        for s in train_set {
            arena_x.extend_from_slice(s.input.data());
            arena_t.extend_from_slice(&transform.apply(s.target));
        }
        let batch_size = batch_size.max(1).min(train_set.len());
        let tail = train_set.len() % batch_size;
        Self {
            arena_x,
            arena_t,
            per_sample,
            batch_x: Tensor::zeros(&[batch_size, c, m, l]),
            batch_t: Tensor::zeros(&[batch_size, 3]),
            tail_x: (tail > 0).then(|| Tensor::zeros(&[tail, c, m, l])),
            tail_t: (tail > 0).then(|| Tensor::zeros(&[tail, 3])),
            batch_size,
        }
    }

    /// Fills the right-sized reusable buffers with the chunk's samples
    /// and returns them.
    fn stage(&mut self, chunk: &[usize]) -> (&Tensor, &Tensor) {
        let (x, t) = if chunk.len() == self.batch_size {
            (&mut self.batch_x, &mut self.batch_t)
        } else {
            (
                self.tail_x.as_mut().expect("tail buffer exists"),
                self.tail_t.as_mut().expect("tail buffer exists"),
            )
        };
        let per = self.per_sample;
        let xd = x.data_mut();
        let td = t.data_mut();
        for (row, &i) in chunk.iter().enumerate() {
            xd[row * per..(row + 1) * per].copy_from_slice(&self.arena_x[i * per..(i + 1) * per]);
            td[row * 3..(row + 1) * 3].copy_from_slice(&self.arena_t[i * 3..(i + 1) * 3]);
        }
        (&*x, &*t)
    }
}

/// Trains an [`EstimatorNet`] on a dataset, returning the network, the
/// fitted target transform and the loss history.
///
/// # Panics
///
/// Panics if the dataset has fewer than two samples.
pub fn train(
    dataset: &Dataset,
    config: &TrainConfig,
) -> (EstimatorNet, TargetTransform, TrainHistory) {
    assert!(dataset.samples.len() >= 2, "need at least 2 samples");
    let (train_set, val_set) = dataset.split(config.train_fraction);
    let transform = TargetTransform::fit(
        &train_set
            .iter()
            .map(|s| s.target)
            .collect::<Vec<[f32; 3]>>(),
    );
    let mut net = EstimatorNet::new(
        dataset.embedding.num_models(),
        dataset.embedding.max_layers(),
        config.activation,
        config.seed,
    );
    net.set_gemm_backward(config.gemm_backward);
    let criterion: Box<dyn Loss> = match config.loss {
        LossKind::L1 => Box::new(L1Loss),
        LossKind::L2 => Box::new(MseLoss),
    };
    let mut opt = Adam::new(config.learning_rate);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut history = TrainHistory {
        train: Vec::with_capacity(config.epochs),
        validation: Vec::with_capacity(config.epochs),
    };

    let val_refs: Vec<&Sample> = val_set.iter().collect();
    let val_x = if val_refs.is_empty() {
        None
    } else {
        Some((
            stack_inputs(&val_refs),
            stack_targets(&val_refs, &transform),
        ))
    };

    // Stage the whole split once; every step after this is a memcpy
    // into reusable buffers instead of a fresh `Vec` collect + stack.
    let mut stager = EpochStager::new(train_set, &transform, config.batch_size);
    let mut order: Vec<usize> = (0..train_set.len()).collect();
    for _epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(stager.batch_size) {
            let (x, t) = stager.stage(chunk);
            let y = net.forward(x);
            let (loss, grad) = criterion.compute(&y, t);
            net.zero_grad();
            net.backward(&grad);
            opt.step(&mut net.params_mut());
            epoch_loss += loss;
            batches += 1;
        }
        history.train.push(epoch_loss / batches.max(1) as f32);
        if let Some((vx, vt)) = &val_x {
            // Validation is inference: skip every layer's gradient cache.
            net.set_training(false);
            let y = net.forward(vx);
            net.set_training(true);
            let (vl, _) = criterion.compute(&y, vt);
            history.validation.push(vl);
        } else {
            history.validation.push(f32::NAN);
        }
    }
    (net, transform, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;
    use omniboost_hw::Board;

    fn tiny_dataset() -> Dataset {
        DatasetConfig {
            num_workloads: 24,
            threads: 4,
            ..DatasetConfig::default()
        }
        .generate(&Board::hikey970())
    }

    #[test]
    fn loss_decreases_over_short_training() {
        let dataset = tiny_dataset();
        let config = TrainConfig {
            epochs: 8,
            batch_size: 8,
            ..TrainConfig::default()
        };
        let (_, _, history) = train(&dataset, &config);
        assert_eq!(history.train.len(), 8);
        assert!(
            history.final_train_loss() < history.train[0],
            "train loss did not decrease: {:?}",
            history.train
        );
        assert!(history.final_validation_loss().is_finite());
    }

    #[test]
    fn l2_variant_also_trains() {
        let dataset = tiny_dataset();
        let config = TrainConfig {
            epochs: 3,
            batch_size: 8,
            loss: LossKind::L2,
            ..TrainConfig::default()
        };
        let (_, _, history) = train(&dataset, &config);
        assert!(history.final_train_loss().is_finite());
    }

    /// The GEMM-structured backward and the direct reference kernels
    /// follow numerically equivalent training trajectories.
    #[test]
    fn gemm_and_direct_backward_train_equivalently() {
        let dataset = tiny_dataset();
        let base = TrainConfig {
            epochs: 6,
            batch_size: 8,
            ..TrainConfig::default()
        };
        let (_, _, gemm_h) = train(&dataset, &base);
        let (_, _, direct_h) = train(
            &dataset,
            &TrainConfig {
                gemm_backward: false,
                ..base
            },
        );
        let dv = (gemm_h.final_validation_loss() - direct_h.final_validation_loss()).abs();
        let dt = (gemm_h.final_train_loss() - direct_h.final_train_loss()).abs();
        assert!(dv < 1e-3, "val loss diverged: {dv}");
        assert!(dt < 1e-3, "train loss diverged: {dt}");
    }

    #[test]
    fn transform_is_fit_on_train_split_only() {
        let dataset = tiny_dataset();
        let (train_set, _) = dataset.split(0.8);
        let transform =
            TargetTransform::fit(&train_set.iter().map(|s| s.target).collect::<Vec<_>>());
        for s in train_set {
            let z = transform.apply(s.target);
            assert!(z.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }
}
