//! Binary persistence for trained estimators.
//!
//! OmniBoost's selling point is "train once, schedule forever": the
//! design-time artefact (embedding tensor + CNN weights + target
//! transform) must outlive the process. This module serializes the whole
//! [`CnnEstimator`] into a small versioned binary blob (a few hundred
//! KiB) and back.

use crate::estimator::CnnEstimator;
use crate::model::ActivationKind;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

const MAGIC: u32 = 0x0B00_57E5;
const VERSION: u16 = 1;

/// Errors produced while loading a persisted design-time artefact (an
/// estimator blob or an evaluation-cache snapshot).
#[derive(Debug)]
#[non_exhaustive]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The blob is not an estimator file or is truncated/corrupt.
    Corrupt(&'static str),
    /// The blob was written by an incompatible format version.
    Version(u16),
    /// A persisted evaluation cache belongs to different hardware: its
    /// recorded board fingerprint does not match the board it is being
    /// loaded for. Serving daemons treat this as "start cold", not as
    /// corruption.
    BoardMismatch {
        /// Fingerprint of the board the cache is being loaded for.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error reading estimator: {e}"),
            LoadError::Corrupt(what) => write!(f, "corrupt estimator blob: {what}"),
            LoadError::Version(v) => write!(f, "unsupported estimator format version {v}"),
            LoadError::BoardMismatch { expected, found } => write!(
                f,
                "persisted cache was collected on different hardware \
                 (board fingerprint {found:#018x}, expected {expected:#018x})"
            ),
        }
    }
}

impl Error for LoadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String, LoadError> {
    if buf.remaining() < 4 {
        return Err(LoadError::Corrupt("string length"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(LoadError::Corrupt("string body"));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| LoadError::Corrupt("string utf-8"))
}

fn put_f32s(buf: &mut BytesMut, values: &[f32]) {
    buf.put_u64_le(values.len() as u64);
    for v in values {
        buf.put_f32_le(*v);
    }
}

fn get_f32s(buf: &mut Bytes) -> Result<Vec<f32>, LoadError> {
    if buf.remaining() < 8 {
        return Err(LoadError::Corrupt("f32 array length"));
    }
    let len = buf.get_u64_le() as usize;
    if buf.remaining() < len * 4 {
        return Err(LoadError::Corrupt("f32 array body"));
    }
    Ok((0..len).map(|_| buf.get_f32_le()).collect())
}

impl CnnEstimator {
    /// Serializes the estimator into a binary blob.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(256 * 1024);
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION);

        // Embedding tensor.
        let emb = self.embedding();
        buf.put_u32_le(emb.num_models() as u32);
        buf.put_u32_le(emb.max_layers() as u32);
        buf.put_f64_le(emb.scale_ms());
        for row in 0..emb.num_models() {
            put_string(&mut buf, emb.model_name_of(row));
            buf.put_u32_le(emb.layer_count(row) as u32);
        }
        put_f32s(&mut buf, emb.raw_values());

        // Target transform.
        put_f32s(&mut buf, &self.transform_arrays().concat());

        // Network: activation tag + parameter snapshot.
        buf.put_u8(activation_tag(self.activation()));
        let snapshot = self.export_net_params();
        buf.put_u32_le(snapshot.len() as u32);
        for t in &snapshot {
            buf.put_u32_le(t.shape().len() as u32);
            for d in t.shape() {
                buf.put_u32_le(*d as u32);
            }
            put_f32s(&mut buf, t.data());
        }
        buf.freeze()
    }

    /// Reconstructs an estimator from [`CnnEstimator::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] on corrupt or version-mismatched blobs.
    pub fn from_bytes(mut blob: Bytes) -> Result<Self, LoadError> {
        if blob.remaining() < 6 {
            return Err(LoadError::Corrupt("header"));
        }
        if blob.get_u32_le() != MAGIC {
            return Err(LoadError::Corrupt("magic"));
        }
        let version = blob.get_u16_le();
        if version != VERSION {
            return Err(LoadError::Version(version));
        }
        let buf = &mut blob;
        if buf.remaining() < 16 {
            return Err(LoadError::Corrupt("embedding header"));
        }
        let num_models = buf.get_u32_le() as usize;
        let max_layers = buf.get_u32_le() as usize;
        let scale_ms = buf.get_f64_le();
        let mut names = Vec::with_capacity(num_models);
        let mut counts = Vec::with_capacity(num_models);
        for _ in 0..num_models {
            names.push(get_string(buf)?);
            if buf.remaining() < 4 {
                return Err(LoadError::Corrupt("layer count"));
            }
            counts.push(buf.get_u32_le() as usize);
        }
        let values = get_f32s(buf)?;
        if values.len() != 3 * num_models * max_layers {
            return Err(LoadError::Corrupt("embedding values"));
        }

        // Shape validation (exactly 4×3 values) lives in
        // `CnnEstimator::rebuild`, the single choke point every loader
        // goes through.
        let transform_flat = get_f32s(buf)?;

        if buf.remaining() < 5 {
            return Err(LoadError::Corrupt("network header"));
        }
        let activation = activation_from_tag(buf.get_u8())?;
        let n_params = buf.get_u32_le() as usize;
        let mut snapshot = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            if buf.remaining() < 4 {
                return Err(LoadError::Corrupt("tensor rank"));
            }
            let rank = buf.get_u32_le() as usize;
            if buf.remaining() < rank * 4 {
                return Err(LoadError::Corrupt("tensor shape"));
            }
            let shape: Vec<usize> = (0..rank).map(|_| buf.get_u32_le() as usize).collect();
            let data = get_f32s(buf)?;
            if data.len() != shape.iter().product::<usize>() {
                return Err(LoadError::Corrupt("tensor data"));
            }
            snapshot.push(omniboost_tensor::Tensor::from_vec(data, &shape));
        }

        CnnEstimator::rebuild(
            names,
            counts,
            max_layers,
            scale_ms,
            values,
            transform_flat,
            activation,
            snapshot,
        )
    }

    /// Writes the estimator to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        fs::write(path, self.to_bytes())
    }

    /// Loads an estimator previously written by [`CnnEstimator::save`].
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] for I/O, corruption or version problems.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, LoadError> {
        let raw = fs::read(path)?;
        Self::from_bytes(Bytes::from(raw))
    }
}

/// Activation tag encoding for the blob.
pub(crate) fn activation_tag(kind: ActivationKind) -> u8 {
    match kind {
        ActivationKind::Gelu => 0,
        ActivationKind::Relu => 1,
    }
}

/// Inverse of [`activation_tag`].
pub(crate) fn activation_from_tag(tag: u8) -> Result<ActivationKind, LoadError> {
    match tag {
        0 => Ok(ActivationKind::Gelu),
        1 => Ok(ActivationKind::Relu),
        _ => Err(LoadError::Corrupt("activation tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;
    use crate::train::TrainConfig;
    use omniboost_hw::{Board, Device, Mapping, Workload};
    use omniboost_models::ModelId;

    fn trained() -> (Board, CnnEstimator) {
        let board = Board::hikey970();
        let dataset = DatasetConfig {
            num_workloads: 24,
            threads: 4,
            ..DatasetConfig::default()
        }
        .generate(&board);
        let (est, _) = CnnEstimator::train(
            &board,
            &dataset,
            &TrainConfig {
                epochs: 4,
                ..TrainConfig::default()
            },
        );
        (board, est)
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let (_, est) = trained();
        let blob = est.to_bytes();
        let restored = CnnEstimator::from_bytes(blob).expect("roundtrip");
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::Vgg16]);
        let m = Mapping::all_on(&w, Device::Gpu);
        let a = est.predict(&w, &m).unwrap();
        let b = restored.predict(&w, &m).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn save_load_via_filesystem() {
        let (_, est) = trained();
        let dir = std::env::temp_dir().join("omniboost-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("estimator.bin");
        est.save(&path).unwrap();
        let restored = CnnEstimator::load(&path).expect("load");
        let w = Workload::from_ids([ModelId::MobileNet]);
        let m = Mapping::all_on(&w, Device::BigCpu);
        assert_eq!(
            est.predict(&w, &m).unwrap(),
            restored.predict(&w, &m).unwrap()
        );
        std::fs::remove_file(&path).ok();
    }

    /// Byte offset of the target transform's length field inside a blob
    /// (everything before it is the header + embedding section).
    fn transform_offset(est: &CnnEstimator) -> usize {
        let emb = est.embedding();
        let mut off = 4 + 2; // magic + version
        off += 4 + 4 + 8; // num_models + max_layers + scale_ms
        for row in 0..emb.num_models() {
            off += 4 + emb.model_name_of(row).len() + 4; // name + layer count
        }
        off + 8 + 4 * emb.raw_values().len() // values length + body
    }

    #[test]
    fn truncated_transform_roundtrips_to_corrupt_not_panic() {
        // A persisted blob whose target transform lost one value used to
        // reach `copy_from_slice` on a ragged chunk and panic; it must
        // round-trip to `LoadError::Corrupt` instead.
        let (_, est) = trained();
        let blob = est.to_bytes().to_vec();
        let off = transform_offset(&est);
        let len = u64::from_le_bytes(blob[off..off + 8].try_into().unwrap());
        assert_eq!(len, 12, "blob layout drifted; fix transform_offset");
        let mut bad = blob.clone();
        bad[off..off + 8].copy_from_slice(&11u64.to_le_bytes());
        bad.drain(off + 8..off + 12); // drop one f32; rest stays aligned
        assert!(matches!(
            CnnEstimator::from_bytes(Bytes::from(bad)),
            Err(LoadError::Corrupt("target transform"))
        ));
    }

    #[test]
    fn short_multiple_of_three_transform_is_rejected_not_zero_filled() {
        // 9 values chunk evenly into 3×3, which the old rebuild accepted
        // and silently zero-filled the fourth row with — corrupting
        // predictions instead of failing the load.
        let (_, est) = trained();
        let blob = est.to_bytes().to_vec();
        let off = transform_offset(&est);
        let mut bad = blob.clone();
        bad[off..off + 8].copy_from_slice(&9u64.to_le_bytes());
        bad.drain(off + 8..off + 8 + 12); // drop three f32s
        assert!(matches!(
            CnnEstimator::from_bytes(Bytes::from(bad)),
            Err(LoadError::Corrupt("target transform"))
        ));
        // An oversized transform is equally corrupt: splice 4 extra bytes.
        let mut long = blob;
        long[off..off + 8].copy_from_slice(&13u64.to_le_bytes());
        long.splice(off + 8..off + 8, 0.25f32.to_le_bytes());
        assert!(matches!(
            CnnEstimator::from_bytes(Bytes::from(long)),
            Err(LoadError::Corrupt("target transform"))
        ));
    }

    #[test]
    fn corrupt_blobs_are_rejected() {
        let (_, est) = trained();
        let blob = est.to_bytes();
        // Wrong magic.
        let mut bad = blob.to_vec();
        bad[0] ^= 0xFF;
        assert!(matches!(
            CnnEstimator::from_bytes(Bytes::from(bad)),
            Err(LoadError::Corrupt(_))
        ));
        // Truncation.
        let short = blob.slice(0..blob.len() / 2);
        assert!(CnnEstimator::from_bytes(short).is_err());
        // Future version.
        let mut versioned = blob.to_vec();
        versioned[4] = 0xFF;
        assert!(matches!(
            CnnEstimator::from_bytes(Bytes::from(versioned)),
            Err(LoadError::Version(_))
        ));
    }
}
