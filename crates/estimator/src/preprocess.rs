//! Target preprocessing (§V): the paper standardizes the dataset output
//! "to address large variations and non-uniform distribution", then
//! normalizes to `[0, 1]`. Measured throughputs span more than two
//! orders of magnitude (a saturated heavy mix runs at ~0.1 inf/s, a light
//! mix at ~15), so the standardization operates in **log domain**
//! (`log1p`): without it, L1 training is blind to exactly the
//! low-throughput regime the scheduler must rank correctly, and the MCTS
//! exploits the estimator into terrible mappings.

use serde::{Deserialize, Serialize};

/// Per-dimension log-standardize-then-normalize transform for the
/// estimator's three regression targets.
///
/// ```
/// use omniboost_estimator::TargetTransform;
///
/// let data = vec![[1.0f32, 10.0, 100.0], [3.0, 30.0, 300.0], [2.0, 20.0, 200.0]];
/// let t = TargetTransform::fit(&data);
/// let z = t.apply([2.0, 20.0, 200.0]);
/// assert!(z.iter().all(|v| (0.0..=1.0).contains(v)));
/// let back = t.invert(z);
/// for (a, b) in back.iter().zip([2.0, 20.0, 200.0]) {
///     assert!((a - b).abs() / b < 1e-3);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetTransform {
    mean: [f32; 3],
    std: [f32; 3],
    /// Min/max of the standardized training targets.
    z_min: [f32; 3],
    z_max: [f32; 3],
}

impl TargetTransform {
    /// Fits the transform on training targets.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn fit(targets: &[[f32; 3]]) -> Self {
        assert!(!targets.is_empty(), "cannot fit on an empty target set");
        let n = targets.len() as f32;
        let logs: Vec<[f32; 3]> = targets
            .iter()
            .map(|t| t.map(|v| v.max(0.0).ln_1p()))
            .collect();
        let targets = &logs;
        let mut mean = [0.0f32; 3];
        for t in targets {
            for d in 0..3 {
                mean[d] += t[d];
            }
        }
        mean.iter_mut().for_each(|m| *m /= n);
        let mut var = [0.0f32; 3];
        for t in targets {
            for d in 0..3 {
                var[d] += (t[d] - mean[d]).powi(2);
            }
        }
        let std = var.map(|v| (v / n).sqrt().max(1e-8));
        let mut z_min = [f32::MAX; 3];
        let mut z_max = [f32::MIN; 3];
        for t in targets {
            for d in 0..3 {
                let z = (t[d] - mean[d]) / std[d];
                z_min[d] = z_min[d].min(z);
                z_max[d] = z_max[d].max(z);
            }
        }
        for d in 0..3 {
            if z_max[d] - z_min[d] < 1e-8 {
                z_max[d] = z_min[d] + 1.0;
            }
        }
        Self {
            mean,
            std,
            z_min,
            z_max,
        }
    }

    /// Maps a raw target into the normalized training space.
    pub fn apply(&self, raw: [f32; 3]) -> [f32; 3] {
        std::array::from_fn(|d| {
            let z = (raw[d].max(0.0).ln_1p() - self.mean[d]) / self.std[d];
            // Clamp so validation samples outside the training range stay
            // within the unit interval the network was trained on.
            ((z - self.z_min[d]) / (self.z_max[d] - self.z_min[d])).clamp(0.0, 1.0)
        })
    }

    /// Flattens the four per-dimension arrays (persistence support).
    pub(crate) fn arrays(&self) -> [[f32; 3]; 4] {
        [self.mean, self.std, self.z_min, self.z_max]
    }

    /// Rebuilds a transform from [`TargetTransform::arrays`] output.
    pub(crate) fn from_arrays(a: [[f32; 3]; 4]) -> Self {
        Self {
            mean: a[0],
            std: a[1],
            z_min: a[2],
            z_max: a[3],
        }
    }

    /// Inverse transform, mapping network outputs back to raw units.
    pub fn invert(&self, normalized: [f32; 3]) -> [f32; 3] {
        std::array::from_fn(|d| {
            let z = normalized[d] * (self.z_max[d] - self.z_min[d]) + self.z_min[d];
            (z * self.std[d] + self.mean[d]).exp_m1().max(0.0)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_lands_in_unit_interval() {
        let data: Vec<[f32; 3]> = (0..20)
            .map(|i| [i as f32, (i * i) as f32, 1.0 + 0.1 * i as f32])
            .collect();
        let t = TargetTransform::fit(&data);
        for s in &data {
            let z = t.apply(*s);
            assert!(z.iter().all(|v| (0.0..=1.0).contains(v)), "{z:?}");
        }
    }

    #[test]
    fn roundtrip_within_training_range() {
        let data: Vec<[f32; 3]> = (0..10).map(|i| [i as f32, 2.0 * i as f32, 5.0]).collect();
        let t = TargetTransform::fit(&data);
        for s in &data {
            let back = t.invert(t.apply(*s));
            for d in 0..2 {
                assert!((back[d] - s[d]).abs() < 1e-3, "{back:?} vs {s:?}");
            }
        }
    }

    #[test]
    fn constant_dimension_does_not_blow_up() {
        let data = vec![[1.0f32, 1.0, 1.0]; 5];
        let t = TargetTransform::fit(&data);
        let z = t.apply([1.0, 1.0, 1.0]);
        assert!(z.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn out_of_range_is_clamped() {
        let data = vec![[0.0f32, 0.0, 0.0], [1.0, 1.0, 1.0]];
        let t = TargetTransform::fit(&data);
        let z = t.apply([10.0, -10.0, 0.5]);
        assert_eq!(z[0], 1.0);
        assert_eq!(z[1], 0.0);
        assert!((0.0..=1.0).contains(&z[2]));
    }
}
