//! A/B overhead of recording vs no-op telemetry on the serving path.
//!
//! Replays the **same seeded trace** through two otherwise identical
//! `ServingSim`s — one with the default `Telemetry::noop()` handle, one
//! with `Telemetry::recording()` attached — and compares the decision
//! latency the simulator actually measured (the span-instrumented
//! search/memo path is exactly where the recording handle spends its
//! atomics). Arms are interleaved per repeat so thermal and cache
//! drift hit both equally, and each (arm, seed) cell keeps its
//! best-of-N repeat, so the comparison is floor-vs-floor rather than
//! noise-vs-noise.
//!
//! Writes `BENCH_telemetry_overhead.json`. The acceptance bar of the
//! telemetry PR: mean decision latency with a recording handle stays
//! within **3%** of the no-op arm (full mode only — smoke traces are
//! too short for the ratio to mean anything, and smoke never rewrites
//! the snapshot). The run also cross-checks that both arms produce the
//! **same report digest**: observability must never perturb decisions.
//!
//! `SMOKE=1` shrinks the trace and repeat count so CI finishes in
//! seconds.

use omniboost_bench::{config_digest, trace_config_pairs};
use omniboost_hw::{AnalyticModel, Board};
use omniboost_models::{ArrivalProcess, ArrivalTrace, TraceConfig};
use omniboost_serve::{
    LatencyStats, OnlineConfig, SearchBudget, ServingConfig, ServingSim, Telemetry,
};

/// The overhead bar: recording-arm mean decision latency may exceed
/// the no-op arm's by at most this fraction.
const MAX_OVERHEAD: f64 = 0.03;

struct BenchScale {
    horizon_ms: u64,
    cold_iterations: usize,
    warm_iterations: usize,
    repeats: usize,
    trace_seeds: &'static [u64],
}

impl BenchScale {
    fn full() -> Self {
        Self {
            horizon_ms: 60_000,
            cold_iterations: 300,
            warm_iterations: 100,
            repeats: 5,
            trace_seeds: &[7, 1007, 2007],
        }
    }

    fn smoke() -> Self {
        Self {
            horizon_ms: 8_000,
            cold_iterations: 60,
            warm_iterations: 24,
            repeats: 2,
            trace_seeds: &[7],
        }
    }
}

fn trace_cfg(scale: &BenchScale) -> TraceConfig {
    TraceConfig {
        horizon_ms: scale.horizon_ms,
        mean_lifetime_ms: scale.horizon_ms as f64 / 8.0,
        ..TraceConfig::default()
    }
}

fn process(scale: &BenchScale) -> ArrivalProcess {
    // Bursty keeps both warm and cold decision kinds exercised: bursts
    // force fresh placements (cold) and the steady tail reschedules
    // around departures (warm + memo).
    ArrivalProcess::Bursty {
        on_rate_per_s: 1.0,
        on_ms: scale.horizon_ms / 9,
        off_ms: scale.horizon_ms / 6,
    }
}

/// One run of one arm. Returns (report digest, decisions, pooled mean
/// decision latency in ms, spans retained by the handle).
fn run_arm(
    trace: &ArrivalTrace,
    scale: &BenchScale,
    telemetry: &Telemetry,
) -> (u64, usize, f64, usize) {
    let config = ServingConfig {
        online: OnlineConfig {
            cold_budget: SearchBudget::with_iterations(scale.cold_iterations),
            warm_budget: SearchBudget::with_iterations(scale.warm_iterations),
            ..OnlineConfig::default()
        },
        ..ServingConfig::warm()
    };
    let mut sim = ServingSim::new(vec![Board::hikey970(); 2], config, AnalyticModel::new);
    sim.set_telemetry(telemetry.clone());
    let report = sim.run(trace, scale.horizon_ms);
    let s = &report.summary;
    // Pooled mean across every decision kind, weighted by count — the
    // per-kind LatencyStats are histogram-backed, but count and mean
    // are exact, so the weighted mean is too.
    let pooled = |stats: &[&LatencyStats]| -> f64 {
        let n: usize = stats.iter().map(|l| l.count).sum();
        if n == 0 {
            return 0.0;
        }
        stats
            .iter()
            .map(|l| l.mean_ms * l.count as f64)
            .sum::<f64>()
            / n as f64
    };
    let mean_ms = pooled(&[&s.cold, &s.warm, &s.memo]);
    (
        report.digest(),
        s.decisions,
        mean_ms,
        telemetry.spans().len(),
    )
}

fn main() {
    let smoke = std::env::var_os("SMOKE").is_some_and(|v| v != "0" && !v.is_empty());
    let scale = if smoke {
        BenchScale::smoke()
    } else {
        BenchScale::full()
    };

    let mut rows = Vec::new();
    let mut all_pass = true;
    for &seed in scale.trace_seeds {
        let trace = ArrivalTrace::generate(process(&scale), &trace_cfg(&scale), seed);

        // Interleaved repeats; keep the fastest mean per arm.
        let mut noop_best = f64::INFINITY;
        let mut rec_best = f64::INFINITY;
        let mut noop_digest = 0u64;
        let mut rec_digest = 0u64;
        let mut decisions = 0usize;
        let mut spans_retained = 0usize;
        for _ in 0..scale.repeats {
            let (d, n, mean_ms, _) = run_arm(&trace, &scale, &Telemetry::noop());
            noop_digest = d;
            decisions = n;
            noop_best = noop_best.min(mean_ms);

            let recording = Telemetry::recording();
            let (d, _, mean_ms, spans) = run_arm(&trace, &scale, &recording);
            rec_digest = d;
            spans_retained = spans;
            rec_best = rec_best.min(mean_ms);
        }
        assert_eq!(
            noop_digest, rec_digest,
            "recording telemetry perturbed the replay digest (seed {seed})"
        );

        let overhead = if noop_best > 0.0 {
            rec_best / noop_best - 1.0
        } else {
            0.0
        };
        // The bar only binds in full mode: smoke decisions are so few
        // and so fast that the ratio is pure scheduler noise.
        let pass = smoke || overhead <= MAX_OVERHEAD;
        all_pass &= pass;

        let mut drive = trace_config_pairs(&trace_cfg(&scale));
        drive.push(("boards", "2".to_string()));
        drive.push(("cold_iterations", scale.cold_iterations.to_string()));
        drive.push(("process", format!("{:?}", process(&scale))));
        drive.push(("repeats", scale.repeats.to_string()));
        drive.push(("seed", seed.to_string()));
        drive.push(("warm_iterations", scale.warm_iterations.to_string()));
        let digest = config_digest(&drive);

        println!(
            "seed {seed}: mean decision noop {noop_best:.4} ms -> recording {rec_best:.4} ms \
             ({:+.2}%), {decisions} decisions, {spans_retained} spans retained, \
             replay digest {noop_digest:#018x} [{}]",
            overhead * 100.0,
            if pass { "pass" } else { "FAIL" },
        );
        rows.push(format!(
            concat!(
                "    {{\"seed\": {}, \"config_digest\": \"{:#018x}\", ",
                "\"decisions\": {}, \"spans_retained\": {}, ",
                "\"noop_mean_decision_ms\": {:.5}, ",
                "\"recording_mean_decision_ms\": {:.5}, ",
                "\"overhead_frac\": {:.5}, ",
                "\"replay_digest\": \"{:#018x}\", \"pass\": {}}}"
            ),
            seed,
            digest,
            decisions,
            spans_retained,
            noop_best,
            rec_best,
            overhead,
            noop_digest,
            pass,
        ));
    }

    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"telemetry_overhead\",\n",
            "  \"trace_seeds\": {:?},\n",
            "  \"horizon_ms\": {},\n",
            "  \"repeats\": {},\n",
            "  \"max_overhead_frac\": {},\n",
            "  \"host_threads\": {},\n",
            "  \"note\": \"Same seeded bursty trace replayed through identical ServingSims, ",
            "one with Telemetry::noop() and one with Telemetry::recording(); arms ",
            "interleaved per repeat, best-of-N mean decision latency per arm ",
            "(pooled over cold/warm/memo kinds, count-weighted). pass = recording ",
            "mean within max_overhead_frac of noop mean; both arms must produce ",
            "the same replay digest\",\n",
            "  \"all_pass\": {},\n",
            "  \"rows\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale.trace_seeds,
        scale.horizon_ms,
        scale.repeats,
        MAX_OVERHEAD,
        threads,
        all_pass,
        rows.join(",\n"),
    );
    if smoke {
        println!("smoke mode: skipping BENCH_telemetry_overhead.json rewrite\n{json}");
        return;
    }
    assert!(
        all_pass,
        "recording telemetry exceeded the {:.0}% decision-latency overhead bar",
        MAX_OVERHEAD * 100.0
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_telemetry_overhead.json"
    );
    std::fs::write(path, &json).expect("write snapshot");
    println!("wrote BENCH_telemetry_overhead.json:\n{json}");
}
