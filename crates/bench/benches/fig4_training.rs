//! Criterion bench behind **Fig. 4**: cost of one estimator training
//! epoch and of one labelled-sample generation (the 500-workload dataset
//! build).

use criterion::{criterion_group, criterion_main, Criterion};
use omniboost::estimator::{CnnEstimator, DatasetConfig, TrainConfig};
use omniboost_hw::Board;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let board = Board::hikey970();
    let mut group = c.benchmark_group("fig4_training");
    group.sample_size(10);

    group.bench_function("dataset_generation_8_workloads", |b| {
        b.iter(|| {
            DatasetConfig {
                num_workloads: 8,
                threads: 1,
                ..DatasetConfig::default()
            }
            .generate(black_box(&board))
        })
    });

    let dataset = DatasetConfig {
        num_workloads: 32,
        ..DatasetConfig::default()
    }
    .generate(&board);
    group.bench_function("train_one_epoch_32_samples", |b| {
        b.iter(|| {
            let cfg = TrainConfig {
                epochs: 1,
                ..TrainConfig::default()
            };
            CnnEstimator::train(black_box(&board), black_box(&dataset), &cfg)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
