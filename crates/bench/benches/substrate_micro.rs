//! Microbenchmarks of the substrates: the from-scratch CNN's forward and
//! backward passes, the discrete-event board simulator, the analytic
//! solver, and the embedding/mask pipeline. These quantify the run-time
//! claims behind §V-B ("low number of trainable parameters" → cheap
//! estimator queries).

use criterion::{criterion_group, criterion_main, Criterion};
use omniboost::estimator::{ActivationKind, EmbeddingTensor, EstimatorNet, MaskTensor};
use omniboost::tensor::{Module, Tensor};
use omniboost_hw::{AnalyticModel, Board, Device, Mapping, NoiseModel, ThroughputModel, Workload};
use omniboost_models::{zoo, ModelId};
use std::hint::black_box;

fn bench_substrates(c: &mut Criterion) {
    let board = Board::hikey970();
    let mut group = c.benchmark_group("substrate_micro");
    group.sample_size(20);

    // CNN forward / forward+backward on a batch of one.
    let mut net = EstimatorNet::new(11, 37, ActivationKind::Gelu, 1);
    let x = Tensor::randn(&[1, 3, 11, 37], 2);
    group.bench_function("estimator_forward", |b| {
        b.iter(|| net.forward(black_box(&x)))
    });
    group.bench_function("estimator_forward_backward", |b| {
        b.iter(|| {
            let y = net.forward(black_box(&x));
            net.zero_grad();
            net.backward(&Tensor::full(y.shape(), 1.0))
        })
    });

    // Embedding + mask construction.
    let models = zoo::build_all();
    group.bench_function("embedding_profile_zoo", |b| {
        b.iter(|| EmbeddingTensor::profile(black_box(&board), &models, NoiseModel::none()))
    });
    let embedding = EmbeddingTensor::profile(&board, &models, NoiseModel::none());
    let workload = Workload::from_ids([ModelId::Vgg19, ModelId::ResNet50, ModelId::AlexNet]);
    let mapping = Mapping::all_on(&workload, Device::Gpu);
    group.bench_function("mask_build_apply", |b| {
        b.iter(|| {
            MaskTensor::build(&embedding, black_box(&workload), black_box(&mapping))
                .unwrap()
                .apply(&embedding)
        })
    });

    // Board evaluators.
    let sim = board.simulator();
    group.bench_function("des_evaluate_3dnn", |b| {
        b.iter(|| {
            sim.evaluate(black_box(&workload), black_box(&mapping))
                .unwrap()
        })
    });
    let analytic = AnalyticModel::new(board.clone());
    group.bench_function("analytic_evaluate_3dnn", |b| {
        b.iter(|| {
            analytic
                .evaluate(black_box(&workload), black_box(&mapping))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
