//! Criterion bench behind the **budget ablation**: MCTS decision latency
//! as a function of the iteration budget (analytic evaluator isolates the
//! search cost from CNN inference cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omniboost::mcts::{Mcts, SchedulingEnv, SearchBudget};
use omniboost_bench::paper_mixes;
use omniboost_hw::{AnalyticModel, Board, Workload};

fn bench_budget(c: &mut Criterion) {
    let board = Board::hikey970();
    let workload: Workload = paper_mixes(4)[0].iter().copied().collect();
    let evaluator = AnalyticModel::new(board);
    let mut group = c.benchmark_group("ablation_budget");
    group.sample_size(10);

    for budget in [50usize, 150, 500] {
        group.bench_with_input(BenchmarkId::new("mcts", budget), &budget, |b, &budget| {
            b.iter(|| {
                let env = SchedulingEnv::new(&workload, &evaluator, 3).unwrap();
                Mcts::new(SearchBudget::with_iterations(budget)).search(&env, 3)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_budget);
criterion_main!(benches);
