//! Criterion bench behind **Fig. 5**: latency of the measurement that
//! produces every bar — evaluating a scheduler's mapping on the board —
//! for 3-, 4- and 5-DNN mixes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omniboost::Runtime;
use omniboost_bench::paper_mixes;
use omniboost_hw::{Board, Device, Mapping, Workload};
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let runtime = Runtime::new(Board::hikey970());
    let mut group = c.benchmark_group("fig5_throughput");
    group.sample_size(15);

    for k in [3usize, 4, 5] {
        let workload: Workload = paper_mixes(k)[0].iter().copied().collect();
        let mapping = Mapping::all_on(&workload, Device::Gpu);
        group.bench_with_input(BenchmarkId::new("measure_gpu_only_mix", k), &k, |b, _| {
            b.iter(|| {
                runtime
                    .measure(black_box(&workload), black_box(&mapping))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
