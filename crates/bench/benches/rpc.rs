//! RPC daemon bench: the wire path under a seeded closed-loop load
//! generator.
//!
//! Boots the real daemon on loopback and replays the same seeded
//! Poisson traces the in-process serving bench uses — but **over
//! HTTP**, one request per trace event, closed-loop (next request only
//! after the previous reply). Three load levels (0.5×, 1×, 2× of the
//! fleet's sustainable arrival rate) measure:
//!
//! * **sustained_rps** — closed-loop request throughput, i.e. how fast
//!   the daemon can answer admission decisions back-to-back;
//! * **admission RTT** (median/p99/max) — per-request round trip:
//!   framing + JSON parse + engine tick + reply;
//! * **decision p99** — the scheduler's own per-kind decision latency,
//!   scraped from `/v1/summary` before shutdown;
//! * **drain_ms** — gate-close to daemon-down: `POST /v1/drain`
//!   through the `POST /v1/shutdown` reply (run finished, caches
//!   archived).
//!
//! Requests carry the trace's **virtual stamps**, so each row's serving
//! behaviour is deterministic and digest-pinned (`run_digest`) even
//! though the latencies are wall-clock. Every row also stamps a
//! Drive-As-Code `config_digest` over the declarative trace + load
//! configuration that produced it.
//!
//! Writes `BENCH_rpc.json`. `SMOKE=1` (the CI mode) shrinks the trace
//! and **does not** rewrite the snapshot.

use omniboost_bench::{config_digest, trace_config_pairs};
use omniboost_hw::{AnalyticModel, Board};
use omniboost_models::{ArrivalProcess, ArrivalTrace, TraceConfig};
use omniboost_rpc::api::ShutdownRequest;
use omniboost_rpc::client::{ClientConfig, RpcClient};
use omniboost_rpc::loadgen::{replay_trace, StampMode};
use omniboost_rpc::servers::{RpcServer, ServerConfig};
use omniboost_rpc::Json;
use omniboost_serve::{OnlineConfig, SearchBudget, ServingConfig};
use std::time::Instant;

const BOARDS: usize = 2;
/// Sustainable arrival rate per board (jobs/s) at the trace's mean
/// lifetime — the 1× anchor (mirrors `benches/admission.rs`).
const BASE_RATE_PER_BOARD: f64 = 0.25;

struct BenchScale {
    horizon_ms: u64,
    loads: &'static [f64],
    seed: u64,
}

impl BenchScale {
    fn full() -> Self {
        Self {
            horizon_ms: 60_000,
            loads: &[0.5, 1.0, 2.0],
            seed: 42,
        }
    }

    fn smoke() -> Self {
        Self {
            horizon_ms: 8_000,
            loads: &[1.0],
            seed: 42,
        }
    }
}

fn trace_cfg(scale: &BenchScale) -> TraceConfig {
    TraceConfig {
        horizon_ms: scale.horizon_ms,
        mean_lifetime_ms: scale.horizon_ms as f64 / 8.0,
        ..TraceConfig::default()
    }
}

fn serving_config() -> ServingConfig {
    ServingConfig {
        online: OnlineConfig {
            cold_budget: SearchBudget::with_iterations(60),
            warm_budget: SearchBudget::with_iterations(24),
            ..OnlineConfig::default()
        },
        ..ServingConfig::warm()
    }
}

/// Decision-latency p99s scraped from the `/v1/summary` snapshot.
fn decision_p99(summary: &Json, kind: &str) -> f64 {
    summary
        .get(kind)
        .and_then(|k| k.get("p99_ms"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
}

fn main() {
    let smoke = std::env::var_os("SMOKE").is_some_and(|v| v != "0" && !v.is_empty());
    let scale = if smoke {
        BenchScale::smoke()
    } else {
        BenchScale::full()
    };

    let mut rows = Vec::new();
    for &load in scale.loads {
        let rate_per_s = load * BASE_RATE_PER_BOARD * BOARDS as f64;
        let trace = ArrivalTrace::generate(
            ArrivalProcess::Poisson { rate_per_s },
            &trace_cfg(&scale),
            scale.seed,
        );

        let server = RpcServer::start(
            ServerConfig::default(),
            vec![Board::hikey970(); BOARDS],
            serving_config(),
            AnalyticModel::new,
        )
        .expect("bind loopback");
        let mut client =
            RpcClient::connect(ClientConfig::new(server.addr().to_string())).expect("dial daemon");

        let report = replay_trace(&mut client, &trace, StampMode::Virtual).expect("replay");
        let summary = client.summary().expect("summary scrape");

        let drain_started = Instant::now();
        client.drain().expect("drain");
        let shutdown = client
            .shutdown(&ShutdownRequest {
                horizon_ms: Some(scale.horizon_ms),
            })
            .expect("shutdown");
        let drain_ms = drain_started.elapsed().as_secs_f64() * 1e3;
        server.join();

        let mut drive = trace_config_pairs(&trace_cfg(&scale));
        drive.push(("load", format!("{load:?}")));
        drive.push(("rate_per_s", format!("{rate_per_s:?}")));
        drive.push(("boards", BOARDS.to_string()));
        drive.push(("seed", scale.seed.to_string()));
        drive.push(("stamp_mode", "virtual".to_string()));
        let digest = config_digest(&drive);

        println!(
            "{load:.1}x ({rate_per_s:.2}/s): {} requests in {:.0} ms -> {:.0} req/s sustained; \
             admission p99 {:.3} ms (median {:.3}, max {:.3}); decision p99 cold {:.2} / warm \
             {:.2} / memo {:.4} ms; drain->down {drain_ms:.1} ms; run digest {:#018x}",
            report.requests,
            report.elapsed_ms,
            report.sustained_rps,
            report.rtt.p99_ms,
            report.rtt.median_ms,
            report.rtt.max_ms,
            decision_p99(&summary, "cold"),
            decision_p99(&summary, "warm"),
            decision_p99(&summary, "memo"),
            shutdown.digest,
        );

        rows.push(format!(
            concat!(
                "    {{\"load\": {}, \"rate_per_s\": {:.4}, \"config_digest\": \"{:#018x}\", ",
                "\"run_digest\": \"{:#018x}\", \"requests\": {}, \"submits\": {}, ",
                "\"departs\": {}, \"placed\": {}, \"queued\": {}, \"rejected\": {}, ",
                "\"sustained_rps\": {:.2}, ",
                "\"admission_rtt_ms\": {{\"median\": {:.4}, \"p99\": {:.4}, \"max\": {:.4}}}, ",
                "\"decision_p99_ms\": {{\"cold\": {:.4}, \"warm\": {:.4}, \"memo\": {:.5}}}, ",
                "\"drain_ms\": {:.2}, \"left_in_queue\": {}}}"
            ),
            load,
            rate_per_s,
            digest,
            shutdown.digest,
            report.requests,
            report.submits,
            report.departs,
            report.placed,
            report.queued,
            report.rejected,
            report.sustained_rps,
            report.rtt.median_ms,
            report.rtt.p99_ms,
            report.rtt.max_ms,
            decision_p99(&summary, "cold"),
            decision_p99(&summary, "warm"),
            decision_p99(&summary, "memo"),
            drain_ms,
            shutdown.left_in_queue,
        ));
    }

    if smoke {
        println!("SMOKE=1: skipping BENCH_rpc.json rewrite");
        return;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"rpc\",\n",
            "  \"seed\": {},\n",
            "  \"horizon_ms\": {},\n",
            "  \"boards\": {},\n",
            "  \"base_rate_per_board_s\": {},\n",
            "  \"note\": \"Closed-loop loadgen over loopback HTTP against the live daemon: ",
            "one request per seeded trace event, next request only after the previous ",
            "reply. Requests carry virtual trace stamps, so run_digest is deterministic ",
            "per row and equals the in-process ServingSim digest for the same trace ",
            "(pinned by crates/rpc/tests/daemon.rs); latencies are wall-clock. ",
            "admission_rtt_ms is the full wire round trip (framing + parse + engine ",
            "tick); decision_p99_ms is the scheduler's own latency from /v1/summary; ",
            "drain_ms spans POST /v1/drain through the /v1/shutdown reply (run ",
            "finished, caches archived). config_digest is the FNV-1a hash of the ",
            "declarative trace + load configuration (Drive-As-Code provenance).\",\n",
            "  \"rows\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale.seed,
        scale.horizon_ms,
        BOARDS,
        BASE_RATE_PER_BOARD,
        rows.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_rpc.json");
    std::fs::write(path, json).expect("write BENCH_rpc.json");
    println!("wrote {path}");
}
