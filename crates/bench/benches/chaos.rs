//! Partial-failure chaos bench: seeded chaos scripts (failures, joins,
//! in-place degrades, recoveries and fail→rejoin flaps) replayed
//! against the orchestrated fleet at three intensities, judged against
//! a chaos-free oracle run of the same traffic.
//!
//! Writes `BENCH_chaos.json`. The acceptance bars of the chaos PR,
//! evaluated inline:
//!
//! * **no losses** — `lost_jobs == 0` in every cell, chaos or not;
//! * **warm reboots engage** — flapped/recovered boards preload a
//!   nonzero number of archived evaluation-cache entries over the
//!   sweep (the cache-archive warm-boot path actually fires);
//! * **degrade-in-place pays** — at the lowest chaos intensity,
//!   keeping admissible residents on a degraded board (re-priced in
//!   place, migrating only when the priced gain clears the rebalancer
//!   bar) achieves at least the aggregate throughput of the
//!   evacuate-everything arm.
//!
//! Every row stamps a Drive-As-Code `config_digest` over the trace +
//! chaos-script + orchestrator knobs that drove it.
//!
//! `SMOKE=1` (the CI mode) shrinks horizons and budgets so the whole
//! bench runs in seconds and **does not** rewrite the JSON snapshot.

use omniboost_bench::{config_digest, fleet_script_pairs, trace_config_pairs};
use omniboost_hw::AnalyticModel;
use omniboost_models::{ArrivalProcess, ArrivalTrace, FleetScript, FleetScriptConfig, TraceConfig};
use omniboost_orchestrator::{
    BoardProfile, FleetSpec, OrchestratorConfig, OrchestratorReport, OrchestratorSim,
    RebalanceConfig,
};
use omniboost_serve::{OnlineConfig, SearchBudget};

const BOARDS: usize = 4;

struct BenchScale {
    horizon_ms: u64,
    cold_iterations: usize,
    warm_iterations: usize,
    trace_seeds: &'static [u64],
}

impl BenchScale {
    fn full() -> Self {
        Self {
            horizon_ms: 60_000,
            cold_iterations: 300,
            warm_iterations: 100,
            trace_seeds: &[42, 1042, 2042],
        }
    }

    fn smoke() -> Self {
        Self {
            horizon_ms: 15_000,
            cold_iterations: 60,
            warm_iterations: 24,
            trace_seeds: &[42],
        }
    }
}

/// One chaos intensity: every channel's mean interval is the horizon
/// divided by its expected event count, so the pressure scales with
/// the run length and the smoke run still fires events.
fn script_config(scale: &BenchScale, intensity: f64) -> FleetScriptConfig {
    let h = scale.horizon_ms as f64;
    FleetScriptConfig {
        horizon_ms: scale.horizon_ms,
        initial_boards: BOARDS,
        join_profiles: 1,
        mean_fail_interval_ms: h / (0.5 * intensity),
        mean_drain_interval_ms: 0.0,
        mean_join_interval_ms: h / (0.5 * intensity),
        mean_degrade_interval_ms: h / (1.5 * intensity),
        mean_recover_interval_ms: h / (2.0 * intensity),
        degrade_profiles: 2,
        mean_flap_interval_ms: h / (1.0 * intensity),
        flap_down_ms: scale.horizon_ms / 12,
    }
}

fn trace_cfg(scale: &BenchScale) -> TraceConfig {
    TraceConfig {
        horizon_ms: scale.horizon_ms,
        mean_lifetime_ms: scale.horizon_ms as f64 / 6.0,
        // 30% guaranteed-class arrivals with a modest floor: chaos is
        // judged on how much guaranteed attainment it costs.
        guaranteed_share: 0.3,
        guaranteed_min_tps: 0.5,
        ..TraceConfig::default()
    }
}

fn config(scale: &BenchScale, degrade_evacuates_all: bool) -> OrchestratorConfig {
    OrchestratorConfig {
        online: OnlineConfig {
            cold_budget: SearchBudget::with_iterations(scale.cold_iterations),
            warm_budget: SearchBudget::with_iterations(scale.warm_iterations),
            ..OnlineConfig::default()
        },
        rebalance: Some(RebalanceConfig::default()),
        degrade_evacuates_all,
        ..OrchestratorConfig::warm()
    }
}

fn run(
    scale: &BenchScale,
    seed: u64,
    script: &FleetScript,
    degrade_evacuates_all: bool,
) -> OrchestratorReport {
    let trace = ArrivalTrace::generate(
        ArrivalProcess::Poisson {
            rate_per_s: 0.3 * BOARDS as f64,
        },
        &trace_cfg(scale),
        seed,
    );
    let mut sim = OrchestratorSim::new(
        FleetSpec::homogeneous(BOARDS, BoardProfile::hikey970()),
        config(scale, degrade_evacuates_all),
        AnalyticModel::new,
    );
    sim.run(&trace, script, scale.horizon_ms)
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

struct Cell {
    tps: f64,
    oracle_tps: f64,
    attainment: f64,
    oracle_attainment: f64,
    lost_jobs: usize,
    evacuated: usize,
    degrade_evictions: usize,
    degrades: usize,
    recovers: usize,
    failures: usize,
    joins: usize,
    warm_boots: usize,
    warm_boot_entries: usize,
}

/// Averages one chaos arm over the trace seeds, pairing each chaos run
/// with its chaos-free oracle on the same traffic.
fn cell(scale: &BenchScale, intensity: f64, degrade_evacuates_all: bool) -> Cell {
    let cfg = script_config(scale, intensity);
    let (mut tps, mut otps) = (Vec::new(), Vec::new());
    let (mut att, mut oatt) = (Vec::new(), Vec::new());
    let mut c = Cell {
        tps: 0.0,
        oracle_tps: 0.0,
        attainment: 0.0,
        oracle_attainment: 0.0,
        lost_jobs: 0,
        evacuated: 0,
        degrade_evictions: 0,
        degrades: 0,
        recovers: 0,
        failures: 0,
        joins: 0,
        warm_boots: 0,
        warm_boot_entries: 0,
    };
    for seed in scale.trace_seeds {
        let script = FleetScript::generate(&cfg, seed ^ 0xC4A05);
        let chaos = run(scale, *seed, &script, degrade_evacuates_all);
        let oracle = run(scale, *seed, &FleetScript::none(), degrade_evacuates_all);
        tps.push(chaos.summary.mean_aggregate_tps);
        otps.push(oracle.summary.mean_aggregate_tps);
        att.push(chaos.summary.slo.guaranteed_attainment);
        oatt.push(oracle.summary.slo.guaranteed_attainment);
        c.lost_jobs += chaos.summary.lost_jobs + oracle.summary.lost_jobs;
        c.evacuated += chaos.summary.evacuated_jobs;
        c.degrade_evictions += chaos.summary.degrade_evictions;
        c.degrades += chaos.summary.board_degrades;
        c.recovers += chaos.summary.board_recovers;
        c.failures += chaos.summary.board_failures;
        c.joins += chaos.summary.board_joins;
        c.warm_boots += chaos.summary.warm_boots;
        c.warm_boot_entries += chaos.summary.warm_boot_entries;
    }
    c.tps = mean(&tps);
    c.oracle_tps = mean(&otps);
    c.attainment = mean(&att);
    c.oracle_attainment = mean(&oatt);
    c
}

fn main() {
    let smoke = std::env::var_os("SMOKE").is_some_and(|v| v != "0" && !v.is_empty());
    let scale = if smoke {
        BenchScale::smoke()
    } else {
        BenchScale::full()
    };
    let intensities = [("low", 1.0), ("medium", 2.0), ("high", 4.0)];

    let mut rows = Vec::new();
    let mut all_pass = true;
    let mut total_warm_boots = 0usize;
    let mut low_in_place_tps = 0.0;
    for (name, intensity) in intensities {
        let c = cell(&scale, intensity, false);
        if name == "low" {
            low_in_place_tps = c.tps;
        }
        total_warm_boots += c.warm_boots;
        let lost_pct = (1.0 - c.tps / c.oracle_tps.max(1e-12)) * 100.0;
        // Every join, recovery and in-place degrade is a chance to
        // preload an archived segment (degrades preload too: a repeat
        // brown-out to a profile the run has seen boots warm).
        let rejoins = c.joins + c.recovers + c.degrades;
        let warm_rate = if rejoins == 0 {
            0.0
        } else {
            c.warm_boots as f64 / rejoins as f64
        };
        let pass = c.lost_jobs == 0;
        all_pass &= pass;
        let mut drive = trace_config_pairs(&trace_cfg(&scale));
        drive.extend(fleet_script_pairs(&script_config(&scale, intensity)));
        drive.push(("boards", BOARDS.to_string()));
        drive.push(("degrade_evacuates_all", "false".into()));
        drive.push(("intensity", format!("{intensity:?}")));
        let digest = config_digest(&drive);
        println!(
            "chaos {name} (x{intensity}): {} degrades / {} recovers / {} failures / {} joins, \
             agg {:.2} inf/s vs oracle {:.2} ({lost_pct:.1}% lost), guaranteed attainment \
             {:.1}% (oracle {:.1}%), warm boots {}/{rejoins} rejoins ({} entries) [{}]",
            c.degrades,
            c.recovers,
            c.failures,
            c.joins,
            c.tps,
            c.oracle_tps,
            c.attainment * 100.0,
            c.oracle_attainment * 100.0,
            c.warm_boots,
            c.warm_boot_entries,
            if pass { "pass" } else { "FAIL" },
        );
        rows.push(format!(
            concat!(
                "    {{\"intensity\": \"{}\", \"factor\": {}, \"config_digest\": \"{:#018x}\", ",
                "\"trace_seeds\": {}, ",
                "\"board_degrades\": {}, \"board_recovers\": {}, \"board_failures\": {}, ",
                "\"board_joins\": {}, \"evacuated_jobs\": {}, \"degrade_evictions\": {}, ",
                "\"lost_jobs\": {}, \"mean_aggregate_tps\": {:.4}, \"oracle_tps\": {:.4}, ",
                "\"lost_throughput_pct\": {:.2}, ",
                "\"guaranteed_attainment\": {:.4}, \"oracle_guaranteed_attainment\": {:.4}, ",
                "\"warm_boots\": {}, \"warm_boot_entries\": {}, \"warm_boot_rate\": {:.3}, ",
                "\"pass\": {}}}"
            ),
            name,
            intensity,
            digest,
            scale.trace_seeds.len(),
            c.degrades,
            c.recovers,
            c.failures,
            c.joins,
            c.evacuated,
            c.degrade_evictions,
            c.lost_jobs,
            c.tps,
            c.oracle_tps,
            lost_pct,
            c.attainment,
            c.oracle_attainment,
            c.warm_boots,
            c.warm_boot_entries,
            warm_rate,
            pass,
        ));
    }

    // Warm reboots must actually engage somewhere in the sweep.
    let warm_pass = total_warm_boots > 0;
    all_pass &= warm_pass;
    println!(
        "warm-reboot engagement: {total_warm_boots} warm boots across the sweep [{}]",
        if warm_pass { "pass" } else { "FAIL" },
    );

    // Degrade-in-place vs evacuate-always A/B at the lowest intensity.
    let evac_all = cell(&scale, intensities[0].1, true);
    let in_place_pass = low_in_place_tps >= evac_all.tps;
    all_pass &= in_place_pass;
    println!(
        "degrade A/B (low intensity): in-place {low_in_place_tps:.2} inf/s vs evacuate-always \
         {:.2} inf/s ({:+.2}%) [{}]",
        evac_all.tps,
        (low_in_place_tps / evac_all.tps.max(1e-12) - 1.0) * 100.0,
        if in_place_pass { "pass" } else { "FAIL" },
    );
    let ab_json = format!(
        concat!(
            "  \"degrade_ab\": {{\"intensity\": \"low\", ",
            "\"in_place_tps\": {:.4}, \"evacuate_all_tps\": {:.4}, ",
            "\"in_place_gain_pct\": {:.2}, \"evacuate_all_evacuated_jobs\": {}, \"pass\": {}}}"
        ),
        low_in_place_tps,
        evac_all.tps,
        (low_in_place_tps / evac_all.tps.max(1e-12) - 1.0) * 100.0,
        evac_all.evacuated,
        in_place_pass,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"chaos\",\n",
            "  \"trace_seeds\": {:?},\n",
            "  \"horizon_ms\": {},\n",
            "  \"boards\": {},\n",
            "  \"note\": \"Seeded chaos scripts (failures, joins, in-place degrades to a ",
            "weaker profile pool, recoveries, fail->rejoin flaps) replayed against a ",
            "{}-board orchestrated fleet under Poisson traffic with 30% guaranteed-class ",
            "arrivals. oracle_tps is the same traffic replayed with no chaos script, so ",
            "lost_throughput_pct prices the chaos itself. Degraded boards keep every ",
            "resident the weaker profile still admits (re-priced in place; migrations ",
            "must clear the rebalancer's priced gain bar); flapped and recovered boards ",
            "warm-boot by preloading the cache-archive segment matching their hardware ",
            "fingerprint. degrade_ab re-runs the lowest intensity with ",
            "degrade_evacuates_all = true (every resident evacuated on degrade). ",
            "config_digest is the FNV-1a hash of the declarative trace + chaos-script + ",
            "orchestrator knobs that drove the row. pass = zero lost jobs everywhere, ",
            "nonzero warm boots across the sweep, and degrade-in-place >= evacuate-always ",
            "aggregate throughput at low intensity\",\n",
            "  \"all_pass\": {},\n",
            "  \"warm_boots_total\": {},\n",
            "  \"rows\": [\n{}\n  ],\n",
            "{}\n",
            "}}\n"
        ),
        scale.trace_seeds,
        scale.horizon_ms,
        BOARDS,
        BOARDS,
        all_pass,
        total_warm_boots,
        rows.join(",\n"),
        ab_json,
    );
    if smoke {
        println!("smoke mode: skipping BENCH_chaos.json rewrite\n{json}");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
    std::fs::write(path, &json).expect("write snapshot");
    println!("wrote BENCH_chaos.json:\n{json}");
}
