//! Criterion bench behind the **§V design-time training cost**: wall
//! clock of the estimator's 100-epoch Adam run (Fig. 4) with the
//! GEMM-structured batched backward versus the seed's direct reference
//! kernels, at the paper's 400/100-sample scale plus a small config.
//! Dataset generation (the simulator-labelled workloads) is excluded
//! from every timing — this bench isolates the *training* hot path.
//!
//! Running it writes a `BENCH_estimator_training.json` snapshot with the
//! direct-vs-GEMM A/B (ms/epoch, final losses — the gradient-equivalence
//! proof — and a per-step gradient-difference probe).
//!
//! `SMOKE=1` (the CI mode) shrinks the dataset and epoch counts so the
//! whole bench runs in well under a minute and **does not** rewrite the
//! JSON snapshot.

use criterion::Criterion;
use omniboost::estimator::{
    ActivationKind, CnnEstimator, Dataset, DatasetConfig, EstimatorNet, TrainConfig, TrainHistory,
};
use omniboost::tensor::{Loss, Module, MseLoss, Tensor};
use omniboost_hw::Board;
use std::time::Instant;

/// One timed training run; returns wall-clock milliseconds + history.
fn train_once(
    board: &Board,
    dataset: &Dataset,
    epochs: usize,
    gemm_backward: bool,
) -> (f64, TrainHistory) {
    let config = TrainConfig {
        epochs,
        gemm_backward,
        ..TrainConfig::default()
    };
    let t = Instant::now();
    let (_, history) = CnnEstimator::train(board, dataset, &config);
    (t.elapsed().as_secs_f64() * 1e3, history)
}

/// Max relative parameter-gradient difference between the GEMM and
/// direct backward on one §V-shaped minibatch — the per-step half of the
/// gradient-equivalence proof (the final-loss A/B is the per-run half).
fn gradient_probe(dataset: &Dataset) -> f64 {
    let m = dataset.embedding.num_models();
    let l = dataset.embedding.max_layers();
    let batch = dataset.samples.len().min(32);
    let mut data = Vec::with_capacity(batch * 3 * m * l);
    for s in &dataset.samples[..batch] {
        data.extend_from_slice(s.input.data());
    }
    let x = Tensor::from_vec(data, &[batch, 3, m, l]);
    let target = Tensor::randn(&[batch, 3], 7);

    let mut gemm_net = EstimatorNet::new(m, l, ActivationKind::Gelu, 11);
    let mut direct_net = EstimatorNet::new(m, l, ActivationKind::Gelu, 11);
    direct_net.set_gemm_backward(false);
    let y = gemm_net.forward(&x);
    let _ = direct_net.forward(&x);
    let (_, grad) = MseLoss.compute(&y, &target);
    gemm_net.zero_grad();
    direct_net.zero_grad();
    let _ = gemm_net.backward(&grad);
    let _ = direct_net.backward(&grad);
    let mut worst = 0.0f64;
    for (pg, pd) in gemm_net.params_mut().iter().zip(direct_net.params_mut()) {
        for (a, b) in pg.grad.data().iter().zip(pd.grad.data()) {
            let rel = f64::from((a - b).abs()) / (1.0 + f64::from(b.abs()));
            worst = worst.max(rel);
        }
    }
    worst
}

struct Row {
    scale: &'static str,
    backward: &'static str,
    train_samples: usize,
    epochs: usize,
    total_ms: f64,
    history: TrainHistory,
}

fn run_scale(
    board: &Board,
    dataset: &Dataset,
    scale: &'static str,
    epochs: usize,
    reps: usize,
    rows: &mut Vec<Row>,
) -> f64 {
    let train_samples =
        ((dataset.samples.len() as f64) * TrainConfig::default().train_fraction).round() as usize;
    // Best-of-`reps` per arm: this host's clock drifts by ~±15% over
    // the minutes a full A/B takes, and the fastest observation per arm
    // is the standard drift-robust statistic. Training itself is
    // deterministic, so the history is identical across reps.
    let (direct_ms, direct_h) = (0..reps)
        .map(|_| train_once(board, dataset, epochs, false))
        .min_by(|x, y| x.0.partial_cmp(&y.0).unwrap())
        .expect("at least one rep");
    let (gemm_ms, gemm_h) = (0..reps)
        .map(|_| train_once(board, dataset, epochs, true))
        .min_by(|x, y| x.0.partial_cmp(&y.0).unwrap())
        .expect("at least one rep");
    let speedup = direct_ms / gemm_ms;
    println!(
        "estimator_training [{scale}]: direct {direct_ms:.0} ms, gemm {gemm_ms:.0} ms \
         ({speedup:.2}x), final val loss {:.6} vs {:.6}",
        direct_h.final_validation_loss(),
        gemm_h.final_validation_loss(),
    );
    rows.push(Row {
        scale,
        backward: "direct",
        train_samples,
        epochs,
        total_ms: direct_ms,
        history: direct_h,
    });
    rows.push(Row {
        scale,
        backward: "gemm",
        train_samples,
        epochs,
        total_ms: gemm_ms,
        history: gemm_h,
    });
    speedup
}

fn write_snapshot(rows: &[Row], paper_speedup: f64, probe: f64, write: bool) {
    let mut json_rows = Vec::new();
    for r in rows {
        let per_epoch = r.total_ms / r.epochs.max(1) as f64;
        // Converged-plateau statistic: single-epoch val loss wobbles a
        // few 1e-4 late in training, so the mean over the last 10
        // epochs is the robust trajectory-agreement measure.
        let tail = &r.history.validation[r.history.validation.len().saturating_sub(10)..];
        let tail_mean = tail.iter().sum::<f32>() / tail.len().max(1) as f32;
        json_rows.push(format!(
            concat!(
                "    {{\"scale\": \"{}\", \"backward\": \"{}\", \"train_samples\": {}, ",
                "\"epochs\": {}, \"total_ms\": {:.1}, \"ms_per_epoch\": {:.2}, ",
                "\"final_train_loss\": {:.6}, \"final_val_loss\": {:.6}, ",
                "\"val_loss_mean_last10\": {:.6}}}"
            ),
            r.scale,
            r.backward,
            r.train_samples,
            r.epochs,
            r.total_ms,
            per_epoch,
            r.history.final_train_loss(),
            r.history.final_validation_loss(),
            tail_mean,
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"estimator_training\",\n",
            "  \"timing\": \"best of 2 full runs per arm at paper scale (1 at small scale); ",
            "this host's clock drifts ~\\u00b115% across the minutes an A/B takes\",\n",
            "  \"paper_scale_speedup\": {:.2},\n",
            "  \"max_rel_gradient_diff_one_step\": {:.3e},\n",
            "  \"note\": \"dataset generation excluded from every timing. Rows pair the ",
            "seed's direct backward kernels against the GEMM-structured backward ",
            "(dW = G\\u00b7cols\\u1d40, dX = col2im(W\\u1d40\\u00b7G), db = row sums) at ",
            "identical shuffling, batching and initialization, so final-loss agreement ",
            "demonstrates gradient equivalence end to end; ",
            "max_rel_gradient_diff_one_step is the per-step proof on one \\u00a7V-shaped ",
            "minibatch, and the small-scale rows agree exactly. Over the full 1300-step ",
            "run the ~1e-8 per-step reordering difference amplifies into sub-1e-3 ",
            "final-epoch wobble (both trajectories orbit the same minimum), which is why ",
            "val_loss_mean_last10 — the converged-plateau statistic — is reported ",
            "alongside final_val_loss. Steady-state steps are allocation-free in the data path: the ",
            "train split is staged once into contiguous arenas (targets pre-transformed) ",
            "and every minibatch is memcpy'd into reusable tensors; conv/linear layers ",
            "hold their im2col/GEMM scratch across steps and validation runs in ",
            "inference mode (no gradient caches)\",\n",
            "  \"runs\": [\n{}\n  ]\n",
            "}}\n"
        ),
        paper_speedup,
        probe,
        json_rows.join(",\n"),
    );
    if !write {
        println!("smoke mode: skipping BENCH_estimator_training.json rewrite\n{json}");
        return;
    }
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_estimator_training.json"
    );
    std::fs::write(path, &json).expect("write snapshot");
    println!("wrote BENCH_estimator_training.json:\n{json}");
}

fn main() {
    let smoke = std::env::var_os("SMOKE").is_some_and(|v| v != "0" && !v.is_empty());
    let board = Board::hikey970();

    // Small config: a quick dataset shared by the Criterion timing group
    // and the small snapshot rows.
    let small_dataset = DatasetConfig {
        num_workloads: if smoke { 24 } else { 60 },
        threads: 4,
        ..DatasetConfig::default()
    }
    .generate(&board);

    let mut criterion = Criterion::default().configure_from_args();
    {
        let mut group = criterion.benchmark_group("estimator_training");
        group.sample_size(10);
        let epochs = if smoke { 1 } else { 2 };
        group.bench_function("small_epoch_gemm", |b| {
            b.iter(|| train_once(&board, &small_dataset, epochs, true))
        });
        group.bench_function("small_epoch_direct", |b| {
            b.iter(|| train_once(&board, &small_dataset, epochs, false))
        });
        group.finish();
    }

    let probe = gradient_probe(&small_dataset);
    let mut rows = Vec::new();
    let small_epochs = if smoke { 3 } else { 20 };
    let small_speedup = run_scale(&board, &small_dataset, "small", small_epochs, 1, &mut rows);

    // §V scale: 500 workloads -> 400 train / 100 validation samples,
    // 100 epochs (Fig. 4). Skipped in smoke mode — CI measures the
    // pipeline, not the numbers.
    let paper_speedup = if smoke {
        small_speedup
    } else {
        let paper_dataset = DatasetConfig {
            threads: 4,
            ..DatasetConfig::default()
        }
        .generate(&board);
        run_scale(&board, &paper_dataset, "paper_400x100", 100, 2, &mut rows)
    };
    write_snapshot(&rows, paper_speedup, probe, !smoke);
}
