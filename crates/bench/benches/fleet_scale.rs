//! Fleet-scale bench: orchestrator overhead as the fleet grows.
//!
//! The scaling PR's acceptance bar: with load-indexed placement,
//! batched rebalancing and sharded cells, **orchestrator overhead per
//! board per tick at 256 boards stays within 2× of the 16-board
//! figure** (near-flat), and no job is ever lost under scripted
//! fail/drain/join events.
//!
//! Each cell runs a ~2000-job Poisson trace against {16, 64, 256}
//! boards (3:1 hikey970 : hikey970-lite). The arrival rate is fixed so
//! every cell replays the same traffic; the mean job lifetime scales
//! with the board count so steady-state pressure is ~3.5 resident jobs
//! per board in every cell — the overhead comparison then isolates the
//! control plane, not queue blowup at the small end.
//!
//! Overhead is wall-clock run time minus time spent inside per-board
//! rescheduling searches (the intrinsic work that exists at any fleet
//! size), divided by ticks × boards. Placement latency p99 comes from
//! the per-decision wall clock the orchestrator records.
//!
//! Writes `BENCH_fleet_scale.json`. `SMOKE=1` (the CI mode) shrinks
//! board counts and the trace and **does not** rewrite the snapshot.

use omniboost_bench::{config_digest, trace_config_pairs};
use omniboost_hw::AnalyticModel;
use omniboost_models::{
    ArrivalProcess, ArrivalTrace, FleetEvent, FleetScript, FleetTraceEvent, TraceConfig,
};
use omniboost_orchestrator::{
    BoardProfile, CellConfig, FleetSpec, OrchestratorConfig, OrchestratorReport, OrchestratorSim,
    PlacementPolicy, RebalanceConfig,
};
use omniboost_serve::{OnlineConfig, SearchBudget};

struct BenchScale {
    horizon_ms: u64,
    rate_per_s: f64,
    board_counts: &'static [usize],
    cell_size: usize,
    cold_iterations: usize,
    warm_iterations: usize,
}

impl BenchScale {
    fn full() -> Self {
        Self {
            horizon_ms: 120_000,
            rate_per_s: 16.7, // ~2000 arrivals over the horizon
            board_counts: &[16, 64, 256],
            cell_size: 16,
            cold_iterations: 120,
            warm_iterations: 40,
        }
    }

    fn smoke() -> Self {
        Self {
            horizon_ms: 30_000,
            rate_per_s: 5.0, // ~150 arrivals
            board_counts: &[4, 8, 16],
            cell_size: 4,
            cold_iterations: 40,
            warm_iterations: 16,
        }
    }
}

/// 3:1 full : lite board mix, `n` boards.
fn fleet_spec(n: usize) -> FleetSpec {
    let profiles = (0..n)
        .map(|i| {
            if i % 4 == 3 {
                BoardProfile::hikey970_lite()
            } else {
                BoardProfile::hikey970()
            }
        })
        .collect();
    FleetSpec::heterogeneous(profiles)
}

/// Deterministic lifecycle script: one failure, one drain and two
/// joins spread over the middle of the horizon.
fn script(scale: &BenchScale) -> FleetScript {
    let h = scale.horizon_ms;
    FleetScript::new(vec![
        FleetTraceEvent {
            at_ms: h * 2 / 5,
            event: FleetEvent::BoardFail { board: 1 },
        },
        FleetTraceEvent {
            at_ms: h * 11 / 20,
            event: FleetEvent::BoardDrain { board: 2 },
        },
        FleetTraceEvent {
            at_ms: h * 7 / 10,
            event: FleetEvent::BoardJoin { profile: 0 },
        },
        FleetTraceEvent {
            at_ms: h * 7 / 10,
            event: FleetEvent::BoardJoin { profile: 0 },
        },
    ])
}

/// The cell's trace config — steady state ~3.5 resident jobs per board
/// at every fleet size. Shared with the Drive-As-Code digest so the
/// stamped provenance is exactly what drove the run.
fn cell_trace_cfg(scale: &BenchScale, boards: usize) -> TraceConfig {
    TraceConfig {
        horizon_ms: scale.horizon_ms,
        mean_lifetime_ms: boards as f64 * 3.5 / scale.rate_per_s * 1000.0,
        ..TraceConfig::default()
    }
}

/// Drive-As-Code digest over the declarative configs that shape one
/// cell: trace, fleet size and the orchestrator knobs that vary here.
fn cell_digest(scale: &BenchScale, boards: usize) -> u64 {
    let mut drive = trace_config_pairs(&cell_trace_cfg(scale, boards));
    drive.push(("boards", boards.to_string()));
    drive.push(("cell_size", scale.cell_size.to_string()));
    drive.push(("cold_iterations", scale.cold_iterations.to_string()));
    drive.push(("rate_per_s", format!("{:?}", scale.rate_per_s)));
    drive.push(("warm_iterations", scale.warm_iterations.to_string()));
    config_digest(&drive)
}

fn run_cell(scale: &BenchScale, boards: usize) -> (OrchestratorReport, f64) {
    let trace = ArrivalTrace::generate(
        ArrivalProcess::Poisson {
            rate_per_s: scale.rate_per_s,
        },
        &cell_trace_cfg(scale, boards),
        42,
    );
    let config = OrchestratorConfig {
        placement: PlacementPolicy::LeastLoaded,
        online: OnlineConfig {
            cold_budget: SearchBudget::with_iterations(scale.cold_iterations),
            warm_budget: SearchBudget::with_iterations(scale.warm_iterations),
            ..OnlineConfig::default()
        },
        rebalance: Some(RebalanceConfig {
            period_ms: 2_000,
            top_k_boards: 8,
            max_moves_per_tick: 8,
            ..RebalanceConfig::default()
        }),
        cells: Some(CellConfig {
            cell_size: scale.cell_size,
            ..CellConfig::default()
        }),
        ..OrchestratorConfig::warm()
    };
    let mut sim = OrchestratorSim::new(fleet_spec(boards), config, AnalyticModel::new);
    let start = std::time::Instant::now();
    let report = sim.run(&trace, &script(scale), scale.horizon_ms);
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    (report, wall_ms)
}

fn main() {
    let smoke = std::env::var_os("SMOKE").is_some_and(|v| v != "0" && !v.is_empty());
    let scale = if smoke {
        BenchScale::smoke()
    } else {
        BenchScale::full()
    };

    let mut rows = Vec::new();
    let mut overheads = Vec::new();
    let mut all_pass = true;
    for &boards in scale.board_counts {
        let (report, wall_ms) = run_cell(&scale, boards);
        let s = &report.summary;
        let ticks = report.ticks.len().max(1);
        let decision_ms = s.decision.mean_ms * s.decision.count as f64;
        let overhead_us_per_board_tick =
            (wall_ms - decision_ms).max(0.0) * 1000.0 / (ticks * boards) as f64;
        overheads.push(overhead_us_per_board_tick);
        let pass = s.lost_jobs == 0;
        all_pass &= pass;
        println!(
            "{boards} boards: {} jobs, {ticks} ticks, wall {wall_ms:.0} ms \
             ({decision_ms:.0} ms in searches), overhead {overhead_us_per_board_tick:.2} \
             us/board/tick, placement p99 {:.3} ms, agg {:.1} inf/s, {} moves, {} lost [{}]",
            s.arrivals,
            s.placement.p99_ms,
            s.mean_aggregate_tps,
            s.rebalance_moves,
            s.lost_jobs,
            if pass { "pass" } else { "FAIL" },
        );
        rows.push(format!(
            concat!(
                "    {{\"boards\": {}, \"config_digest\": \"{:#018x}\", ",
                "\"arrivals\": {}, \"ticks\": {}, ",
                "\"wall_ms\": {:.1}, \"decision_ms\": {:.1}, ",
                "\"overhead_us_per_board_tick\": {:.3}, ",
                "\"placement_p99_ms\": {:.4}, \"placement_count\": {}, ",
                "\"mean_aggregate_tps\": {:.2}, \"peak_queue_depth\": {}, ",
                "\"rebalance_moves\": {}, \"evacuated_jobs\": {}, \"lost_jobs\": {}, ",
                "\"pass\": {}}}"
            ),
            boards,
            cell_digest(&scale, boards),
            s.arrivals,
            ticks,
            wall_ms,
            decision_ms,
            overhead_us_per_board_tick,
            s.placement.p99_ms,
            s.placement.count,
            s.mean_aggregate_tps,
            s.peak_queue_depth,
            s.rebalance_moves,
            s.evacuated_jobs,
            s.lost_jobs,
            pass,
        ));
    }

    // The near-flat bar: largest fleet's per-board-per-tick overhead
    // within 2x of the smallest's. The smoke run exercises the pipeline
    // at toy scale, so its verdict is informational only.
    let ratio = overheads.last().unwrap() / overheads.first().unwrap().max(1e-9);
    let scaling_pass = ratio <= 2.0 || smoke;
    all_pass &= scaling_pass;
    println!(
        "scaling: overhead ratio {}x boards = {ratio:.2}x (bar <= 2.0) [{}]",
        scale.board_counts.last().unwrap() / scale.board_counts.first().unwrap(),
        if scaling_pass { "pass" } else { "FAIL" },
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"fleet_scale\",\n",
            "  \"horizon_ms\": {},\n",
            "  \"rate_per_s\": {},\n",
            "  \"cell_size\": {},\n",
            "  \"cold_iterations\": {},\n",
            "  \"warm_iterations\": {},\n",
            "  \"note\": \"Orchestrated fleets at {{16, 64, 256}} boards (3:1 hikey970 : ",
            "hikey970-lite) replaying a ~2000-job Poisson trace with lifetimes scaled so every ",
            "cell holds ~3.5 resident jobs per board; scripted fail/drain/join events ",
            "mid-trace. Load-indexed placement (LeastLoaded off a per-profile BTree index), ",
            "batched top-k rebalancing priced speculatively as a set, sharded cells with a ",
            "hysteresis cross-cell balancer. overhead_us_per_board_tick = (wall clock - time ",
            "inside per-board rescheduling searches) / (ticks x boards); scaling_pass = ",
            "largest cell within 2x of the smallest. lost_jobs must be 0 in every cell. Run ",
            "on the 1-core container, where rayon cell-parallelism is sequential — cells ",
            "still bound each rebalance decision to a constant-size neighbourhood, which is ",
            "what keeps the per-board figure flat.\",\n",
            "  \"all_pass\": {},\n",
            "  \"overhead_ratio_largest_vs_smallest\": {:.3},\n",
            "  \"scaling_pass\": {},\n",
            "  \"rows\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale.horizon_ms,
        scale.rate_per_s,
        scale.cell_size,
        scale.cold_iterations,
        scale.warm_iterations,
        all_pass,
        ratio,
        scaling_pass,
        rows.join(",\n"),
    );
    if smoke {
        println!("smoke mode: skipping BENCH_fleet_scale.json rewrite\n{json}");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet_scale.json");
    std::fs::write(path, &json).expect("write snapshot");
    println!("wrote BENCH_fleet_scale.json:\n{json}");
}
