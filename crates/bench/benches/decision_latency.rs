//! Criterion bench behind the **§V-B run-time table**: decision latency
//! of each scheduler on a 4-DNN mix (reduced budgets so the bench
//! completes in seconds; the `runtime_table` binary reports full-budget
//! numbers), plus scalar-vs-batched-vs-parallel variants of the
//! OmniBoost evaluation pipeline at the paper's full 500-iteration
//! budget. Running this bench also writes a `BENCH_decision_latency.json`
//! snapshot comparing the pipelines.

use criterion::Criterion;
use omniboost::baselines::{Genetic, GeneticConfig, GpuOnly, Mosaic, MosaicConfig};
use omniboost::mcts::{Mcts, SchedulingEnv, SearchBudget};
use omniboost::{OmniBoost, OmniBoostConfig};
use omniboost_bench::paper_mixes;
use omniboost_hw::{Board, Scheduler, Workload};
use std::hint::black_box;
use std::time::Instant;

fn bench_decisions(c: &mut Criterion, board: &Board, trained: &mut OmniBoost) {
    let workload: Workload = paper_mixes(4)[0].iter().copied().collect();
    let mut group = c.benchmark_group("decision_latency");
    group.sample_size(10);

    group.bench_function("baseline", |b| {
        let mut s = GpuOnly::new();
        b.iter(|| s.decide(black_box(board), black_box(&workload)).unwrap())
    });

    group.bench_function("mosaic_query", |b| {
        let mut s = Mosaic::with_config(MosaicConfig {
            training_samples: 900,
            ..MosaicConfig::default()
        });
        s.train(board); // pay data collection outside the query timing
        b.iter(|| s.decide(black_box(board), black_box(&workload)).unwrap())
    });

    group.bench_function("ga_small", |b| {
        let mut s = Genetic::new(GeneticConfig {
            population: 8,
            generations: 3,
            ..GeneticConfig::default()
        });
        b.iter(|| s.decide(black_box(board), black_box(&workload)).unwrap())
    });

    group.bench_function("omniboost_budget50", |b| {
        trained.set_budget(SearchBudget::with_iterations(50));
        b.iter(|| {
            trained
                .decide(black_box(board), black_box(&workload))
                .unwrap()
        })
    });

    // Scalar vs batched vs root-parallel evaluation pipelines at the
    // paper's full budget, sharing the one trained estimator.
    let est = trained.estimator();
    for (name, budget) in pipeline_variants() {
        group.bench_function(name, |b| {
            b.iter(|| {
                let env = SchedulingEnv::new(&workload, est, 3).unwrap();
                Mcts::new(budget).run(black_box(&env), 42)
            })
        });
    }
    group.finish();
}

/// The pipeline variants compared in both the bench and the snapshot:
/// equal 500-iteration budget throughout.
fn pipeline_variants() -> Vec<(&'static str, SearchBudget)> {
    vec![
        ("omniboost_scalar_budget500", SearchBudget::scalar(500)),
        (
            "omniboost_batch16_budget500",
            SearchBudget::with_iterations(500).with_batch_size(16),
        ),
        (
            "omniboost_batch64_budget500",
            SearchBudget::with_iterations(500).with_batch_size(64),
        ),
        (
            "omniboost_batch16_par4_budget500",
            SearchBudget::with_iterations(500)
                .with_batch_size(16)
                .with_parallelism(4),
        ),
    ]
}

/// Writes `BENCH_decision_latency.json`: median-of-5 decision latency and
/// achieved search reward for each pipeline variant on the heavy 4-DNN
/// mix, at equal iteration budget, on this host.
fn write_snapshot(trained: &OmniBoost) {
    let workload: Workload = paper_mixes(4)[0].iter().copied().collect();
    let est = trained.estimator();

    let mut rows = Vec::new();
    let mut scalar_ms = None;
    for (name, budget) in pipeline_variants() {
        let mut samples_ms: Vec<f64> = (0..5)
            .map(|_| {
                let env = SchedulingEnv::new(&workload, est, 3).unwrap();
                let t = Instant::now();
                let _ = Mcts::new(budget).run(&env, 42);
                t.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        samples_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples_ms[samples_ms.len() / 2];
        let env = SchedulingEnv::new(&workload, est, 3).unwrap();
        let result = Mcts::new(budget).run(&env, 42);
        if name == "omniboost_scalar_budget500" {
            scalar_ms = Some(median);
        }
        let speedup = scalar_ms.map_or(1.0, |s| s / median);
        rows.push(format!(
            concat!(
                "    {{\"pipeline\": \"{}\", \"median_decision_ms\": {:.3}, ",
                "\"speedup_vs_scalar_path\": {:.2}, \"best_reward\": {:.6}, ",
                "\"evaluations\": {}, \"memo_hits\": {}, \"unique_evaluator_queries\": {}}}"
            ),
            name,
            median,
            speedup,
            result.best_reward,
            result.evaluations,
            env.memo_hits(),
            env.memo_misses(),
        ));
    }

    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"decision_latency\",\n",
            "  \"workload\": \"{}\",\n",
            "  \"iteration_budget\": 500,\n",
            "  \"seed\": 42,\n",
            "  \"host_threads\": {},\n",
            "  \"note\": \"equal iteration budget throughout; the scalar row is the ",
            "one-query-per-iteration pipeline on today's kernels — the pre-refactor ",
            "seed pipeline measured ~2.2x slower than it on this host (1.28ms/query ",
            "vs 0.58ms) before the batched-conv and interior-split kernel work\",\n",
            "  \"pipelines\": [\n{}\n  ]\n",
            "}}\n"
        ),
        workload,
        threads,
        rows.join(",\n")
    );
    // Benches run with the package directory as CWD; pin the snapshot to
    // the workspace root.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_decision_latency.json"
    );
    std::fs::write(path, &json).expect("write snapshot");
    println!("wrote BENCH_decision_latency.json:\n{json}");
}

fn main() {
    // One design-time pass (dataset + training) shared by the timed
    // groups and the snapshot writer.
    let board = Board::hikey970();
    let (mut trained, _) = OmniBoost::design_time(&board, OmniBoostConfig::quick());
    let mut criterion = Criterion::default().configure_from_args();
    bench_decisions(&mut criterion, &board, &mut trained);
    write_snapshot(&trained);
}
