//! Criterion bench behind the **§V-B run-time table**: decision latency
//! of each scheduler on a 4-DNN mix (reduced budgets so the bench
//! completes in seconds; the `runtime_table` binary reports full-budget
//! numbers).

use criterion::{criterion_group, criterion_main, Criterion};
use omniboost::baselines::{Genetic, GeneticConfig, GpuOnly, Mosaic, MosaicConfig};
use omniboost::{OmniBoost, OmniBoostConfig};
use omniboost::mcts::SearchBudget;
use omniboost_bench::paper_mixes;
use omniboost_hw::{Board, Scheduler, Workload};
use std::hint::black_box;

fn bench_decisions(c: &mut Criterion) {
    let board = Board::hikey970();
    let workload: Workload = paper_mixes(4)[0].iter().copied().collect();
    let mut group = c.benchmark_group("decision_latency");
    group.sample_size(10);

    group.bench_function("baseline", |b| {
        let mut s = GpuOnly::new();
        b.iter(|| s.decide(black_box(&board), black_box(&workload)).unwrap())
    });

    group.bench_function("mosaic_query", |b| {
        let mut s = Mosaic::with_config(MosaicConfig {
            training_samples: 900,
            ..MosaicConfig::default()
        });
        s.train(&board); // pay data collection outside the query timing
        b.iter(|| s.decide(black_box(&board), black_box(&workload)).unwrap())
    });

    group.bench_function("ga_small", |b| {
        let mut s = Genetic::new(GeneticConfig {
            population: 8,
            generations: 3,
            ..GeneticConfig::default()
        });
        b.iter(|| s.decide(black_box(&board), black_box(&workload)).unwrap())
    });

    group.bench_function("omniboost_budget50", |b| {
        let cfg = OmniBoostConfig {
            budget: SearchBudget::with_iterations(50),
            ..OmniBoostConfig::quick()
        };
        let (mut s, _) = OmniBoost::design_time(&board, cfg);
        b.iter(|| s.decide(black_box(&board), black_box(&workload)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_decisions);
criterion_main!(benches);
