//! Criterion bench behind the **§V-B run-time table**: decision latency
//! of each scheduler on a 4-DNN mix (reduced budgets so the bench
//! completes in seconds; the `runtime_table` binary reports full-budget
//! numbers), plus scalar-vs-batched-vs-parallel variants of the
//! OmniBoost evaluation pipeline at the paper's full 500-iteration
//! budget. Running this bench also writes a `BENCH_decision_latency.json`
//! snapshot comparing the pipelines (live-terminal yield, effective
//! batch fill, memo/dedup counters) and the cross-decision evaluation
//! cache (cold vs warm decision). (The historical sticky-rollout A/B
//! rows are gone with the policy itself — budget-aware rollouts are the
//! only playout policy since the serving PR.)
//!
//! `SMOKE=1` (the CI mode) shrinks budgets/samples so the whole bench
//! runs in well under a minute and **does not** rewrite the JSON
//! snapshot — it exists to keep the serving-path metrics executing end
//! to end, not to publish numbers from a noisy shared runner.

use criterion::Criterion;
use omniboost::baselines::{Genetic, GeneticConfig, GpuOnly, Mosaic, MosaicConfig};
use omniboost::estimator::{CachedEstimator, EvalCache};
use omniboost::mcts::{Mcts, SchedulingEnv, SearchBudget};
use omniboost::{OmniBoost, OmniBoostConfig, OracleOmniBoost};
use omniboost_bench::paper_mixes;
use omniboost_hw::{Board, Scheduler, Workload};
use std::hint::black_box;
use std::time::Instant;

fn bench_decisions(c: &mut Criterion, board: &Board, trained: &mut OmniBoost, iters: usize) {
    let workload: Workload = paper_mixes(4)[0].iter().copied().collect();
    let mut group = c.benchmark_group("decision_latency");
    group.sample_size(10);

    group.bench_function("baseline", |b| {
        let mut s = GpuOnly::new();
        b.iter(|| s.decide(black_box(board), black_box(&workload)).unwrap())
    });

    group.bench_function("mosaic_query", |b| {
        let mut s = Mosaic::with_config(MosaicConfig {
            training_samples: 900,
            ..MosaicConfig::default()
        });
        s.train(board); // pay data collection outside the query timing
        b.iter(|| s.decide(black_box(board), black_box(&workload)).unwrap())
    });

    group.bench_function("ga_small", |b| {
        let mut s = Genetic::new(GeneticConfig {
            population: 8,
            generations: 3,
            ..GeneticConfig::default()
        });
        b.iter(|| s.decide(black_box(board), black_box(&workload)).unwrap())
    });

    group.bench_function("omniboost_budget50", |b| {
        trained.set_budget(SearchBudget::with_iterations(50));
        b.iter(|| {
            // This row measures a *cold* decision: clear the scheduler's
            // cross-decision cache so iteration 2+ doesn't silently
            // benchmark warm cache lookups (the explicit cold/warm
            // comparison lives in the cross_decision_cache snapshot).
            trained.eval_cache().clear();
            trained
                .decide(black_box(board), black_box(&workload))
                .unwrap()
        })
    });

    // Scalar vs batched vs root-parallel evaluation pipelines (and the
    // sticky-vs-budget-aware rollout A/B) at equal iteration budget,
    // sharing the one trained estimator.
    let est = trained.estimator();
    for (name, budget) in pipeline_variants(iters) {
        group.bench_function(name, |b| {
            b.iter(|| {
                let env = SchedulingEnv::new(&workload, est, 3).unwrap();
                Mcts::new(budget).run(black_box(&env), 42)
            })
        });
    }
    group.finish();
}

/// The pipeline variants compared in both the bench and the snapshot:
/// equal iteration budget throughout.
fn pipeline_variants(iters: usize) -> Vec<(&'static str, SearchBudget)> {
    let base = SearchBudget::with_iterations(iters);
    vec![
        ("omniboost_scalar", base.with_batch_size(1)),
        ("omniboost_batch16", base.with_batch_size(16)),
        // Quarter-budget row: the warm-path operating point online
        // serving uses for single-job-delta reschedules.
        (
            "omniboost_batch16_quarter_budget",
            SearchBudget::with_iterations(iters.div_ceil(4)).with_batch_size(16),
        ),
        ("omniboost_batch64", base.with_batch_size(64)),
        (
            "omniboost_batch16_par4",
            base.with_batch_size(16).with_parallelism(4),
        ),
    ]
}

/// Writes `BENCH_decision_latency.json`: median-of-5 decision latency,
/// achieved search reward, live-terminal yield, effective batch fill and
/// cache counters for each pipeline variant on the heavy 4-DNN mix, at
/// equal iteration budget, on this host — plus a cold/warm cross-decision
/// cache comparison. With `write: false` (smoke mode) everything is still
/// measured — so the metrics path cannot silently rot — but the snapshot
/// file is left untouched.
fn write_snapshot(trained: &OmniBoost, iters: usize, samples: usize, write: bool) {
    let workload: Workload = paper_mixes(4)[0].iter().copied().collect();
    let est = trained.estimator();

    let mut rows = Vec::new();
    let mut scalar_ms = None;
    for (name, budget) in pipeline_variants(iters) {
        let run_once = || {
            let env = SchedulingEnv::new(&workload, est, 3).unwrap();
            let t = Instant::now();
            let result = Mcts::new(budget).run(&env, 42);
            (t.elapsed().as_secs_f64() * 1e3, env, result)
        };
        // The search is deterministic per seed and each run gets a fresh
        // env, so any run's counters are representative — reuse the timed
        // runs instead of paying a separate stats run.
        let mut runs: Vec<_> = (0..samples.max(1)).map(|_| run_once()).collect();
        let mut samples_ms: Vec<f64> = runs.iter().map(|r| r.0).collect();
        samples_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples_ms[samples_ms.len() / 2];
        let (_, env, result) = runs.pop().expect("at least one run");
        if name == "omniboost_scalar" {
            scalar_ms = Some(median);
        }
        let speedup = scalar_ms.map_or(1.0, |s| s / median);
        // The search counts its own scoring rounds (summed across root
        // trees), so the fill metric cannot drift from the real split.
        let fill = if result.rounds == 0 {
            0.0
        } else {
            result.live_terminal_rollouts as f64 / result.rounds as f64
        };
        rows.push(format!(
            concat!(
                "    {{\"pipeline\": \"{}\", \"median_decision_ms\": {:.3}, ",
                "\"speedup_vs_scalar\": {:.2}, \"best_reward\": {:.6}, ",
                "\"evaluator_queries\": {}, \"terminal_rollouts\": {}, ",
                "\"live_terminal_rollouts\": {}, \"live_terminal_yield\": {:.3}, ",
                "\"avg_live_rollouts_per_round\": {:.1}, \"batch_size\": {}, ",
                "\"memo_hits\": {}, \"batch_dedup_hits\": {}}}"
            ),
            name,
            median,
            speedup,
            result.best_reward,
            result.evaluations,
            result.terminal_rollouts,
            result.live_terminal_rollouts,
            result.live_terminal_rollouts as f64 / result.iterations.max(1) as f64,
            fill,
            budget.batch_size,
            env.memo_hits(),
            env.batch_dedup_hits(),
        ));
    }

    // Cross-decision cache: the same decision repeated against a shared
    // EvalCache — the recurring-traffic serving scenario.
    let cache = EvalCache::new(8192);
    let budget = SearchBudget::with_iterations(iters).with_batch_size(16);
    let mut decision_ms = Vec::new();
    for _ in 0..3 {
        let cached = CachedEstimator::new(est, &cache);
        let env = SchedulingEnv::new(&workload, &cached, 3).unwrap();
        let t = Instant::now();
        let _ = Mcts::new(budget).run(&env, 42);
        decision_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let stats = cache.stats();
    let cache_json = format!(
        concat!(
            "{{\"capacity\": 8192, \"decisions\": 3, ",
            "\"cold_decision_ms\": {:.3}, \"warm_decision_ms\": {:.3}, ",
            "\"hits\": {}, \"misses\": {}, \"evictions\": {}, ",
            "\"hit_rate\": {:.3}}}"
        ),
        decision_ms[0],
        decision_ms[2],
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.hit_rate(),
    );

    // Baseline schedulers now share the same cross-decision caching as
    // OmniBoost (PR 2 follow-up): repeat one decision per baseline and
    // surface its cold/warm latency plus cache counters, so the fairness
    // of the comparison is itself measured.
    let mut baseline_rows = Vec::new();
    {
        let board = Board::hikey970();
        let mut ga = Genetic::new(GeneticConfig {
            population: 8,
            generations: 3,
            ..GeneticConfig::default()
        });
        let mut oracle = OracleOmniBoost::new(SearchBudget::with_iterations(60), 3, 42);
        let mut row =
            |name: &str, decide: &mut dyn FnMut(&Workload) -> Option<omniboost::EvalCacheStats>| {
                let mut times = Vec::new();
                let mut stats = None;
                for _ in 0..2 {
                    let t = Instant::now();
                    stats = decide(&workload);
                    times.push(t.elapsed().as_secs_f64() * 1e3);
                }
                let stats = stats.expect("cache enabled");
                baseline_rows.push(format!(
                    concat!(
                        "    {{\"scheduler\": \"{}\", \"cold_decision_ms\": {:.3}, ",
                        "\"warm_decision_ms\": {:.3}, \"hits\": {}, \"misses\": {}, ",
                        "\"hit_rate\": {:.3}}}"
                    ),
                    name,
                    times[0],
                    times[1],
                    stats.hits,
                    stats.misses,
                    stats.hit_rate(),
                ));
            };
        row("ga_small", &mut |w| {
            ga.decide(&board, w).unwrap();
            ga.eval_cache_stats()
        });
        row("omniboost_oracle_budget60", &mut |w| {
            oracle.decide(&board, w).unwrap();
            oracle.eval_cache_stats()
        });
    }

    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"decision_latency\",\n",
            "  \"workload\": \"{}\",\n",
            "  \"iteration_budget\": {},\n",
            "  \"seed\": 42,\n",
            "  \"host_threads\": {},\n",
            "  \"note\": \"all rows use the stage-budget-aware rollout policy (the ",
            "sticky A/B baseline was removed once nothing benchmarked against it) and ",
            "benefit from known-loss pruning at expansion. evaluator_queries counts ",
            "mappings that actually reached the estimator (memo hits, within-batch ",
            "duplicates and dead states are free); at full yield the 500-iteration ",
            "budget performs the paper's full 500 queries — the quarter-budget row is ",
            "the warm-reschedule operating point of the serving subsystem (see ",
            "BENCH_serving.json). cross_decision_cache repeats one decision against a ",
            "shared EvalCache: the warm decision is the recurring-traffic serving path ",
            "and beats every search-from-scratch number\",\n",
            "  \"pipelines\": [\n{}\n  ],\n",
            "  \"cross_decision_cache\": {},\n",
            "  \"baseline_eval_caches_note\": \"PR 3: the GA and the oracle-guided ",
            "ablation now route evaluations through the same cross-decision EvalCache ",
            "as OmniBoost (reduced budgets: ga pop8/gen3, oracle 60 iterations), so ",
            "warm-decision comparisons are cache-for-cache fair\",\n",
            "  \"baseline_eval_caches\": [\n{}\n  ]\n",
            "}}\n"
        ),
        workload,
        iters,
        threads,
        rows.join(",\n"),
        cache_json,
        baseline_rows.join(",\n"),
    );
    if !write {
        // CI smoke mode: everything above ran (so the yield/fill/cache
        // pipeline is exercised end to end) but a noisy shared runner
        // must not publish numbers.
        println!("smoke mode: skipping BENCH_decision_latency.json rewrite\n{json}");
        return;
    }
    // Benches run with the package directory as CWD; pin the snapshot to
    // the workspace root.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_decision_latency.json"
    );
    std::fs::write(path, &json).expect("write snapshot");
    println!("wrote BENCH_decision_latency.json:\n{json}");
}

fn main() {
    // An env var rather than a CLI flag: upstream criterion (which the
    // shim may be swapped back to) rejects unrecognized arguments.
    let smoke = std::env::var_os("SMOKE").is_some_and(|v| v != "0" && !v.is_empty());
    // One design-time pass (dataset + training) shared by the timed
    // groups and the snapshot writer.
    let board = Board::hikey970();
    let mut design = OmniBoostConfig::quick();
    if smoke {
        design.dataset.num_workloads = 16;
        design.training.epochs = 2;
    }
    let (mut trained, _) = OmniBoost::design_time(&board, design);
    let iters = if smoke { 100 } else { 500 };
    let mut criterion = Criterion::default().configure_from_args();
    bench_decisions(&mut criterion, &board, &mut trained, iters);
    let samples = if smoke { 1 } else { 5 };
    write_snapshot(&trained, iters, samples, !smoke);
}
