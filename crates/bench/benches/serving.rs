//! Online serving bench: cold-restart vs warm-started rescheduling
//! under live arrival traffic, on 1-board and 4-board fleets, across
//! the three trace scenarios (Poisson, bursty on/off, diurnal ramp).
//!
//! Writes `BENCH_serving.json`. The acceptance bar of the serving PR:
//! on **single-job-delta events** the warm policy must show lower
//! median decision latency at equal or better achieved (time-weighted
//! aggregate) throughput, for every scenario on both fleet sizes.
//!
//! `SMOKE=1` (the CI mode) shrinks traces and budgets so the whole
//! bench runs in seconds and **does not** rewrite the JSON snapshot.

use omniboost_bench::{config_digest, trace_config_pairs};
use omniboost_hw::{AnalyticModel, Board};
use omniboost_models::{ArrivalProcess, ArrivalTrace, TraceConfig};
use omniboost_serve::{
    AdmissionPolicy, LatencyStats, OnlineConfig, PlacementPolicy, ReschedulePolicy, SearchBudget,
    ServingConfig, ServingReport, ServingSim,
};

struct BenchScale {
    horizon_ms: u64,
    cold_iterations: usize,
    warm_iterations: usize,
    /// Trace seeds each cell averages over: a single trace's achieved
    /// throughput swings a few percent either way on saturation
    /// nonlinearities, so cold-vs-warm is judged on the mean across
    /// seeds, not one draw.
    trace_seeds: &'static [u64],
}

impl BenchScale {
    fn full() -> Self {
        Self {
            horizon_ms: 120_000,
            cold_iterations: 300,
            warm_iterations: 100,
            trace_seeds: &[42, 1042, 2042],
        }
    }

    fn smoke() -> Self {
        Self {
            horizon_ms: 10_000,
            cold_iterations: 60,
            warm_iterations: 24,
            trace_seeds: &[42],
        }
    }
}

/// The three trace scenarios, scaled to the fleet size so each board
/// sees comparable pressure: with the trace's mean lifetime this keeps
/// steady-state load around 3-4 jobs per board — heavily loaded, with
/// bursts that saturate and queue, but not pinned at the admission cap
/// where throughput becomes hypersensitive to mapping noise.
fn scenarios(boards: usize, scale: &BenchScale) -> Vec<(&'static str, ArrivalProcess)> {
    let base = 0.25 * boards as f64;
    vec![
        ("poisson", ArrivalProcess::Poisson { rate_per_s: base }),
        (
            "bursty",
            ArrivalProcess::Bursty {
                on_rate_per_s: 2.5 * base,
                on_ms: scale.horizon_ms / 9,
                off_ms: scale.horizon_ms / 6,
            },
        ),
        (
            "diurnal",
            ArrivalProcess::DiurnalRamp {
                peak_rate_per_s: 2.0 * base,
                period_ms: scale.horizon_ms,
            },
        ),
    ]
}

fn trace_cfg(scale: &BenchScale) -> TraceConfig {
    TraceConfig {
        horizon_ms: scale.horizon_ms,
        mean_lifetime_ms: scale.horizon_ms as f64 / 8.0,
        ..TraceConfig::default()
    }
}

fn run(
    process: ArrivalProcess,
    policy: ReschedulePolicy,
    boards: usize,
    scale: &BenchScale,
    seed: u64,
) -> ServingReport {
    let trace = ArrivalTrace::generate(process, &trace_cfg(scale), seed);
    let online = OnlineConfig {
        cold_budget: SearchBudget::with_iterations(scale.cold_iterations),
        warm_budget: SearchBudget::with_iterations(scale.warm_iterations),
        ..OnlineConfig::default()
    };
    let config = ServingConfig {
        policy,
        placement: PlacementPolicy::LeastLoaded,
        online,
        use_memo: policy == ReschedulePolicy::WarmStart,
        cache_path: None,
        admission: AdmissionPolicy::default(),
    };
    let mut sim = ServingSim::new(vec![Board::hikey970(); boards], config, AnalyticModel::new);
    sim.run(&trace, scale.horizon_ms)
}

fn latency_json(l: &LatencyStats) -> String {
    format!(
        "{{\"count\": {}, \"median_ms\": {:.3}, \"mean_ms\": {:.3}, \"max_ms\": {:.3}}}",
        l.count, l.median_ms, l.mean_ms, l.max_ms
    )
}

fn main() {
    let smoke = std::env::var_os("SMOKE").is_some_and(|v| v != "0" && !v.is_empty());
    let scale = if smoke {
        BenchScale::smoke()
    } else {
        BenchScale::full()
    };

    let mut rows = Vec::new();
    let mut all_pass = true;
    for boards in [1usize, 4] {
        for (name, process) in scenarios(boards, &scale) {
            // One cold and one warm run per trace seed; the cell is
            // judged on means across seeds (pooling the per-seed
            // medians), so one lucky or unlucky trace cannot decide it.
            let colds: Vec<ServingReport> = scale
                .trace_seeds
                .iter()
                .map(|s| run(process, ReschedulePolicy::ColdRestart, boards, &scale, *s))
                .collect();
            let warms: Vec<ServingReport> = scale
                .trace_seeds
                .iter()
                .map(|s| run(process, ReschedulePolicy::WarmStart, boards, &scale, *s))
                .collect();
            let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
            let pool = |rs: &[ServingReport], pick: &dyn Fn(&ServingReport) -> LatencyStats| {
                let stats: Vec<LatencyStats> = rs.iter().map(pick).collect();
                let count: usize = stats.iter().map(|s| s.count).sum();
                let with: Vec<&LatencyStats> = stats.iter().filter(|s| s.count > 0).collect();
                if with.is_empty() {
                    LatencyStats::default()
                } else {
                    LatencyStats {
                        count,
                        median_ms: mean(&with.iter().map(|s| s.median_ms).collect::<Vec<_>>()),
                        mean_ms: mean(&with.iter().map(|s| s.mean_ms).collect::<Vec<_>>()),
                        p99_ms: mean(&with.iter().map(|s| s.p99_ms).collect::<Vec<_>>()),
                        max_ms: with.iter().map(|s| s.max_ms).fold(0.0, f64::max),
                    }
                }
            };
            let cold_delta = pool(&colds, &|r| r.summary.single_job_delta);
            let warm_delta = pool(&warms, &|r| r.summary.single_job_delta);
            let cold_tps = mean(
                &colds
                    .iter()
                    .map(|r| r.summary.mean_aggregate_tps)
                    .collect::<Vec<_>>(),
            );
            let warm_tps = mean(
                &warms
                    .iter()
                    .map(|r| r.summary.mean_aggregate_tps)
                    .collect::<Vec<_>>(),
            );
            let warm_migrated: usize = warms.iter().map(|r| r.summary.migrated_layers).sum();
            let cold_migrated: usize = colds.iter().map(|r| r.summary.migrated_layers).sum();
            let comparable = cold_delta.count > 0 && warm_delta.count > 0;
            let speedup = if comparable {
                cold_delta.median_ms / warm_delta.median_ms.max(1e-9)
            } else {
                0.0
            };
            // The acceptance bar, evaluated inline so a regression is
            // visible in the snapshot itself (vacuously true when the
            // traces produced no single-job-delta event to compare on —
            // only happens at smoke scale).
            let pass = !comparable
                || (warm_delta.median_ms < cold_delta.median_ms && warm_tps >= cold_tps * 0.99);
            all_pass &= pass;
            println!(
                "{name} x{boards}: single-delta median cold {:.1} ms -> warm {:.1} ms \
                 ({speedup:.1}x), agg tps cold {cold_tps:.2} -> warm {warm_tps:.2}, \
                 warm migration {warm_migrated} layers [{}]",
                cold_delta.median_ms,
                warm_delta.median_ms,
                if pass { "pass" } else { "FAIL" },
            );
            let sum = |f: &dyn Fn(&ServingReport) -> usize, rs: &[ServingReport]| -> usize {
                rs.iter().map(f).sum()
            };
            // Drive-As-Code provenance for the cell: trace + arrival
            // process + fleet size + search budgets.
            let mut drive = trace_config_pairs(&trace_cfg(&scale));
            drive.push(("boards", boards.to_string()));
            drive.push(("cold_iterations", scale.cold_iterations.to_string()));
            drive.push(("process", format!("{process:?}")));
            drive.push(("warm_iterations", scale.warm_iterations.to_string()));
            let digest = config_digest(&drive);
            rows.push(format!(
                concat!(
                    "    {{\"scenario\": \"{}\", \"boards\": {}, ",
                    "\"config_digest\": \"{:#018x}\", \"trace_seeds\": {}, ",
                    "\"events\": {}, \"arrivals\": {}, \"departures\": {}, ",
                    "\"peak_queue_depth\": {}, ",
                    "\"cold\": {{\"decisions\": {}, \"single_job_delta\": {}, ",
                    "\"all\": {}, \"mean_aggregate_tps\": {:.4}, \"migrated_layers\": {}}}, ",
                    "\"warm\": {{\"decisions\": {}, \"single_job_delta\": {}, ",
                    "\"warm_only\": {}, \"memo_decisions\": {}, \"mean_aggregate_tps\": {:.4}, ",
                    "\"migrated_layers\": {}, \"eval_cache_hit_rate\": {:.3}}}, ",
                    "\"single_delta_median_speedup\": {:.2}, \"pass\": {}}}"
                ),
                name,
                boards,
                digest,
                scale.trace_seeds.len(),
                sum(&|r| r.summary.events, &colds),
                sum(&|r| r.summary.arrivals, &colds),
                sum(&|r| r.summary.departures, &colds),
                warms
                    .iter()
                    .map(|r| r.summary.peak_queue_depth)
                    .max()
                    .unwrap_or(0),
                sum(&|r| r.summary.decisions, &colds),
                latency_json(&cold_delta),
                latency_json(&pool(&colds, &|r| r.summary.cold)),
                cold_tps,
                cold_migrated,
                sum(&|r| r.summary.decisions, &warms),
                latency_json(&warm_delta),
                latency_json(&pool(&warms, &|r| r.summary.warm)),
                sum(&|r| r.summary.memo.count, &warms),
                warm_tps,
                warm_migrated,
                mean(
                    &warms
                        .iter()
                        .map(|r| r.summary.eval_cache.hit_rate())
                        .collect::<Vec<_>>()
                ),
                speedup,
                pass,
            ));
        }
    }

    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"serving\",\n",
            "  \"trace_seeds\": {:?},\n",
            "  \"horizon_ms\": {},\n",
            "  \"cold_iterations\": {},\n",
            "  \"warm_iterations\": {},\n",
            "  \"host_threads\": {},\n",
            "  \"note\": \"cold = ColdRestart policy (full search every event, no memo); ",
            "warm = WarmStart policy (decision memo for unchanged mixes; on single-job ",
            "deltas a partial-root warm search raced against a warm-budget global ",
            "challenger, floored at the carried candidates; periodic memo-bypassing ",
            "cold refresh). single_job_delta rows compare decision latency on exactly the ",
            "events where warm starts are defined; mean_aggregate_tps is the ",
            "time-weighted fleet throughput actually achieved over the trace, measured ",
            "by the DES board stand-in. The evaluator guiding the search is the ",
            "analytic model on every row, so the comparison is evaluator-for-evaluator ",
            "fair; migration churn is reported for the warm policy (cold redeploys from ",
            "scratch, so its churn is structurally high and uninteresting). Every cell ",
            "averages one cold and one warm run per trace seed. pass = warm pooled ",
            "median single-delta latency strictly below cold's at >= 99% of cold's ",
            "mean aggregate throughput\",\n",
            "  \"all_pass\": {},\n",
            "  \"rows\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale.trace_seeds,
        scale.horizon_ms,
        scale.cold_iterations,
        scale.warm_iterations,
        threads,
        all_pass,
        rows.join(",\n"),
    );
    if smoke {
        println!("smoke mode: skipping BENCH_serving.json rewrite\n{json}");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(path, &json).expect("write snapshot");
    println!("wrote BENCH_serving.json:\n{json}");
}
