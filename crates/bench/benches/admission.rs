//! Admission-control bench: the shared mempool under overload.
//!
//! Drives the serving runtime at 2× and 5× of the fleet's sustainable
//! arrival rate with a 70/10/10/10 tenant skew and a mixed SLO-class
//! workload (30% guaranteed), comparing two admission arms:
//!
//! * **fifo** — [`AdmissionPolicy::default`]: the permissive historical
//!   queue (FIFO, no quota, no TTL, no backoff).
//! * **mempool** — the strict overload posture: deficit-weighted drain,
//!   per-tenant in-queue quotas, TTL eviction and retry backoff.
//!
//! Writes `BENCH_admission.json`. The acceptance bars of the admission
//! PR, evaluated inline per cell:
//!
//! * at 2× overload the mempool arm keeps guaranteed-class attainment
//!   at **≥ 95%**, and
//! * best-effort work is never starved to zero in any cell (the class
//!   priority must not become a denial of service).
//!
//! Every cell stamps a Drive-As-Code `config_digest` — the FNV-1a hash
//! of the declarative trace + admission configs that produced it — so
//! snapshot rows are traceable to their exact drive.
//!
//! `SMOKE=1` (the CI mode) shrinks the horizon and **does not** rewrite
//! the JSON snapshot.

use omniboost_bench::{admission_policy_pairs, config_digest, trace_config_pairs};
use omniboost_hw::{AnalyticModel, Board};
use omniboost_models::{ArrivalProcess, ArrivalTrace, TraceConfig};
use omniboost_serve::{
    AdmissionPolicy, OnlineConfig, QueueOrder, SearchBudget, ServingConfig, ServingReport,
    ServingSim,
};

const BOARDS: usize = 2;
/// Sustainable arrival rate per board (jobs/s) at the trace's mean
/// lifetime — the 1× anchor the overload factors multiply.
const BASE_RATE_PER_BOARD: f64 = 0.25;

struct BenchScale {
    horizon_ms: u64,
    trace_seeds: &'static [u64],
}

impl BenchScale {
    fn full() -> Self {
        Self {
            horizon_ms: 60_000,
            trace_seeds: &[42, 1042, 2042],
        }
    }

    fn smoke() -> Self {
        Self {
            horizon_ms: 10_000,
            trace_seeds: &[42],
        }
    }
}

fn strict_policy(scale: &BenchScale) -> AdmissionPolicy {
    AdmissionPolicy {
        order: QueueOrder::TenantDeficit,
        validate: true,
        tenant_queue_quota: Some(4),
        ttl_ms: Some(scale.horizon_ms / 6),
        retry_backoff_ms: Some(250),
        max_backoff_ms: 4_000,
    }
}

fn trace_cfg(scale: &BenchScale) -> TraceConfig {
    TraceConfig {
        horizon_ms: scale.horizon_ms,
        mean_lifetime_ms: scale.horizon_ms as f64 / 8.0,
        // 70/10/10/10: tenant 0 sends seventy percent of the traffic.
        tenant_weights: vec![7.0, 1.0, 1.0, 1.0],
        guaranteed_share: 0.3,
        guaranteed_min_tps: 0.5,
        ..TraceConfig::default()
    }
}

fn run(overload: f64, admission: AdmissionPolicy, scale: &BenchScale, seed: u64) -> ServingReport {
    let trace = ArrivalTrace::generate(
        ArrivalProcess::Poisson {
            rate_per_s: overload * BASE_RATE_PER_BOARD * BOARDS as f64,
        },
        &trace_cfg(scale),
        seed,
    );
    let config = ServingConfig {
        online: OnlineConfig {
            cold_budget: SearchBudget::with_iterations(60),
            warm_budget: SearchBudget::with_iterations(24),
            ..OnlineConfig::default()
        },
        admission,
        ..ServingConfig::warm()
    };
    let mut sim = ServingSim::new(vec![Board::hikey970(); BOARDS], config, AnalyticModel::new);
    sim.run(&trace, scale.horizon_ms)
}

fn main() {
    let smoke = std::env::var_os("SMOKE").is_some_and(|v| v != "0" && !v.is_empty());
    let scale = if smoke {
        BenchScale::smoke()
    } else {
        BenchScale::full()
    };

    let arms: [(&str, AdmissionPolicy); 2] = [
        ("fifo", AdmissionPolicy::default()),
        ("mempool", strict_policy(&scale)),
    ];
    let mut rows = Vec::new();
    let mut all_pass = true;
    for overload in [2.0f64, 5.0] {
        for (arm, admission) in &arms {
            let reports: Vec<ServingReport> = scale
                .trace_seeds
                .iter()
                .map(|s| run(overload, *admission, &scale, *s))
                .collect();
            let sum =
                |f: &dyn Fn(&ServingReport) -> usize| -> usize { reports.iter().map(f).sum() };
            let mean = |f: &dyn Fn(&ServingReport) -> f64| -> f64 {
                reports.iter().map(f).sum::<f64>() / reports.len() as f64
            };
            let arrivals = sum(&|r| r.summary.arrivals);
            let placements = sum(&|r| r.summary.placements);
            let rejected = sum(&|r| r.summary.rejected);
            let expired = sum(&|r| r.summary.expired);
            let left_in_queue = sum(&|r| r.summary.left_in_queue);
            let peak_queue = reports
                .iter()
                .map(|r| r.summary.peak_queue_depth)
                .max()
                .unwrap_or(0);
            let gtd_jobs = sum(&|r| r.summary.slo.guaranteed_jobs);
            let gtd_met = sum(&|r| r.summary.slo.guaranteed_met);
            let gtd_attainment = if gtd_jobs > 0 {
                gtd_met as f64 / gtd_jobs as f64
            } else {
                1.0
            };
            let be_jobs = sum(&|r| r.summary.slo.best_effort_jobs);
            let be_served = sum(&|r| r.summary.slo.best_effort_served);
            let be_tps = mean(&|r| r.summary.slo.best_effort_mean_tps);
            let agg_tps = mean(&|r| r.summary.mean_aggregate_tps);
            // The acceptance bars. Guaranteed attainment is gated on the
            // strict arm at 2× (5× is reported, not gated: at five times
            // capacity *some* floors must give); best-effort starvation
            // is gated everywhere.
            let gate_attainment = *arm == "mempool" && (overload - 2.0).abs() < f64::EPSILON;
            let pass =
                (!gate_attainment || gtd_attainment >= 0.95) && (be_jobs == 0 || be_served > 0);
            all_pass &= pass;
            let mut drive = trace_config_pairs(&trace_cfg(&scale));
            drive.extend(admission_policy_pairs(admission));
            drive.push(("overload", format!("{overload:?}")));
            drive.push(("boards", BOARDS.to_string()));
            let digest = config_digest(&drive);
            println!(
                "{overload:.0}x {arm}: {arrivals} arrivals -> {placements} placed, \
                 {rejected} rejected, {expired} expired, peak queue {peak_queue}; \
                 guaranteed {gtd_met}/{gtd_jobs} ({:.1}%), best-effort served \
                 {be_served}/{be_jobs} at {be_tps:.2} tps [{}]",
                gtd_attainment * 100.0,
                if pass { "pass" } else { "FAIL" },
            );
            rows.push(format!(
                concat!(
                    "    {{\"overload\": {}, \"arm\": \"{}\", \"config_digest\": \"{:#018x}\", ",
                    "\"trace_seeds\": {}, \"arrivals\": {}, \"placements\": {}, ",
                    "\"rejected\": {}, \"expired\": {}, \"left_in_queue\": {}, ",
                    "\"peak_queue_depth\": {}, ",
                    "\"guaranteed\": {{\"jobs\": {}, \"met\": {}, \"attainment\": {:.4}}}, ",
                    "\"best_effort\": {{\"jobs\": {}, \"served\": {}, \"mean_tps\": {:.4}}}, ",
                    "\"mean_aggregate_tps\": {:.4}, \"pass\": {}}}"
                ),
                overload,
                arm,
                digest,
                scale.trace_seeds.len(),
                arrivals,
                placements,
                rejected,
                expired,
                left_in_queue,
                peak_queue,
                gtd_jobs,
                gtd_met,
                gtd_attainment,
                be_jobs,
                be_served,
                be_tps,
                agg_tps,
                pass,
            ));
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"admission\",\n",
            "  \"trace_seeds\": {:?},\n",
            "  \"horizon_ms\": {},\n",
            "  \"boards\": {},\n",
            "  \"base_rate_per_board_s\": {},\n",
            "  \"note\": \"fifo = AdmissionPolicy::default() (the permissive historical ",
            "queue: FIFO drain, no quota, no TTL, no backoff); mempool = strict posture ",
            "(TenantDeficit drain, per-tenant in-queue quota, TTL eviction, exponential ",
            "retry backoff). Traffic is Poisson at overload x the sustainable rate with ",
            "a 70/10/10/10 tenant skew and 30% guaranteed-class arrivals (0.5 inf/s ",
            "floor). Guaranteed-class queue-jumping and floor-honoring placement apply ",
            "to both arms (they are properties of the shared mempool drain, not the ",
            "policy). config_digest is the FNV-1a hash of the declarative trace + ",
            "admission configs that drove the cell (Drive-As-Code provenance). pass = ",
            "guaranteed attainment >= 95% on the mempool arm at 2x overload, and ",
            "best-effort work never starved to zero in any cell\",\n",
            "  \"all_pass\": {},\n",
            "  \"rows\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale.trace_seeds,
        scale.horizon_ms,
        BOARDS,
        BASE_RATE_PER_BOARD,
        all_pass,
        rows.join(",\n"),
    );
    if smoke {
        println!("smoke mode: skipping BENCH_admission.json rewrite\n{json}");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_admission.json");
    std::fs::write(path, &json).expect("write snapshot");
    println!("wrote BENCH_admission.json:\n{json}");
}
