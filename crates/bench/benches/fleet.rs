//! Fleet-orchestration bench: the three acceptance bars of the
//! orchestration PR, measured end to end and written to
//! `BENCH_fleet.json`.
//!
//! 1. **Skewed departures** — a deterministic mass departure leaves one
//!    board saturated while three idle; migration-costed rebalancing
//!    must recover ≥ 10% mean aggregate throughput over the
//!    jobs-stay-pinned baseline.
//! 2. **Board failure** — a board dies mid-trace; every resident job
//!    must be evacuated (zero lost jobs) and evacuation latency is
//!    reported, with and without rebalancing.
//! 3. **Tenant fairness** — on a 70/10/10/10 skewed-tenant trace the
//!    `FairShare` placement policy must reduce the max/min per-tenant
//!    throughput ratio vs `LeastLoaded` without losing more than 2% of
//!    aggregate throughput.
//!
//! `SMOKE=1` (the CI mode) shrinks horizons and budgets so the whole
//! bench runs in seconds and **does not** rewrite the JSON snapshot.

use omniboost_bench::{config_digest, trace_config_pairs};
use omniboost_hw::AnalyticModel;
use omniboost_models::{
    ArrivalProcess, ArrivalTrace, FleetEvent, FleetScript, FleetTraceEvent, JobEvent, JobSpec,
    ModelId, TraceConfig, TraceEvent,
};
use omniboost_orchestrator::{
    tenant_tps_ratio, BoardProfile, EvacOrder, FleetSpec, OrchestratorConfig, OrchestratorReport,
    OrchestratorSim, PlacementPolicy, RebalanceConfig,
};
use omniboost_serve::{LatencyStats, OnlineConfig, SearchBudget};

struct BenchScale {
    horizon_ms: u64,
    cold_iterations: usize,
    warm_iterations: usize,
    rebalance_period_ms: u64,
    trace_seeds: &'static [u64],
}

impl BenchScale {
    fn full() -> Self {
        Self {
            horizon_ms: 60_000,
            cold_iterations: 300,
            warm_iterations: 100,
            rebalance_period_ms: 2_000,
            trace_seeds: &[42, 1042, 2042],
        }
    }

    fn smoke() -> Self {
        Self {
            horizon_ms: 12_000,
            cold_iterations: 60,
            warm_iterations: 24,
            rebalance_period_ms: 1_000,
            trace_seeds: &[42],
        }
    }
}

fn online(scale: &BenchScale) -> OnlineConfig {
    OnlineConfig {
        cold_budget: SearchBudget::with_iterations(scale.cold_iterations),
        warm_budget: SearchBudget::with_iterations(scale.warm_iterations),
        ..OnlineConfig::default()
    }
}

fn rebalance(scale: &BenchScale) -> RebalanceConfig {
    RebalanceConfig {
        period_ms: scale.rebalance_period_ms,
        ..RebalanceConfig::default()
    }
}

/// The scale knobs every cell shares, rendered for [`config_digest`].
fn scale_pairs(scale: &BenchScale) -> Vec<(&'static str, String)> {
    vec![
        ("scale.cold_iterations", scale.cold_iterations.to_string()),
        ("scale.horizon_ms", scale.horizon_ms.to_string()),
        (
            "scale.rebalance_period_ms",
            scale.rebalance_period_ms.to_string(),
        ),
        ("scale.warm_iterations", scale.warm_iterations.to_string()),
    ]
}

fn config(scale: &BenchScale, placement: PlacementPolicy, rebalancing: bool) -> OrchestratorConfig {
    OrchestratorConfig {
        placement,
        online: online(scale),
        rebalance: rebalancing.then(|| rebalance(scale)),
        ..OrchestratorConfig::warm()
    }
}

/// The deterministic skewed-departure trace: 16 identical jobs fill a
/// 4-board fleet evenly (equal FLOPs → least-loaded round-robins them),
/// then at one third of the horizon a mass departure removes 11 jobs —
/// exactly the ones NOT on board 0 (ids ≡ 1 mod 4 land on board 0) plus
/// all but one of the rest — leaving board 0 with its 4 jobs, board 1
/// with one, boards 2 and 3 idle. Without rebalancing that pile-up
/// persists to the horizon.
fn skewed_departure_trace(scale: &BenchScale) -> ArrivalTrace {
    let mut events = Vec::new();
    for id in 1..=16u64 {
        events.push(TraceEvent {
            at_ms: id * 100,
            event: JobEvent::Arrive(JobSpec::new(id, ModelId::ResNet34, (id % 4) as u32)),
        });
    }
    let skew_at = scale.horizon_ms / 3;
    // Keep board 0's jobs {1, 5, 9, 13} and board 1's job 2.
    for id in (1..=16u64).filter(|id| id % 4 != 1 && *id != 2) {
        events.push(TraceEvent {
            at_ms: skew_at,
            event: JobEvent::Depart { job_id: id },
        });
    }
    ArrivalTrace::from_events(events)
}

fn run_skewed_departure(scale: &BenchScale, rebalancing: bool) -> OrchestratorReport {
    let trace = skewed_departure_trace(scale);
    let mut sim = OrchestratorSim::new(
        FleetSpec::homogeneous(4, BoardProfile::hikey970()),
        config(scale, PlacementPolicy::LeastLoaded, rebalancing),
        AnalyticModel::new,
    );
    sim.run(&trace, &FleetScript::none(), scale.horizon_ms)
}

/// The Poisson sections' trace config — shared with the Drive-As-Code
/// digest so the stamped provenance is exactly what drove the run.
fn poisson_trace_cfg(scale: &BenchScale, weights: Vec<f64>) -> TraceConfig {
    TraceConfig {
        horizon_ms: scale.horizon_ms,
        mean_lifetime_ms: scale.horizon_ms as f64 / 8.0,
        tenant_weights: weights,
        ..TraceConfig::default()
    }
}

fn poisson_trace(scale: &BenchScale, seed: u64, weights: Vec<f64>) -> ArrivalTrace {
    ArrivalTrace::generate(
        ArrivalProcess::Poisson { rate_per_s: 1.0 },
        &poisson_trace_cfg(scale, weights),
        seed,
    )
}

fn run_board_failure(
    scale: &BenchScale,
    seed: u64,
    rebalancing: bool,
    evac_order: EvacOrder,
) -> OrchestratorReport {
    let trace = poisson_trace(scale, seed, Vec::new());
    let script = FleetScript::new(vec![FleetTraceEvent {
        at_ms: scale.horizon_ms / 2,
        event: FleetEvent::BoardFail { board: 0 },
    }]);
    let mut sim = OrchestratorSim::new(
        FleetSpec::heterogeneous(vec![
            BoardProfile::hikey970(),
            BoardProfile::hikey970(),
            BoardProfile::hikey970(),
            BoardProfile::hikey970_lite(),
        ]),
        OrchestratorConfig {
            evac_order,
            ..config(scale, PlacementPolicy::LeastLoaded, rebalancing)
        },
        AnalyticModel::new,
    );
    sim.run(&trace, &script, scale.horizon_ms)
}

fn run_fairness(scale: &BenchScale, seed: u64, placement: PlacementPolicy) -> OrchestratorReport {
    let trace = poisson_trace(scale, seed, vec![7.0, 1.0, 1.0, 1.0]);
    let mut sim = OrchestratorSim::new(
        FleetSpec::homogeneous(4, BoardProfile::hikey970()),
        config(scale, placement, false),
        AnalyticModel::new,
    );
    sim.run(&trace, &FleetScript::none(), scale.horizon_ms)
}

fn latency_json(l: &LatencyStats) -> String {
    format!(
        "{{\"count\": {}, \"median_ms\": {:.3}, \"mean_ms\": {:.3}, \"max_ms\": {:.3}}}",
        l.count, l.median_ms, l.mean_ms, l.max_ms
    )
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn main() {
    let smoke = std::env::var_os("SMOKE").is_some_and(|v| v != "0" && !v.is_empty());
    let scale = if smoke {
        BenchScale::smoke()
    } else {
        BenchScale::full()
    };
    let mut all_pass = true;

    // ---- 1. Skewed departures: rebalance on vs off -------------------
    let pinned = run_skewed_departure(&scale, false);
    let rebalanced = run_skewed_departure(&scale, true);
    let gain_pct =
        (rebalanced.summary.mean_aggregate_tps / pinned.summary.mean_aggregate_tps - 1.0) * 100.0;
    let skew_pass =
        gain_pct >= 10.0 && pinned.summary.lost_jobs == 0 && rebalanced.summary.lost_jobs == 0;
    all_pass &= skew_pass;
    println!(
        "skewed-departure: pinned {:.2} inf/s -> rebalanced {:.2} inf/s (+{gain_pct:.1}%), \
         {} moves / {} layers migrated [{}]",
        pinned.summary.mean_aggregate_tps,
        rebalanced.summary.mean_aggregate_tps,
        rebalanced.summary.rebalance_moves,
        rebalanced.summary.rebalance_migrated_layers,
        if skew_pass { "pass" } else { "FAIL" },
    );
    let mut skew_drive = scale_pairs(&scale);
    skew_drive.push(("boards", "4".into()));
    skew_drive.push(("section", "skewed_departure".into()));
    let skew_json = format!(
        concat!(
            "  \"skewed_departure\": {{\n",
            "    \"config_digest\": \"{:#018x}\",\n",
            "    \"pinned\": {{\"mean_aggregate_tps\": {:.4}, \"migrated_layers\": {}}},\n",
            "    \"rebalanced\": {{\"mean_aggregate_tps\": {:.4}, \"migrated_layers\": {}, ",
            "\"moves\": {}, \"rejected_proposals\": {}, \"rebalance_migrated_layers\": {}, ",
            "\"priced_gain_tps\": {:.3}}},\n",
            "    \"gain_pct\": {:.2}, \"pass\": {}\n",
            "  }}"
        ),
        config_digest(&skew_drive),
        pinned.summary.mean_aggregate_tps,
        pinned.summary.migrated_layers,
        rebalanced.summary.mean_aggregate_tps,
        rebalanced.summary.migrated_layers,
        rebalanced.summary.rebalance_moves,
        rebalanced.summary.rebalance_rejected,
        rebalanced.summary.rebalance_migrated_layers,
        rebalanced.summary.rebalance_gain_tps,
        gain_pct,
        skew_pass,
    );

    // ---- 2. Board failure: zero lost jobs + evacuation latency -------
    // Three arms: no rebalancing, rebalancing (both heaviest-first
    // evacuation, the default), and rebalancing with arrival-order
    // evacuation as the A/B reference for the non-regression bar.
    let mut failure_rows = Vec::new();
    let mut evac_wait_means = Vec::new();
    let arms = [
        (false, EvacOrder::HeaviestFirst),
        (true, EvacOrder::HeaviestFirst),
        (true, EvacOrder::Arrival),
    ];
    for (rebalancing, evac_order) in arms {
        let (mut lost, mut evacuated, mut relocated) = (0usize, 0usize, 0usize);
        let mut waits: Vec<LatencyStats> = Vec::new();
        let mut tps = Vec::new();
        for seed in scale.trace_seeds {
            let r = run_board_failure(&scale, *seed, rebalancing, evac_order);
            lost += r.summary.lost_jobs;
            evacuated += r.summary.evacuated_jobs;
            relocated += r.summary.evacuees_relocated_same_tick;
            waits.push(r.summary.evacuation_wait);
            tps.push(r.summary.mean_aggregate_tps);
        }
        let pass = lost == 0 && evacuated > 0;
        all_pass &= pass;
        // Pool the per-seed wait stats over the seeds that had samples.
        let with: Vec<&LatencyStats> = waits.iter().filter(|w| w.count > 0).collect();
        let wait = if with.is_empty() {
            LatencyStats::default()
        } else {
            LatencyStats {
                count: waits.iter().map(|w| w.count).sum(),
                median_ms: mean(&with.iter().map(|w| w.median_ms).collect::<Vec<_>>()),
                mean_ms: mean(&with.iter().map(|w| w.mean_ms).collect::<Vec<_>>()),
                p99_ms: mean(&with.iter().map(|w| w.p99_ms).collect::<Vec<_>>()),
                max_ms: with.iter().map(|w| w.max_ms).fold(0.0, f64::max),
            }
        };
        evac_wait_means.push(wait.mean_ms);
        println!(
            "board-failure (rebalance {}, evac {:?}): {} evacuated ({} same tick), {} lost, \
             evacuation wait mean {:.0} ms, agg {:.2} inf/s [{}]",
            rebalancing,
            evac_order,
            evacuated,
            relocated,
            lost,
            wait.mean_ms,
            mean(&tps),
            if pass { "pass" } else { "FAIL" },
        );
        let mut drive = trace_config_pairs(&poisson_trace_cfg(&scale, Vec::new()));
        drive.extend(scale_pairs(&scale));
        drive.push(("boards", "3+1lite".into()));
        drive.push(("evac_order", format!("{evac_order:?}")));
        drive.push(("rebalance", rebalancing.to_string()));
        failure_rows.push(format!(
            concat!(
                "    {{\"rebalance\": {}, \"evac_order\": \"{:?}\", ",
                "\"config_digest\": \"{:#018x}\", \"trace_seeds\": {}, ",
                "\"evacuated_jobs\": {}, ",
                "\"relocated_same_tick\": {}, \"lost_jobs\": {}, \"evacuation_wait_ms\": {}, ",
                "\"mean_aggregate_tps\": {:.4}, \"pass\": {}}}"
            ),
            rebalancing,
            evac_order,
            config_digest(&drive),
            scale.trace_seeds.len(),
            evacuated,
            relocated,
            lost,
            latency_json(&wait),
            mean(&tps),
            pass,
        ));
    }
    // Non-regression bar for the heaviest-first default: its pooled
    // evacuation-wait mean must not exceed arrival order's by more than
    // 10% + 1 ms (both rebalancing arms; the single-seed smoke run is
    // informational only).
    let evac_pass = evac_wait_means[1] <= evac_wait_means[2] * 1.10 + 1.0 || smoke;
    all_pass &= evac_pass;
    println!(
        "evacuation-order A/B: heaviest-first mean {:.0} ms vs arrival {:.0} ms [{}]",
        evac_wait_means[1],
        evac_wait_means[2],
        if evac_pass { "pass" } else { "FAIL" },
    );

    // ---- 3. Tenant fairness: FairShare vs LeastLoaded ----------------
    let mut ratios = (Vec::new(), Vec::new());
    let mut tpss = (Vec::new(), Vec::new());
    for seed in scale.trace_seeds {
        let ll = run_fairness(&scale, *seed, PlacementPolicy::LeastLoaded);
        let fs = run_fairness(&scale, *seed, PlacementPolicy::FairShare);
        ratios.0.push(tenant_tps_ratio(&ll.summary.tenants));
        ratios.1.push(tenant_tps_ratio(&fs.summary.tenants));
        tpss.0.push(ll.summary.mean_aggregate_tps);
        tpss.1.push(fs.summary.mean_aggregate_tps);
    }
    let (ll_ratio, fs_ratio) = (mean(&ratios.0), mean(&ratios.1));
    let (ll_tps, fs_tps) = (mean(&tpss.0), mean(&tpss.1));
    // The ratio comparison needs the multi-seed average to be
    // meaningful; the single-seed smoke run exercises the pipeline but
    // is too noisy to judge, so its verdict is informational only.
    let fair_pass = (fs_ratio < ll_ratio && fs_tps >= ll_tps * 0.98) || smoke;
    all_pass &= fair_pass;
    println!(
        "tenant-fairness: max/min tps ratio least-loaded {ll_ratio:.2} -> fair-share \
         {fs_ratio:.2}, agg {ll_tps:.2} -> {fs_tps:.2} inf/s ({:+.2}%) [{}]",
        (fs_tps / ll_tps - 1.0) * 100.0,
        if fair_pass { "pass" } else { "FAIL" },
    );
    let mut fair_drive = trace_config_pairs(&poisson_trace_cfg(&scale, vec![7.0, 1.0, 1.0, 1.0]));
    fair_drive.extend(scale_pairs(&scale));
    fair_drive.push(("boards", "4".into()));
    fair_drive.push(("section", "tenant_fairness".into()));
    let fairness_json = format!(
        concat!(
            "  \"tenant_fairness\": {{\n",
            "    \"config_digest\": \"{:#018x}\",\n",
            "    \"trace_seeds\": {}, \"tenant_weights\": [7, 1, 1, 1],\n",
            "    \"least_loaded\": {{\"tenant_tps_ratio\": {:.4}, \"mean_aggregate_tps\": {:.4}}},\n",
            "    \"fair_share\": {{\"tenant_tps_ratio\": {:.4}, \"mean_aggregate_tps\": {:.4}}},\n",
            "    \"ratio_reduction_pct\": {:.2}, \"aggregate_delta_pct\": {:.2}, \"pass\": {}\n",
            "  }}"
        ),
        config_digest(&fair_drive),
        scale.trace_seeds.len(),
        ll_ratio,
        ll_tps,
        fs_ratio,
        fs_tps,
        (1.0 - fs_ratio / ll_ratio) * 100.0,
        (fs_tps / ll_tps - 1.0) * 100.0,
        fair_pass,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"fleet\",\n",
            "  \"horizon_ms\": {},\n",
            "  \"cold_iterations\": {},\n",
            "  \"warm_iterations\": {},\n",
            "  \"rebalance_period_ms\": {},\n",
            "  \"note\": \"Orchestrated fleets driven by omniboost-orchestrator over the DES ",
            "board stand-in with the analytic model guiding every search. skewed_departure: ",
            "deterministic mass departure leaves 4 jobs piled on board 0 while 3 boards idle; ",
            "the rebalanced arm may move jobs (each move priced by warm-started speculative ",
            "rescheduling against migrated layers), the pinned arm may not. board_failure: ",
            "board 0 dies mid-trace on a heterogeneous 3+1-lite fleet; every resident job must ",
            "re-place or queue (lost_jobs == 0) and evacuation latency is simulated ms from ",
            "failure to landing on a new board; evacuation_order_ab compares the heaviest-first ",
            "default against arrival-order evacuation (non-regression on the wait mean). ",
            "tenant_fairness: Poisson traffic with one ",
            "tenant submitting 70% of jobs; fair-share placement reserves the emptiest board ",
            "for tenants below fair share, judged on the max/min per-tenant mean-throughput ",
            "ratio at <= 2% aggregate cost.\",\n",
            "  \"all_pass\": {},\n",
            "{},\n",
            "  \"board_failure\": [\n{}\n  ],\n",
            "  \"evacuation_order_ab\": {{\"heaviest_first_wait_mean_ms\": {:.3}, ",
            "\"arrival_wait_mean_ms\": {:.3}, \"pass\": {}}},\n",
            "{}\n",
            "}}\n"
        ),
        scale.horizon_ms,
        scale.cold_iterations,
        scale.warm_iterations,
        scale.rebalance_period_ms,
        all_pass,
        skew_json,
        failure_rows.join(",\n"),
        evac_wait_means[1],
        evac_wait_means[2],
        evac_pass,
        fairness_json,
    );
    if smoke {
        println!("smoke mode: skipping BENCH_fleet.json rewrite\n{json}");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(path, &json).expect("write snapshot");
    println!("wrote BENCH_fleet.json:\n{json}");
}
