//! Criterion bench behind **Fig. 1**: latency of measuring one random
//! split of the §II motivational workload on the simulated board (the
//! study performs 200 such measurements).

use criterion::{criterion_group, criterion_main, Criterion};
use omniboost::baselines::RandomSplit;
use omniboost::Runtime;
use omniboost_bench::motivational_workload;
use omniboost_hw::{Board, Scheduler};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let runtime = Runtime::new(Board::hikey970());
    let workload = motivational_workload();
    let mut splitter = RandomSplit::new(1);
    let mut group = c.benchmark_group("fig1_motivation");
    group.sample_size(20);

    group.bench_function("random_split_decide", |b| {
        b.iter(|| {
            splitter
                .decide(runtime.board(), black_box(&workload))
                .unwrap()
        })
    });

    let mapping = splitter.decide(runtime.board(), &workload).unwrap();
    group.bench_function("board_measure_one_setup", |b| {
        b.iter(|| {
            runtime
                .measure(black_box(&workload), black_box(&mapping))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
