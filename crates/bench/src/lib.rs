//! # omniboost-bench
//!
//! Shared harness utilities for regenerating every table and figure of
//! the OmniBoost paper (DAC 2023). The binaries in `src/bin/` print the
//! same rows/series the paper reports:
//!
//! | binary | artefact |
//! |---|---|
//! | `fig1` | §II motivational study (200 random splits vs GPU-only) |
//! | `fig4` | estimator training/validation loss curves |
//! | `fig5` | normalized throughput, 5 mixes × {3,4,5} DNNs × 4 methods |
//! | `runtime_table` | §V-B decision-latency comparison |
//! | `ablation` | budget / stage-cap / oracle / activation ablations |
//!
//! The Criterion benches in `benches/` measure the latency of each moving
//! part (board evaluation, estimator query, scheduler decisions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use omniboost::baselines::{Genetic, GeneticConfig, GpuOnly, Mosaic};
use omniboost::{ComparisonRow, OmniBoost, Runtime};
use omniboost_hw::{Device, Fnv1a, HwError, Mapping, Workload};
use omniboost_models::{FleetScriptConfig, ModelId, TraceConfig};
use omniboost_serve::AdmissionPolicy;
use std::hash::Hasher;

/// Drive-As-Code provenance: a stable FNV-1a digest over a canonical
/// `key=value` rendering of the declarative configs that drove a bench
/// run, stamped into the JSON snapshots so a reader can tell whether
/// two artefacts were produced by the same drive — without diffing
/// prose. Keys are hashed in the order given (call sites list them
/// alphabetically per config block); floats render via `{:?}` so the
/// digest is exact, not rounded.
pub fn config_digest(pairs: &[(&str, String)]) -> u64 {
    let mut h = Fnv1a::default();
    for (k, v) in pairs {
        h.write(k.as_bytes());
        h.write(b"=");
        h.write(v.as_bytes());
        h.write(b"\n");
    }
    h.finish()
}

/// [`TraceConfig`] rendered for [`config_digest`] — every field that
/// shapes the generated trace, including the SLO-class knobs.
pub fn trace_config_pairs(cfg: &TraceConfig) -> Vec<(&'static str, String)> {
    vec![
        (
            "trace.guaranteed_min_tps",
            format!("{:?}", cfg.guaranteed_min_tps),
        ),
        (
            "trace.guaranteed_share",
            format!("{:?}", cfg.guaranteed_share),
        ),
        ("trace.horizon_ms", cfg.horizon_ms.to_string()),
        (
            "trace.mean_lifetime_ms",
            format!("{:?}", cfg.mean_lifetime_ms),
        ),
        ("trace.models", format!("{:?}", cfg.models)),
        ("trace.tenant_weights", format!("{:?}", cfg.tenant_weights)),
        ("trace.tenants", cfg.tenants.to_string()),
    ]
}

/// [`FleetScriptConfig`] rendered for [`config_digest`] — every knob
/// that shapes a generated fleet-lifecycle (chaos) script.
pub fn fleet_script_pairs(cfg: &FleetScriptConfig) -> Vec<(&'static str, String)> {
    vec![
        ("script.degrade_profiles", cfg.degrade_profiles.to_string()),
        ("script.flap_down_ms", cfg.flap_down_ms.to_string()),
        ("script.horizon_ms", cfg.horizon_ms.to_string()),
        ("script.initial_boards", cfg.initial_boards.to_string()),
        ("script.join_profiles", cfg.join_profiles.to_string()),
        (
            "script.mean_degrade_interval_ms",
            format!("{:?}", cfg.mean_degrade_interval_ms),
        ),
        (
            "script.mean_drain_interval_ms",
            format!("{:?}", cfg.mean_drain_interval_ms),
        ),
        (
            "script.mean_fail_interval_ms",
            format!("{:?}", cfg.mean_fail_interval_ms),
        ),
        (
            "script.mean_flap_interval_ms",
            format!("{:?}", cfg.mean_flap_interval_ms),
        ),
        (
            "script.mean_join_interval_ms",
            format!("{:?}", cfg.mean_join_interval_ms),
        ),
        (
            "script.mean_recover_interval_ms",
            format!("{:?}", cfg.mean_recover_interval_ms),
        ),
    ]
}

/// [`AdmissionPolicy`] rendered for [`config_digest`].
pub fn admission_policy_pairs(policy: &AdmissionPolicy) -> Vec<(&'static str, String)> {
    vec![
        (
            "admission.max_backoff_ms",
            policy.max_backoff_ms.to_string(),
        ),
        ("admission.order", format!("{:?}", policy.order)),
        (
            "admission.retry_backoff_ms",
            format!("{:?}", policy.retry_backoff_ms),
        ),
        (
            "admission.tenant_queue_quota",
            format!("{:?}", policy.tenant_queue_quota),
        ),
        ("admission.ttl_ms", format!("{:?}", policy.ttl_ms)),
        ("admission.validate", policy.validate.to_string()),
    ]
}

/// The five evaluation mixes per concurrency level, mirroring §V-A's
/// "multiple random mixes" with the one property the paper describes
/// explicitly: the 3-DNN *mix-5* is the lightweight trio (AlexNet,
/// VGG-13, MobileNet) on which all schedulers tie.
///
/// # Panics
///
/// Panics if `k` is not 3, 4 or 5.
pub fn paper_mixes(k: usize) -> Vec<Vec<ModelId>> {
    use ModelId::*;
    match k {
        3 => vec![
            vec![Vgg19, ResNet50, InceptionV3],
            vec![Vgg16, ResNet101, AlexNet],
            vec![InceptionV4, Vgg13, ResNet34],
            vec![ResNet50, Vgg16, SqueezeNet],
            // mix-5: lightweight models; no saturation, everyone ties.
            vec![AlexNet, Vgg13, MobileNet],
        ],
        4 => vec![
            vec![Vgg19, ResNet50, InceptionV3, Vgg16],
            vec![ResNet101, InceptionV4, Vgg19, AlexNet],
            vec![Vgg16, Vgg13, ResNet50, InceptionV3],
            vec![InceptionV4, ResNet101, Vgg16, SqueezeNet],
            vec![Vgg19, InceptionV3, ResNet34, MobileNet],
        ],
        // Five concurrent DNNs already push the board close to its
        // unresponsiveness limit (§V-A), so realistic 5-mixes lean on the
        // lighter half of the dataset — consistent with Fig. 5c's
        // compressed gains (its y-axis tops out at 1.5×).
        5 => vec![
            vec![ResNet34, AlexNet, MobileNet, SqueezeNet, Vgg13],
            vec![ResNet50, AlexNet, MobileNet, SqueezeNet, InceptionV3],
            vec![Vgg16, MobileNet, SqueezeNet, AlexNet, ResNet34],
            vec![InceptionV4, ResNet50, MobileNet, SqueezeNet, AlexNet],
            vec![Vgg19, MobileNet, SqueezeNet, AlexNet, ResNet34],
        ],
        _ => panic!("the paper evaluates mixes of 3, 4 or 5 DNNs, got {k}"),
    }
}

/// The §II motivational workload: AlexNet + MobileNet + VGG-19 +
/// SqueezeNet (84 layers).
pub fn motivational_workload() -> Workload {
    Workload::from_ids([
        ModelId::AlexNet,
        ModelId::MobileNet,
        ModelId::Vgg19,
        ModelId::SqueezeNet,
    ])
}

/// Runs the four §V schedulers on one workload and returns rows
/// normalized against the GPU-only baseline.
///
/// `omniboost` is passed in trained so that the design-time cost is paid
/// once across all mixes (the no-retraining property).
///
/// # Errors
///
/// Propagates [`HwError`] from scheduling or measurement.
pub fn compare_all(
    runtime: &Runtime,
    omniboost: &mut OmniBoost,
    ga_config: GeneticConfig,
    workload: &Workload,
) -> Result<Vec<ComparisonRow>, HwError> {
    let mut rows = Vec::with_capacity(4);
    let baseline = runtime.run(&mut GpuOnly::new(), workload)?;
    let base_t = baseline.report.average.max(1e-12);
    rows.push(ComparisonRow {
        scheduler: "baseline".into(),
        average: baseline.report.average,
        normalized: 1.0,
        decision_time: baseline.decision_time,
    });

    let mut mosaic = Mosaic::new();
    let m = runtime.run(&mut mosaic, workload)?;
    rows.push(ComparisonRow {
        scheduler: "mosaic".into(),
        average: m.report.average,
        normalized: m.report.average / base_t,
        decision_time: m.decision_time,
    });

    let mut ga = Genetic::new(ga_config);
    let g = runtime.run(&mut ga, workload)?;
    rows.push(ComparisonRow {
        scheduler: "ga".into(),
        average: g.report.average,
        normalized: g.report.average / base_t,
        decision_time: g.decision_time,
    });

    let o = runtime.run(omniboost, workload)?;
    rows.push(ComparisonRow {
        scheduler: "omniboost".into(),
        average: o.report.average,
        normalized: o.report.average / base_t,
        decision_time: o.decision_time,
    });
    Ok(rows)
}

/// Measured normalized throughput of the GPU-only mapping (always 1.0) —
/// kept for symmetry and used by Fig. 1 to anchor the series.
///
/// # Errors
///
/// Propagates measurement errors.
pub fn baseline_throughput(runtime: &Runtime, workload: &Workload) -> Result<f64, HwError> {
    Ok(runtime
        .measure(workload, &Mapping::all_on(workload, Device::Gpu))?
        .average)
}

/// Parses an optional `--quick` flag and returns (quick, remaining args).
pub fn parse_quick(args: &[String]) -> (bool, Vec<String>) {
    let quick = args.iter().any(|a| a == "--quick");
    let rest = args.iter().filter(|a| *a != "--quick").cloned().collect();
    (quick, rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_have_five_entries_of_k_models() {
        for k in [3usize, 4, 5] {
            let mixes = paper_mixes(k);
            assert_eq!(mixes.len(), 5);
            assert!(mixes.iter().all(|m| m.len() == k));
        }
    }

    #[test]
    fn mix5_of_3_is_the_lightweight_trio() {
        let mixes = paper_mixes(3);
        assert_eq!(
            mixes[4],
            vec![ModelId::AlexNet, ModelId::Vgg13, ModelId::MobileNet]
        );
    }

    #[test]
    #[should_panic(expected = "mixes of 3, 4 or 5")]
    fn invalid_k_panics() {
        let _ = paper_mixes(6);
    }

    #[test]
    fn motivational_workload_is_84_layers() {
        assert_eq!(motivational_workload().total_layers(), 84);
    }

    #[test]
    fn parse_quick_strips_flag() {
        let (q, rest) = parse_quick(&["--quick".into(), "3".into()]);
        assert!(q);
        assert_eq!(rest, vec!["3".to_string()]);
    }

    #[test]
    fn config_digest_is_order_and_value_sensitive() {
        let a = config_digest(&[("x", "1".into()), ("y", "2".into())]);
        assert_eq!(a, config_digest(&[("x", "1".into()), ("y", "2".into())]));
        assert_ne!(a, config_digest(&[("y", "2".into()), ("x", "1".into())]));
        assert_ne!(a, config_digest(&[("x", "1".into()), ("y", "3".into())]));
    }

    #[test]
    fn policy_and_trace_pairs_cover_every_admission_knob() {
        let policy = omniboost_serve::AdmissionPolicy::default();
        let keys: Vec<&str> = admission_policy_pairs(&policy)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(
            keys,
            [
                "admission.max_backoff_ms",
                "admission.order",
                "admission.retry_backoff_ms",
                "admission.tenant_queue_quota",
                "admission.ttl_ms",
                "admission.validate"
            ]
        );
        let trace = omniboost_models::TraceConfig::default();
        assert!(trace_config_pairs(&trace)
            .iter()
            .any(|(k, _)| *k == "trace.guaranteed_min_tps"));
    }
}
