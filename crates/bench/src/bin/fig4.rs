//! Regenerates **Fig. 4** (§V): training and validation L1-loss curves of
//! the CNN throughput estimator — 500 random workloads (400 train / 100
//! validation), 100 epochs, Adam.
//!
//! Run with `cargo run --release -p omniboost-bench --bin fig4`.

use omniboost::estimator::{CnnEstimator, DatasetConfig, TrainConfig};
use omniboost_bench::parse_quick;
use omniboost_hw::Board;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (quick, _) = parse_quick(&args);

    let board = Board::hikey970();
    let dataset_cfg = DatasetConfig {
        num_workloads: if quick { 80 } else { 500 },
        ..DatasetConfig::default()
    };
    let train_cfg = TrainConfig {
        epochs: if quick { 20 } else { 100 },
        ..TrainConfig::default()
    };

    println!("# Fig. 4 — estimator training behaviour (§V)");
    println!(
        "# dataset: {} random workloads of 1-5 DNNs ({}/{} split)",
        dataset_cfg.num_workloads,
        (dataset_cfg.num_workloads as f64 * train_cfg.train_fraction) as usize,
        dataset_cfg.num_workloads
            - (dataset_cfg.num_workloads as f64 * train_cfg.train_fraction) as usize
    );

    let t0 = Instant::now();
    let dataset = dataset_cfg.generate(&board);
    println!("# dataset generation: {:.1?}", t0.elapsed());

    let t1 = Instant::now();
    let (_, history) = CnnEstimator::train(&board, &dataset, &train_cfg);
    println!(
        "# training {} epochs: {:.1?} (paper: under a minute on a 1660 Ti)",
        train_cfg.epochs,
        t1.elapsed()
    );

    println!("epoch,train_loss,val_loss");
    for (e, (tr, va)) in history.train.iter().zip(&history.validation).enumerate() {
        println!("{},{:.4},{:.4}", e + 1, tr, va);
    }
    println!(
        "# final: train {:.4}, val {:.4} (paper curve: ~0.35 -> ~0.10)",
        history.final_train_loss(),
        history.final_validation_loss()
    );
}
