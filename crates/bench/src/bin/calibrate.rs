//! Calibration probe for the board model (not a paper artefact): prints
//! the raw quantities the DESIGN.md §5 targets are expressed in, so the
//! saturation/efficiency constants can be tuned against the paper's
//! observed shapes.

use omniboost::baselines::RandomSplit;
use omniboost::mcts::SearchBudget;
use omniboost::{OracleOmniBoost, Runtime};
use omniboost_bench::{motivational_workload, paper_mixes};
use omniboost_hw::{analytic::solo_throughput, Board, Device, Mapping, Scheduler, Workload};
use omniboost_models::{zoo, ModelId};

fn main() {
    let board = Board::hikey970();
    let runtime = Runtime::new(board.clone());

    println!("## solo inf/s per model per device");
    for id in ModelId::ALL {
        let dnn = zoo::build(id);
        print!("{id:<14}");
        for d in Device::ALL {
            print!(" {:>10.2}", solo_throughput(&board, &dnn, d));
        }
        println!();
    }

    println!("\n## fig1 mix: all-GPU baseline vs per-DNN shared rates");
    let w = motivational_workload();
    let base = runtime
        .measure(&w, &Mapping::all_on(&w, Device::Gpu))
        .unwrap();
    println!(
        "baseline T = {:.3}, per-dnn = {:?}",
        base.average, base.per_dnn
    );

    let mut splitter = RandomSplit::new(0xF161);
    let mut beat = 0;
    let mut best: f64 = 0.0;
    for _ in 0..100 {
        let m = splitter.decide(&board, &w).unwrap();
        let t = runtime.measure(&w, &m).unwrap().average / base.average;
        if t > 1.0 {
            beat += 1;
        }
        best = best.max(t);
    }
    println!("random splits: {beat}/100 beat baseline, best {best:.2}x");

    for k in [3usize, 4, 5] {
        let workload: Workload = paper_mixes(k)[0].iter().copied().collect();
        let base = runtime
            .measure(&workload, &Mapping::all_on(&workload, Device::Gpu))
            .unwrap()
            .average;
        let mut oracle = OracleOmniBoost::new(SearchBudget::with_iterations(300), 3, 7);
        let m = oracle.decide(&board, &workload).unwrap();
        let t = runtime.measure(&workload, &m).unwrap().average;
        println!(
            "{k}-mix[0]: baseline {base:.3}, oracle-mcts {t:.3}, ratio {:.2}x",
            t / base
        );
    }
}
