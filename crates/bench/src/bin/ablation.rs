//! Ablations of OmniBoost's design choices (DESIGN.md §6):
//!
//! 1. **MCTS budget** — throughput vs decision latency at 50…1000
//!    iterations (the paper fixes 500 and notes the budget is tunable).
//! 2. **Estimator vs oracle guidance** — how much the CNN's approximation
//!    error costs against MCTS guided by the board itself.
//! 3. **Stage cap `x`** — validates the losing-state rule (`x` = device
//!    count) against tighter/looser caps.
//! 4. **GELU vs ReLU** and **L1 vs L2** — the estimator training choices
//!    the paper motivates in §IV-B/§V.
//!
//! Run with `cargo run --release -p omniboost-bench --bin ablation [-- --quick]`.

use omniboost::estimator::{ActivationKind, CnnEstimator, DatasetConfig, LossKind, TrainConfig};
use omniboost::mcts::{Mcts, SchedulingEnv, SearchBudget};
use omniboost::{OmniBoost, OmniBoostConfig, OracleOmniBoost, Runtime};
use omniboost_bench::{paper_mixes, parse_quick};
use omniboost_hw::{Board, Workload};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (quick, _) = parse_quick(&args);

    let board = Board::hikey970();
    let runtime = Runtime::new(board.clone());
    let workload: Workload = paper_mixes(4)[0].iter().copied().collect();

    let dataset_cfg = DatasetConfig {
        num_workloads: if quick { 60 } else { 300 },
        ..DatasetConfig::default()
    };
    let epochs = if quick { 15 } else { 60 };
    println!("# Ablations (workload: {workload})\n");

    let dataset = dataset_cfg.generate(&board);

    // --- 4. Activation & loss ablation (train 4 estimator variants). ---
    println!("## Estimator training: GELU vs ReLU, L1 vs L2");
    println!("{:<18} {:>12} {:>12}", "variant", "train-loss", "val-loss");
    let mut trained_gelu_l1 = None;
    for (name, activation, loss) in [
        ("gelu+l1 (paper)", ActivationKind::Gelu, LossKind::L1),
        ("relu+l1", ActivationKind::Relu, LossKind::L1),
        ("gelu+l2", ActivationKind::Gelu, LossKind::L2),
        ("relu+l2", ActivationKind::Relu, LossKind::L2),
    ] {
        let cfg = TrainConfig {
            epochs,
            activation,
            loss,
            ..TrainConfig::default()
        };
        let (est, history) = CnnEstimator::train(&board, &dataset, &cfg);
        println!(
            "{:<18} {:>12.4} {:>12.4}",
            name,
            history.final_train_loss(),
            history.final_validation_loss()
        );
        if activation == ActivationKind::Gelu && loss == LossKind::L1 {
            trained_gelu_l1 = Some(est);
        }
    }
    let estimator = trained_gelu_l1.expect("paper variant trained");

    // --- 1. Budget sweep. ---
    println!("\n## MCTS budget sweep (estimator-guided)");
    println!("{:<10} {:>12} {:>12}", "budget", "T (inf/s)", "decision");
    let budgets: &[usize] = if quick {
        &[25, 100, 250]
    } else {
        &[50, 100, 250, 500, 1000]
    };
    for &b in budgets {
        let t0 = Instant::now();
        let env = SchedulingEnv::new(&workload, &estimator, 3).expect("env");
        let result = Mcts::new(SearchBudget::with_iterations(b)).search(&env, 7);
        let mapping = env.mapping_of(&result.best_state);
        let dt = t0.elapsed();
        let t = runtime
            .measure(&workload, &mapping)
            .expect("measure")
            .average;
        println!("{:<10} {:>12.3} {:>12.1?}", b, t, dt);
    }

    // --- 2. Guidance: clamped CNN vs pure CNN vs board oracle. ---
    println!("\n## Guidance: CNN (feasibility-clamped) vs pure CNN vs board oracle (budget 250)");
    {
        let cfg = OmniBoostConfig {
            budget: SearchBudget::with_iterations(250),
            ..OmniBoostConfig::quick()
        };
        let mut est_sched = OmniBoost::from_estimator(estimator, cfg.clone());
        let out = runtime
            .run(&mut est_sched, &workload)
            .expect("estimator run");
        println!(
            "cnn+clamp:     T = {:.3} inf/s ({:?})",
            out.report.average, out.decision_time
        );
        // Pure CNN (no clamp): retrain the same variant and disable it.
        let (pure, _) = CnnEstimator::train(
            &board,
            &dataset,
            &TrainConfig {
                epochs,
                ..TrainConfig::default()
            },
        );
        let pure = pure.with_feasibility_clamp(false);
        let mut pure_sched = OmniBoost::from_estimator(pure, cfg);
        let out = runtime.run(&mut pure_sched, &workload).expect("pure run");
        println!(
            "cnn (no clamp): T = {:.3} inf/s ({:?})",
            out.report.average, out.decision_time
        );
        let mut oracle = OracleOmniBoost::new(SearchBudget::with_iterations(250), 3, 7);
        let out = runtime.run(&mut oracle, &workload).expect("oracle run");
        println!(
            "board oracle:   T = {:.3} inf/s ({:?})",
            out.report.average, out.decision_time
        );
    }

    // --- 3. Stage-cap sweep (oracle-guided to isolate the cap). ---
    println!("\n## Pipeline stage cap x (oracle-guided, budget 200)");
    println!("{:<6} {:>12}", "x", "T (inf/s)");
    for cap in 1..=5usize {
        let mut sched = OracleOmniBoost::new(SearchBudget::with_iterations(200), cap, 13);
        let out = runtime.run(&mut sched, &workload).expect("cap run");
        println!("{:<6} {:>12.3}", cap, out.report.average);
    }
    println!("# paper's rule: x = 3 (the device count) avoids redundant transfer stages.");
}
