//! Diagnostic probe (not a paper artefact): estimator prediction vs board
//! truth on canonical mappings, plus what MCTS/MOSAIC actually choose.

use omniboost::baselines::Mosaic;
use omniboost::estimator::{CnnEstimator, DatasetConfig, TrainConfig};
use omniboost::mcts::{Mcts, SchedulingEnv, SearchBudget};
use omniboost_hw::{Board, Device, Mapping, Scheduler, ThroughputModel, Workload};
use omniboost_models::ModelId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let board = Board::hikey970();
    let sim = board.simulator();
    let dataset = DatasetConfig {
        num_workloads: 2000,
        ..DatasetConfig::default()
    }
    .generate(&board);
    let (est, hist) = CnnEstimator::train(
        &board,
        &dataset,
        &TrainConfig {
            epochs: 100,
            ..TrainConfig::default()
        },
    );
    println!("val loss {:.4}", hist.final_validation_loss());

    let w = Workload::from_ids([ModelId::Vgg19, ModelId::ResNet50, ModelId::InceptionV3]);
    let mut rng = StdRng::seed_from_u64(1);

    let mut cases: Vec<(String, Mapping)> = vec![
        ("all-gpu".into(), Mapping::all_on(&w, Device::Gpu)),
        ("all-big".into(), Mapping::all_on(&w, Device::BigCpu)),
        ("all-little".into(), Mapping::all_on(&w, Device::LittleCpu)),
        (
            "spread g/b/l".into(),
            Mapping::new(vec![
                vec![Device::Gpu; 24],
                vec![Device::BigCpu; 20],
                vec![Device::LittleCpu; 20],
            ]),
        ),
    ];
    for i in 0..4 {
        cases.push((format!("random-{i}"), Mapping::random(&w, 3, &mut rng)));
    }
    let env = SchedulingEnv::new(&w, &est, 3).unwrap();
    let result = Mcts::new(SearchBudget::with_iterations(500)).search(&env, 7);
    cases.push(("mcts-choice".into(), env.mapping_of(&result.best_state)));
    let mut mosaic = Mosaic::new();
    cases.push(("mosaic-choice".into(), mosaic.decide(&board, &w).unwrap()));

    println!("{:<14} {:>10} {:>10}", "mapping", "predicted", "measured");
    for (name, m) in &cases {
        let pred = est.predict_average(&w, m).unwrap();
        let truth = sim.evaluate(&w, m).unwrap().average;
        println!("{name:<14} {pred:>10.3} {truth:>10.3}");
    }
    println!("\nmcts mapping:\n{}", cases[cases.len() - 2].1);
    println!("\nmosaic mapping:\n{}", cases[cases.len() - 1].1);
}
