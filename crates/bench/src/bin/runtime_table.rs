//! Regenerates the **§V-B run-time comparison** (prose table): decision
//! latency and design-time cost of every method on a 4-DNN mix.
//!
//! Paper narrative: baseline ≈ instant (but worst throughput); MOSAIC ≈
//! 1 s query after a very costly 14,000-point data collection; GA ≈ 5
//! minutes per mix (re-evolves and re-measures per workload); OmniBoost ≈
//! 30 s dominated by 500 estimator queries, with no retraining across
//! workloads.
//!
//! Run with `cargo run --release -p omniboost-bench --bin runtime_table`.

use omniboost::baselines::{Genetic, GeneticConfig, GpuOnly, Mosaic};
use omniboost::{OmniBoost, OmniBoostConfig, Runtime};
use omniboost_bench::{paper_mixes, parse_quick};
use omniboost_hw::{Board, Workload};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (quick, _) = parse_quick(&args);

    let board = Board::hikey970();
    let runtime = Runtime::new(board.clone());
    let workload: Workload = paper_mixes(4)[0].iter().copied().collect();

    println!("# §V-B — run-time performance evaluation");
    println!("# query workload: {workload}\n");
    println!(
        "{:<12} {:>16} {:>14} {:>12} {:>10}",
        "method", "design-time", "decision", "queries", "T (inf/s)"
    );

    // Baseline: no design time, instant decision.
    {
        let out = runtime
            .run(&mut GpuOnly::new(), &workload)
            .expect("baseline");
        println!(
            "{:<12} {:>16} {:>14?} {:>12} {:>10.3}",
            "baseline", "none", out.decision_time, "0", out.report.average
        );
    }

    // MOSAIC: expensive data collection, cheap query.
    {
        let mut mosaic = Mosaic::new();
        let t0 = Instant::now();
        mosaic.train(runtime.board());
        let design = t0.elapsed();
        let out = runtime.run(&mut mosaic, &workload).expect("mosaic");
        println!(
            "{:<12} {:>16} {:>14?} {:>12} {:>10.3}",
            "mosaic",
            format!("{design:?} (14k pts)"),
            out.decision_time,
            "1",
            out.report.average
        );
    }

    // GA: no design time, but re-evolves (and re-measures) per workload.
    {
        let cfg = if quick {
            GeneticConfig {
                population: 10,
                generations: 6,
                ..GeneticConfig::default()
            }
        } else {
            GeneticConfig::default()
        };
        let mut ga = Genetic::new(cfg);
        let out = runtime.run(&mut ga, &workload).expect("ga");
        println!(
            "{:<12} {:>16} {:>14?} {:>12} {:>10.3}",
            "ga",
            "per-workload",
            out.decision_time,
            ga.last_evaluations().to_string(),
            out.report.average
        );
    }

    // OmniBoost: one-off design time, 500-query decision, no retraining.
    {
        let cfg = if quick {
            OmniBoostConfig::quick()
        } else {
            OmniBoostConfig::default()
        };
        let t0 = Instant::now();
        let (mut ob, _) = OmniBoost::design_time(&board, cfg);
        let design = t0.elapsed();
        let out = runtime.run(&mut ob, &workload).expect("omniboost");
        println!(
            "{:<12} {:>16} {:>14?} {:>12} {:>10.3}",
            "omniboost",
            format!("{design:?} (once)"),
            out.decision_time,
            ob.last_evaluations().to_string(),
            out.report.average
        );
    }

    println!("\n# On the physical board the ordering is baseline < mosaic < omniboost (~30 s)");
    println!("# << ga (~5 min): each GA query is a real deployment + measurement (seconds each),");
    println!("# while omniboost's 500 queries hit a cheap CNN. Our simulator measures mappings in");
    println!("# milliseconds, so the GA's *wall-clock* advantage here is an artefact of the");
    println!("# substrate; the queries column carries the paper's cost model (60 board");
    println!("# measurements vs 500 estimator inferences).");
}
