//! Regenerates **Fig. 1** (§II): normalized throughput of 200 random
//! layer splits of {AlexNet, MobileNet, VGG-19, SqueezeNet} against the
//! all-on-GPU baseline, plus the design-space combinatorics quoted in the
//! text (C₃(84) ≈ 95,000).
//!
//! Run with `cargo run --release -p omniboost-bench --bin fig1`.

use omniboost::baselines::RandomSplit;
use omniboost::Runtime;
use omniboost_bench::{baseline_throughput, motivational_workload, parse_quick};
use omniboost_hw::{Board, Scheduler};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (quick, _) = parse_quick(&args);
    let setups = if quick { 40 } else { 200 };

    let board = Board::hikey970();
    let runtime = Runtime::new(board);
    let workload = motivational_workload();

    let n = workload.total_layers() as u64;
    let combos = n * (n - 1) * (n - 2) / 6;
    println!("# Fig. 1 — motivational study (§II)");
    println!("# workload: {workload} ({n} layers)");
    println!("# design space: C_3({n}) = {combos} (paper: ~95,000)");

    let base = baseline_throughput(&runtime, &workload).expect("baseline measurement");
    println!("# baseline (all-on-GPU) T = {base:.3} inf/s -> normalized 1.0");
    println!("setup,normalized_throughput");

    let mut splitter = RandomSplit::new(0xF161);
    let mut series = Vec::with_capacity(setups);
    for i in 0..setups {
        let mapping = splitter
            .decide(runtime.board(), &workload)
            .expect("random mapping");
        let t = runtime
            .measure(&workload, &mapping)
            .expect("measurement")
            .average;
        let norm = t / base;
        series.push(norm);
        println!("{},{:.4}", i + 1, norm);
    }

    let best = series.iter().cloned().fold(f64::MIN, f64::max);
    let above = series.iter().filter(|v| **v > 1.0).count();
    println!("# best set-up: {best:.3}x baseline (paper: up to ~1.6x)");
    println!(
        "# set-ups beating the baseline: {above}/{} (paper: a minority, but clearly present)",
        series.len()
    );
}
