//! Phase-level timing probe for the estimator training hot path: where
//! does a §V-shaped training step actually spend its time? Used to aim
//! the GEMM-backward optimization work (and to re-check on new hosts).

use omniboost::estimator::{ActivationKind, DatasetConfig, EstimatorNet};
use omniboost::tensor::{Gelu, Loss, Module, MseLoss, Tensor};
use omniboost_hw::Board;
use std::time::Instant;

fn time_ms(mut f: impl FnMut(), reps: usize) -> f64 {
    // One warm-up, then the median of `reps`.
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn main() {
    let board = Board::hikey970();
    let dataset = DatasetConfig {
        num_workloads: 40,
        threads: 4,
        ..DatasetConfig::default()
    }
    .generate(&board);
    let m = dataset.embedding.num_models();
    let l = dataset.embedding.max_layers();
    let batch = 32usize;
    let mut data = Vec::new();
    for i in 0..batch {
        data.extend_from_slice(dataset.samples[i % dataset.samples.len()].input.data());
    }
    let x = Tensor::from_vec(data, &[batch, 3, m, l]);
    let target = Tensor::randn(&[batch, 3], 1);

    let mut net = EstimatorNet::new(m, l, ActivationKind::Gelu, 42);
    let reps = 20;

    let fwd_train = time_ms(
        || {
            let _ = net.forward(&x);
        },
        reps,
    );
    net.set_training(false);
    let fwd_eval = time_ms(
        || {
            let _ = net.forward(&x);
        },
        reps,
    );
    net.set_training(true);

    let y = net.forward(&x);
    let (_, grad) = MseLoss.compute(&y, &target);
    let bwd_gemm = time_ms(
        || {
            net.zero_grad();
            let _ = net.backward(&grad);
        },
        reps,
    );
    net.set_gemm_backward(false);
    let bwd_direct = time_ms(
        || {
            net.zero_grad();
            let _ = net.backward(&grad);
        },
        reps,
    );
    net.set_gemm_backward(true);

    // GELU in isolation at a training-step-representative element count
    // (sum of every activation map in the net for this batch).
    let gelu_elems = batch * (8 + 16) * m * l + batch * (16 * 3 + 24 * 3) * (m / 2) * (l / 2);
    let gx = Tensor::randn(&[gelu_elems], 2);
    let mut gelu = Gelu::new();
    let gelu_fwd = time_ms(
        || {
            let _ = gelu.forward(&gx);
        },
        reps,
    );
    let gy = gelu.forward(&gx);
    let gelu_bwd = time_ms(
        || {
            let _ = gelu.backward(&gy);
        },
        reps,
    );

    // Raw kernel throughput at conv2's exact shapes (15M MAC each).
    {
        use omniboost::tensor::{gemm_nn, gemm_nt, gemm_tn, GemmScratch};
        let (oc, kk, cols_w, spatial) = (16usize, 72usize, 13024usize, 407usize);
        let a = Tensor::randn(&[oc * cols_w], 7);
        let bmat = Tensor::randn(&[kk * cols_w], 8);
        let mut c = vec![0.0f32; oc.max(kk) * cols_w];
        let mut scratch = GemmScratch::default();
        let nn = time_ms(
            || gemm_nn(oc, kk, cols_w, a.data(), bmat.data(), &mut c, &mut scratch),
            reps,
        );
        let mut cw = vec![0.0f32; oc * kk];
        let nt = time_ms(
            || gemm_nt(oc, cols_w, kk, a.data(), bmat.data(), &mut cw),
            reps,
        );
        let mut dc = vec![0.0f32; kk * spatial];
        let tn = time_ms(
            || {
                for ni in 0..32 {
                    gemm_tn(
                        kk,
                        oc,
                        spatial,
                        bmat.data(),
                        &a.data()[ni * spatial..],
                        cols_w,
                        &mut dc,
                    );
                }
            },
            reps,
        );
        let gmacs = 15.0e6 / 1e6; // MMAC per call
        println!(
            "  gemm @conv2 shapes: nn {nn:.2} ms ({:.1} GMAC/s), nt {nt:.2} ms ({:.1}), tn {tn:.2} ms ({:.1})",
            gmacs / nn,
            gmacs / nt,
            gmacs / tn,
        );
    }

    // Per-layer-type timings at this batch's real shapes.
    use omniboost::tensor::{Conv2d, MaxPool2d};
    let mut conv2 = Conv2d::new(8, 16, 3, 1, 1, 3);
    let cx = Tensor::randn(&[batch, 8, m, l], 4);
    let conv2_fwd = time_ms(
        || {
            let _ = conv2.forward(&cx);
        },
        reps,
    );
    let cy = conv2.forward(&cx);
    let cg = Tensor::randn(cy.shape(), 5);
    let conv2_bwd = time_ms(
        || {
            conv2.zero_grad();
            let _ = conv2.backward(&cg);
        },
        reps,
    );
    let mut pool = MaxPool2d::new(2);
    let px = Tensor::randn(&[batch, 16, m, l], 6);
    let pool_fwd = time_ms(
        || {
            let _ = pool.forward(&px);
        },
        reps,
    );
    println!("  conv2 (8->16, 11x37) fwd: {conv2_fwd:.2} ms, bwd(gemm): {conv2_bwd:.2} ms");
    println!("  maxpool (16ch, 11x37) fwd: {pool_fwd:.2} ms");

    println!("batch {batch} on {m}x{l} grid (median of {reps}):");
    println!("  forward (train mode): {fwd_train:.2} ms");
    println!("  forward (eval mode):  {fwd_eval:.2} ms");
    println!("  backward (gemm):      {bwd_gemm:.2} ms");
    println!("  backward (direct):    {bwd_direct:.2} ms");
    println!("  gelu fwd over {gelu_elems} elems: {gelu_fwd:.2} ms");
    println!("  gelu bwd over {gelu_elems} elems: {gelu_bwd:.2} ms");
    println!(
        "  step speedup bound: direct {:.2} ms vs gemm {:.2} ms = {:.2}x",
        fwd_train + bwd_direct,
        fwd_train + bwd_gemm,
        (fwd_train + bwd_direct) / (fwd_train + bwd_gemm)
    );
}
