//! Regenerates **Fig. 5a/5b/5c** (§V-A): normalized average throughput of
//! baseline / MOSAIC / GA / OmniBoost over five mixes of 3, 4 and 5
//! concurrent DNNs, plus the per-size averages the paper quotes
//! (+54% at 3 DNNs, ×4.6 at 4 DNNs, +22% at 5 DNNs vs the baseline).
//!
//! Run with `cargo run --release -p omniboost-bench --bin fig5 [-- 3|4|5] [--quick]`.

use omniboost::baselines::GeneticConfig;
use omniboost::{format_comparison, OmniBoost, OmniBoostConfig, Runtime};
use omniboost_bench::{compare_all, paper_mixes, parse_quick};
use omniboost_hw::{Board, Workload};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (quick, rest) = parse_quick(&args);
    let sizes: Vec<usize> = if rest.is_empty() {
        vec![3, 4, 5]
    } else {
        rest.iter()
            .map(|a| a.parse().expect("size must be 3, 4 or 5"))
            .collect()
    };

    let board = Board::hikey970();
    let runtime = Runtime::new(board.clone());

    // Design time, once for every mix — OmniBoost never retrains.
    let config = if quick {
        OmniBoostConfig::quick()
    } else {
        OmniBoostConfig::default()
    };
    println!("# Fig. 5 — throughput comparison (§V-A)");
    let t0 = Instant::now();
    let (mut omniboost, history) = OmniBoost::design_time(&board, config);
    println!(
        "# design time (dataset + training): {:.1?}, final val L1 = {:.4}",
        t0.elapsed(),
        history.final_validation_loss()
    );

    let ga_config = if quick {
        GeneticConfig {
            population: 10,
            generations: 6,
            ..GeneticConfig::default()
        }
    } else {
        GeneticConfig::default()
    };

    for k in sizes {
        println!(
            "\n## Fig. 5{} — {k} concurrent DNNs",
            (b'a' + (k as u8 - 3)) as char
        );
        let mut sums = [0.0f64; 4];
        for (mi, mix) in paper_mixes(k).iter().enumerate() {
            let workload: Workload = mix.iter().copied().collect();
            let rows = compare_all(&runtime, &mut omniboost, ga_config, &workload)
                .expect("mix evaluation");
            for (si, row) in rows.iter().enumerate() {
                sums[si] += row.normalized;
            }
            print!(
                "{}",
                format_comparison(&format!("mix-{} {workload}", mi + 1), &rows)
            );
        }
        println!("--- Average over 5 mixes (normalized to baseline) ---");
        for (name, sum) in ["baseline", "mosaic", "ga", "omniboost"].iter().zip(sums) {
            println!("{name:<12} {:.2}x", sum / 5.0);
        }
        match k {
            3 => println!(
                "# paper: omniboost +54% vs baseline, +19% vs mosaic, +18% vs ga; mix-5 ties"
            ),
            4 => println!("# paper: omniboost x4.6 vs baseline, x2.83 vs mosaic, +23% vs ga"),
            5 => println!("# paper: mosaic -2.7%, ga +7%, omniboost +22% vs baseline"),
            _ => {}
        }
    }
}
