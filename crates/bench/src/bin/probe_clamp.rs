//! Diagnostic probe (not a paper artefact): does the feasibility clamp
//! stop the MCTS from exploiting a small-data estimator?

use omniboost::estimator::{CnnEstimator, DatasetConfig, TrainConfig};
use omniboost::mcts::{Mcts, SchedulingEnv, SearchBudget};
use omniboost_hw::{Board, Device, Mapping, ThroughputModel, Workload};
use omniboost_models::ModelId;

fn main() {
    let board = Board::hikey970();
    let sim = board.simulator();
    let dataset = DatasetConfig {
        num_workloads: 500,
        ..DatasetConfig::default()
    }
    .generate(&board);
    let (est, hist) = CnnEstimator::train(
        &board,
        &dataset,
        &TrainConfig {
            epochs: 100,
            ..TrainConfig::default()
        },
    );
    println!("val loss {:.4}", hist.final_validation_loss());

    for mix in [
        vec![ModelId::Vgg19, ModelId::ResNet50, ModelId::InceptionV3],
        vec![
            ModelId::Vgg19,
            ModelId::ResNet50,
            ModelId::InceptionV3,
            ModelId::Vgg16,
        ],
        vec![
            ModelId::ResNet34,
            ModelId::AlexNet,
            ModelId::MobileNet,
            ModelId::SqueezeNet,
            ModelId::Vgg13,
        ],
    ] {
        let w = Workload::from_ids(mix);
        let base = sim
            .evaluate(&w, &Mapping::all_on(&w, Device::Gpu))
            .unwrap()
            .average;
        let env = SchedulingEnv::new(&w, &est, 3).unwrap();
        let result = Mcts::new(SearchBudget::default()).search(&env, 7);
        let mapping = env.mapping_of(&result.best_state);
        let pred = est.predict_average(&w, &mapping).unwrap();
        let truth = sim.evaluate(&w, &mapping).unwrap().average;
        println!(
            "{w}: baseline {base:.3} | mcts pred {pred:.3} measured {truth:.3} -> {:.2}x",
            truth / base
        );
    }
}
