//! Log-bucketed, exactly-mergeable latency histogram.
//!
//! The bucket layout is derived **deterministically from the IEEE-754
//! bit pattern** of the recorded value: each power-of-two octave is cut
//! into [`SUB_BUCKETS`] equal-width sub-buckets addressed by the top
//! four mantissa bits, so [`LogHistogram::bucket_index`] is a handful
//! of shifts and masks — no `log2`, no search, no libm. The relative
//! bucket width is at most `1/16 ≈ 6.25%` (4.4% mid-scale), which is
//! the quantile error bound: any reported quantile lies inside the
//! bounds of the bucket that contains its nearest-rank sample.
//!
//! `count`, `sum` (hence the mean), `min` and `max` are tracked
//! exactly; only quantiles are bucket-quantized. Two histograms built
//! from disjoint sample streams [`merge`](LogHistogram::merge) into
//! exactly the histogram of the concatenated stream (bucket counts are
//! plain integer adds), which is what lets sharded recorders and
//! per-board collectors aggregate without resampling.

/// Sub-buckets per power-of-two octave (top 4 mantissa bits).
pub const SUB_BUCKETS: usize = 16;
const SUB_BITS: u32 = 4;

/// Smallest finite bucketed exponent: values below `2^MIN_EXP` ms
/// (≈ 1 ns) land in the underflow bucket.
const MIN_EXP: i32 = -20;
/// One past the largest bucketed exponent: values at or above
/// `2^MAX_EXP` ms (≈ 4.8 hours) land in the overflow bucket.
const MAX_EXP: i32 = 24;

const OCTAVES: usize = (MAX_EXP - MIN_EXP) as usize;
/// Total bucket count: underflow + regular octaves + overflow.
pub const BUCKETS: usize = OCTAVES * SUB_BUCKETS + 2;
const OVERFLOW: usize = BUCKETS - 1;

/// A fixed-footprint latency histogram over milliseconds.
///
/// Values are `f64` milliseconds; non-positive and sub-nanosecond
/// values fall into the underflow bucket, multi-hour values into the
/// overflow bucket. Recording is O(1) and allocation-free after
/// construction.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket index holding `value_ms`. Monotonic in the value:
    /// `a <= b` implies `bucket_index(a) <= bucket_index(b)` (NaN maps
    /// to the underflow bucket).
    pub fn bucket_index(value_ms: f64) -> usize {
        if value_ms.is_nan() || value_ms <= 0.0 {
            return 0; // negatives, zero and NaN underflow
        }
        let bits = value_ms.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        if exp < MIN_EXP {
            return 0;
        }
        if exp >= MAX_EXP {
            return OVERFLOW;
        }
        let sub = ((bits >> (52 - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        1 + (exp - MIN_EXP) as usize * SUB_BUCKETS + sub
    }

    /// The `[lower, upper)` bounds of bucket `index` in milliseconds.
    /// The underflow bucket reports `(-inf, 2^-20)`, the overflow
    /// bucket `[2^24, +inf)`.
    pub fn bucket_bounds(index: usize) -> (f64, f64) {
        // Reconstructs the smallest f64 whose bit pattern maps to
        // regular bucket `i` (0-based within the regular range);
        // `i == OCTAVES * SUB_BUCKETS` yields `2^MAX_EXP` exactly.
        let lower_of = |i: usize| -> f64 {
            let exp = MIN_EXP + (i / SUB_BUCKETS) as i32;
            let sub = (i % SUB_BUCKETS) as u64;
            f64::from_bits((((exp + 1023) as u64) << 52) | (sub << (52 - SUB_BITS)))
        };
        if index == 0 {
            (f64::NEG_INFINITY, lower_of(0))
        } else if index >= OVERFLOW {
            (lower_of(OCTAVES * SUB_BUCKETS), f64::INFINITY)
        } else {
            (lower_of(index - 1), lower_of(index))
        }
    }

    /// Records one value. O(1), never allocates.
    pub fn record(&mut self, value_ms: f64) {
        self.counts[Self::bucket_index(value_ms)] += 1;
        self.count += 1;
        self.sum += value_ms;
        if value_ms < self.min {
            self.min = value_ms;
        }
        if value_ms > self.max {
            self.max = value_ms;
        }
    }

    /// Folds `other` into `self`. Bucket counts are integer adds, so
    /// the merge of histograms over disjoint streams equals the
    /// histogram of the concatenated stream.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The value at 1-based nearest rank `rank` (clamped to
    /// `[1, count]`): a point inside the bounds of the bucket holding
    /// that rank, refined by the exact tracked min/max. Returns 0 on an
    /// empty histogram.
    pub fn rank_value(&self, rank: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                if index == 0 {
                    // A rank landing in the underflow bucket means the
                    // bucket is non-empty, so the exact global min lives
                    // here and is the best in-bucket estimate.
                    return self.min;
                }
                if index == OVERFLOW {
                    return self.max;
                }
                let (lower, upper) = Self::bucket_bounds(index);
                let mid = lower + (upper - lower) * 0.5;
                // min/max are exact and bracket every sample in this
                // bucket that they share it with, so clamping never
                // leaves the bucket.
                return mid.clamp(self.min.max(lower), self.max.min(upper));
            }
        }
        self.max
    }

    /// Nearest-rank quantile `q` in `[0, 1]`, within one bucket width
    /// of the exact sample quantile.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        self.rank_value(rank.max(1))
    }

    /// Iterates non-empty buckets as `(upper_bound_ms, count)` in
    /// ascending bucket order — the sparse form Prometheus exposition
    /// builds its cumulative `_bucket` series from.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_bounds(i).1, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_partition_the_positive_axis() {
        for i in 1..OVERFLOW {
            let (_, upper) = LogHistogram::bucket_bounds(i);
            let (next_lower, _) = LogHistogram::bucket_bounds(i + 1);
            assert_eq!(
                upper,
                next_lower,
                "bucket {i} upper != bucket {} lower",
                i + 1
            );
        }
    }

    #[test]
    fn index_agrees_with_bounds() {
        for i in 1..BUCKETS - 1 {
            let (lower, upper) = LogHistogram::bucket_bounds(i);
            assert_eq!(LogHistogram::bucket_index(lower), i);
            let just_under = f64::from_bits(upper.to_bits() - 1);
            assert_eq!(LogHistogram::bucket_index(just_under), i);
        }
    }

    #[test]
    fn exact_stats_and_quantile_sanity() {
        let mut h = LogHistogram::new();
        for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 110.0);
        assert_eq!(h.mean(), 22.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
        let p99 = h.quantile(0.99);
        assert!((99.0..=101.0).contains(&p99), "p99 {p99}");
        let med = h.rank_value(3);
        assert!((2.9..=3.2).contains(&med), "median {med}");
    }

    #[test]
    fn zero_and_negative_underflow() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(0.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.5), 0.0);
    }
}
