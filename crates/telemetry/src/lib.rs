//! Observability layer for the OmniBoost stack: mergeable
//! log-bucketed histograms, scoped RAII spans over a monotonic clock,
//! a bounded flight recorder, and export to Prometheus text and
//! Chrome `trace_event` JSON.
//!
//! The central type is [`Telemetry`], a cheaply-clonable handle that
//! is either **recording** (backed by a shared registry, span buffer
//! and flight recorder) or a **no-op** (the default — every operation
//! is a branch on a `None`). Sims and engines accept the handle via
//! `set_telemetry` setters, so replay digests never see it: telemetry
//! observes decisions, it never feeds them.
//!
//! Naming convention: span and event names are dot-separated with the
//! owning crate as the first segment (`core.decide.search`,
//! `serve.tick.flush`, `orchestrator.rebalance`, `rpc.submit`). The
//! Prometheus exporter rewrites dots to underscores and prefixes
//! `omniboost_span_` for span-duration histograms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
mod flight;
mod histogram;
mod registry;

pub use flight::{FlightEvent, FlightRecorder};
pub use histogram::{LogHistogram, BUCKETS, SUB_BUCKETS};
pub use registry::Registry;

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default flight-recorder capacity (events).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;
/// Default completed-span buffer capacity.
pub const DEFAULT_SPAN_CAPACITY: usize = 8192;

/// A finished span: name, logical thread, and microsecond start/
/// duration relative to the owning [`Telemetry`]'s epoch.
#[derive(Debug, Clone)]
pub struct CompletedSpan {
    /// Dot-separated span name, crate prefix first
    /// (e.g. `"core.decide.search"`).
    pub name: &'static str,
    /// Small dense logical thread id (per OS thread).
    pub tid: u64,
    /// Start, microseconds since the telemetry epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

#[derive(Debug)]
struct SpanBuffer {
    ring: VecDeque<CompletedSpan>,
    capacity: usize,
    dropped: u64,
}

impl SpanBuffer {
    fn push(&mut self, span: CompletedSpan) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(span);
    }
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    registry: Registry,
    spans: Mutex<SpanBuffer>,
    flight: Mutex<FlightRecorder>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

// Small dense per-OS-thread ids for trace rendering. Global (not per
// handle): ids only need to distinguish threads, not handles.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
thread_local! {
    static LOGICAL_TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn logical_tid() -> u64 {
    LOGICAL_TID.with(|t| *t)
}

/// Handle to the telemetry pipeline. `Clone` is an `Arc` bump; the
/// [`Default`]/[`Telemetry::noop`] form makes every operation a cheap
/// early return, which is what sims embed so replay stays free.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// The disabled handle: all operations are no-ops.
    pub fn noop() -> Self {
        Self::default()
    }

    /// A recording handle with default buffer capacities.
    pub fn recording() -> Self {
        Self::recording_with_capacity(DEFAULT_FLIGHT_CAPACITY, DEFAULT_SPAN_CAPACITY)
    }

    /// A recording handle retaining at most `flight_capacity` events
    /// and `span_capacity` completed spans.
    pub fn recording_with_capacity(flight_capacity: usize, span_capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                registry: Registry::new(),
                spans: Mutex::new(SpanBuffer {
                    ring: VecDeque::with_capacity(span_capacity.min(4096)),
                    capacity: span_capacity.max(1),
                    dropped: 0,
                }),
                flight: Mutex::new(FlightRecorder::new(flight_capacity)),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since this handle's epoch (0 for no-op handles).
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Adds `by` to counter `name`.
    pub fn incr(&self, name: &'static str, by: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.incr(name, by);
        }
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge(name, value);
        }
    }

    /// Records `value_ms` into histogram `name`.
    pub fn observe_ms(&self, name: &'static str, value_ms: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.observe(name, value_ms);
        }
    }

    /// Appends a structured event to the flight recorder. Callers on
    /// hot paths should gate `format!`-built details behind
    /// [`Telemetry::is_recording`]; the events this records (degrades,
    /// warm boots, drain transitions) are rare by construction.
    pub fn event(&self, kind: &'static str, detail: String) {
        if let Some(inner) = &self.inner {
            let at_us = inner.epoch.elapsed().as_micros() as u64;
            let mut flight = inner.flight.lock().unwrap_or_else(|e| e.into_inner());
            flight.push(FlightEvent {
                at_us,
                kind,
                detail,
            });
        }
    }

    /// Opens a scoped span; the returned RAII guard records a
    /// [`CompletedSpan`] (and a duration sample into the
    /// `span.<name>` histogram) when dropped. On a no-op handle this
    /// is two branch instructions.
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            ctx: self
                .inner
                .as_ref()
                .map(|inner| (Arc::clone(inner), name, Instant::now())),
        }
    }

    /// Counter snapshot, name-sorted.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.inner
            .as_ref()
            .map(|i| i.registry.counters())
            .unwrap_or_default()
    }

    /// Gauge snapshot, name-sorted.
    pub fn gauges(&self) -> Vec<(&'static str, f64)> {
        self.inner
            .as_ref()
            .map(|i| i.registry.gauges())
            .unwrap_or_default()
    }

    /// Histogram snapshots, name-sorted.
    pub fn histograms(&self) -> Vec<(&'static str, LogHistogram)> {
        self.inner
            .as_ref()
            .map(|i| i.registry.histograms())
            .unwrap_or_default()
    }

    /// One histogram's snapshot, if it exists.
    pub fn histogram(&self, name: &str) -> Option<LogHistogram> {
        self.inner.as_ref().and_then(|i| i.registry.histogram(name))
    }

    /// One counter's current value (0 when absent or no-op).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.registry.counter_value(name))
            .unwrap_or(0)
    }

    /// Completed spans currently retained, oldest first.
    pub fn spans(&self) -> Vec<CompletedSpan> {
        match &self.inner {
            Some(inner) => {
                let buf = inner.spans.lock().unwrap_or_else(|e| e.into_inner());
                buf.ring.iter().cloned().collect()
            }
            None => Vec::new(),
        }
    }

    /// Flight-recorder events currently retained, oldest first.
    pub fn flight_events(&self) -> Vec<FlightEvent> {
        match &self.inner {
            Some(inner) => {
                let flight = inner.flight.lock().unwrap_or_else(|e| e.into_inner());
                flight.events().cloned().collect()
            }
            None => Vec::new(),
        }
    }

    /// `(spans_dropped, flight_events_dropped)` to capacity eviction.
    pub fn dropped(&self) -> (u64, u64) {
        match &self.inner {
            Some(inner) => {
                let spans = inner.spans.lock().unwrap_or_else(|e| e.into_inner());
                let flight = inner.flight.lock().unwrap_or_else(|e| e.into_inner());
                (spans.dropped, flight.dropped())
            }
            None => (0, 0),
        }
    }

    /// Renders retained spans + flight events as Chrome `trace_event`
    /// JSON (see [`export::chrome_trace_json`]). Empty-but-valid JSON
    /// for a no-op handle.
    pub fn trace_json(&self) -> String {
        export::chrome_trace_json(&self.spans(), &self.flight_events())
    }
}

/// RAII span guard returned by [`Telemetry::span`]. Records the span
/// on drop; [`Span::cancel`] discards it instead.
#[must_use = "a span measures the scope it is alive for"]
#[derive(Debug)]
pub struct Span {
    ctx: Option<(Arc<Inner>, &'static str, Instant)>,
}

impl Span {
    /// Discards the span without recording it.
    pub fn cancel(mut self) {
        self.ctx = None;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((inner, name, started)) = self.ctx.take() {
            let dur_us = started.elapsed().as_micros() as u64;
            let end_us = inner.epoch.elapsed().as_micros() as u64;
            let span = CompletedSpan {
                name,
                tid: logical_tid(),
                start_us: end_us.saturating_sub(dur_us),
                dur_us,
            };
            inner.registry.observe(name, dur_us as f64 / 1_000.0);
            let mut buf = inner.spans.lock().unwrap_or_else(|e| e.into_inner());
            buf.push(span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_is_inert() {
        let t = Telemetry::noop();
        t.incr("c", 1);
        t.observe_ms("h", 1.0);
        t.event("e", "detail".into());
        drop(t.span("s"));
        assert!(!t.is_recording());
        assert!(t.counters().is_empty());
        assert!(t.spans().is_empty());
        assert_eq!(
            t.trace_json(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }

    #[test]
    fn spans_record_and_feed_histograms() {
        let t = Telemetry::recording();
        {
            let _s = t.span("core.decide.search");
        }
        {
            let _s = t.span("serve.tick.flush");
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert!(t.histogram("core.decide.search").is_some());
        let json = t.trace_json();
        assert!(json.contains("\"cat\":\"core\""));
        assert!(json.contains("\"cat\":\"serve\""));
    }

    #[test]
    fn counters_and_events_round_trip() {
        let t = Telemetry::recording_with_capacity(2, 8);
        t.incr("orchestrator.warm_boots", 1);
        t.incr("orchestrator.warm_boots", 2);
        assert_eq!(t.counter_value("orchestrator.warm_boots"), 3);
        for i in 0..3 {
            t.event("chaos.degrade", format!("board {i}"));
        }
        assert_eq!(t.flight_events().len(), 2, "flight ring bounded");
        assert_eq!(t.dropped().1, 1);
    }
}
