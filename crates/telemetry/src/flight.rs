//! Bounded flight recorder: a fixed-capacity ring of structured
//! events (chaos degrades, warm boots, evictions, rejected rebalance
//! proposals, drain transitions) that can be dumped after a run or a
//! chaos drill without ever growing past its capacity.

use std::collections::VecDeque;

/// One structured event in the flight recorder.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Microseconds since the owning [`crate::Telemetry`]'s epoch
    /// (monotonic clock).
    pub at_us: u64,
    /// Event category, e.g. `"chaos.degrade"` or `"rpc.drain"`.
    pub kind: &'static str,
    /// Free-form detail, e.g. the board index and eviction count.
    pub detail: String,
}

/// Fixed-capacity ring buffer of [`FlightEvent`]s. When full, the
/// oldest event is dropped and the drop counter advances — memory is
/// bounded no matter how long the daemon runs.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: VecDeque<FlightEvent>,
    capacity: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when at capacity.
    pub fn push(&mut self, event: FlightEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the recorder holds no events.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// How many events were evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_stays_bounded_and_counts_drops() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.push(FlightEvent {
                at_us: i,
                kind: "test",
                detail: format!("event {i}"),
            });
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        let stamps: Vec<u64> = fr.events().map(|e| e.at_us).collect();
        assert_eq!(stamps, vec![2, 3, 4]);
    }
}
