//! Export surfaces: Prometheus text exposition for histograms and
//! Chrome `trace_event` JSON for spans + flight-recorder events.

use crate::flight::FlightEvent;
use crate::histogram::LogHistogram;
use crate::CompletedSpan;
use std::fmt::Write as _;

/// Rewrites `name` into a legal Prometheus metric name: every byte
/// outside `[a-zA-Z0-9_]` becomes `_` (so `serve.tick.flush` exports
/// as `serve_tick_flush`).
pub fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Appends a full Prometheus histogram family — `# HELP`, `# TYPE`,
/// cumulative `_bucket{le="…"}` series over the non-empty buckets plus
/// the mandatory `+Inf` bucket, `_sum` and `_count` — for `h` under
/// `name` (already sanitized).
pub fn render_histogram(out: &mut String, name: &str, help: &str, h: &LogHistogram) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (upper, count) in h.nonzero_buckets() {
        cumulative += count;
        if upper.is_finite() {
            let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cumulative}");
        }
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum {}", h.sum());
    let _ = writeln!(out, "{name}_count {}", h.count());
}

/// Appends `# HELP`/`# TYPE` annotations plus the sample line for a
/// counter-typed metric.
pub fn render_counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

/// Appends `# HELP`/`# TYPE` annotations plus the sample line for a
/// gauge-typed metric.
pub fn render_gauge(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The crate/category prefix of a span or event name: everything
/// before the first `.` (`"core.decide.search"` → `"core"`).
fn category(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Renders completed spans and flight events as Chrome `trace_event`
/// JSON (the "JSON Array Format" inside an object wrapper), loadable
/// in `about://tracing` or Perfetto. Spans become complete (`"X"`)
/// events with microsecond `ts`/`dur`; flight events become global
/// instant (`"i"`) events. The output is sorted by timestamp.
pub fn chrome_trace_json(spans: &[CompletedSpan], events: &[FlightEvent]) -> String {
    // (ts, rendered) pairs so the final array is time-ordered even
    // though spans complete out of start order.
    let mut rows: Vec<(u64, String)> = Vec::with_capacity(spans.len() + events.len());
    for s in spans {
        rows.push((
            s.start_us,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                escape_json(s.name),
                escape_json(category(s.name)),
                s.start_us,
                s.dur_us,
                s.tid
            ),
        ));
    }
    for e in events {
        rows.push((
            e.at_us,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"flight\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":0,\"s\":\"g\",\"args\":{{\"detail\":\"{}\"}}}}",
                escape_json(e.kind),
                e.at_us,
                escape_json(&e.detail)
            ),
        ));
    }
    rows.sort_by_key(|(ts, _)| *ts);
    let mut out = String::from("{\"traceEvents\":[");
    for (i, (_, row)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(row);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_exposition_shape() {
        let mut h = LogHistogram::new();
        for v in [0.5, 1.5, 2.5, 400.0] {
            h.record(v);
        }
        let mut out = String::new();
        render_histogram(&mut out, "test_ms", "help text", &h);
        assert!(out.contains("# TYPE test_ms histogram"));
        assert!(out.contains("test_ms_bucket{le=\"+Inf\"} 4"));
        assert!(out.contains("test_ms_count 4"));
        assert!(out.contains("test_ms_sum 404.5"));
        // Cumulative counts are non-decreasing in bucket order.
        let mut last = 0u64;
        for line in out.lines().filter(|l| l.contains("_bucket{")) {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= last, "cumulative counts must not decrease: {out}");
            last = n;
        }
    }

    #[test]
    fn trace_json_is_time_sorted() {
        let spans = vec![
            CompletedSpan {
                name: "serve.tick",
                tid: 1,
                start_us: 50,
                dur_us: 10,
            },
            CompletedSpan {
                name: "core.decide",
                tid: 1,
                start_us: 5,
                dur_us: 20,
            },
        ];
        let events = vec![FlightEvent {
            at_us: 30,
            kind: "chaos.degrade",
            detail: "board 2 \"half\"".into(),
        }];
        let json = chrome_trace_json(&spans, &events);
        let core = json.find("core.decide").unwrap();
        let chaos = json.find("chaos.degrade").unwrap();
        let serve = json.find("serve.tick").unwrap();
        assert!(core < chaos && chaos < serve, "rows sorted by ts");
        assert!(json.contains("\\\"half\\\""), "details escaped: {json}");
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
    }
}
