//! Sharded metric registry: counters, gauges and latency histograms
//! keyed by static names.
//!
//! Writers hash the metric name to one of a fixed set of shards and
//! take only that shard's lock, so concurrent recorders (the fleet's
//! parallel flush, the daemon's worker threads) rarely contend.
//! Snapshots merge the shards into name-sorted vectors; histogram
//! snapshots are exact merges (see [`LogHistogram::merge`]).

use crate::histogram::LogHistogram;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Shard count. A small power of two: the registry holds tens of
/// metrics, the goal is only to keep independent writers off one lock.
const SHARDS: usize = 8;

#[derive(Default)]
struct Shard {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    histograms: Mutex<BTreeMap<&'static str, LogHistogram>>,
}

/// A sharded registry of named counters, gauges and histograms.
pub struct Registry {
    shards: Vec<Shard>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
        }
    }

    /// FNV-1a over the name picks the shard — stable across runs so a
    /// metric always lives in exactly one shard.
    fn shard(&self, name: &str) -> &Shard {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(hash as usize) % SHARDS]
    }

    /// Adds `by` to counter `name`, creating it at zero first.
    pub fn incr(&self, name: &'static str, by: u64) {
        let mut map = self
            .shard(name)
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *map.entry(name).or_insert(0) += by;
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge(&self, name: &'static str, value: f64) {
        let mut map = self
            .shard(name)
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        map.insert(name, value);
    }

    /// Records `value_ms` into histogram `name`, creating it empty
    /// first.
    pub fn observe(&self, name: &'static str, value_ms: f64) {
        let mut map = self
            .shard(name)
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        map.entry(name).or_default().record(value_ms);
    }

    /// All counters, name-sorted.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = Vec::new();
        for shard in &self.shards {
            let map = shard.counters.lock().unwrap_or_else(|e| e.into_inner());
            out.extend(map.iter().map(|(k, v)| (*k, *v)));
        }
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// All gauges, name-sorted.
    pub fn gauges(&self) -> Vec<(&'static str, f64)> {
        let mut out: Vec<(&'static str, f64)> = Vec::new();
        for shard in &self.shards {
            let map = shard.gauges.lock().unwrap_or_else(|e| e.into_inner());
            out.extend(map.iter().map(|(k, v)| (*k, *v)));
        }
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// All histograms (cloned snapshots), name-sorted.
    pub fn histograms(&self) -> Vec<(&'static str, LogHistogram)> {
        let mut out: Vec<(&'static str, LogHistogram)> = Vec::new();
        for shard in &self.shards {
            let map = shard.histograms.lock().unwrap_or_else(|e| e.into_inner());
            out.extend(map.iter().map(|(k, v)| (*k, v.clone())));
        }
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// One counter's current value (0 if never incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        let map = self
            .shard(name)
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        map.get(name).copied().unwrap_or(0)
    }

    /// One histogram's snapshot, if it exists.
    pub fn histogram(&self, name: &str) -> Option<LogHistogram> {
        let map = self
            .shard(name)
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        map.get(name).cloned()
    }
}
