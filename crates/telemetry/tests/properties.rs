//! Property tests for the histogram's structural guarantees: exact
//! merge, quantiles confined to their containing bucket, and a
//! monotonic value→bucket mapping.

use omniboost_telemetry::LogHistogram;
use proptest::prelude::*;

/// Log-uniform positive latencies across eleven orders of magnitude:
/// sub-µs estimator forwards to multi-second drains.
fn arb_latency() -> impl Strategy<Value = f64> {
    (-6.0f64..5.0).prop_map(|exp| 10f64.powf(exp))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recording two streams separately and merging equals recording
    /// the concatenated stream: bucket-for-bucket counts, exact count,
    /// exact min/max, and a sum equal up to float association order.
    #[test]
    fn merge_equals_concatenated_record(
        a in proptest::collection::vec(arb_latency(), 40),
        b in proptest::collection::vec(arb_latency(), 25),
    ) {
        let mut ha = LogHistogram::new();
        let mut hb = LogHistogram::new();
        let mut hc = LogHistogram::new();
        for &v in &a {
            ha.record(v);
            hc.record(v);
        }
        for &v in &b {
            hb.record(v);
            hc.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hc.count());
        prop_assert_eq!(ha.min(), hc.min());
        prop_assert_eq!(ha.max(), hc.max());
        let scale = hc.sum().abs().max(1.0);
        prop_assert!((ha.sum() - hc.sum()).abs() <= 1e-9 * scale,
            "sums diverge beyond association error: {} vs {}", ha.sum(), hc.sum());
        let buckets_a: Vec<(f64, u64)> = ha.nonzero_buckets().collect();
        let buckets_c: Vec<(f64, u64)> = hc.nonzero_buckets().collect();
        prop_assert_eq!(buckets_a, buckets_c);
    }

    /// Every quantile lies within the bounds of the bucket containing
    /// its nearest-rank sample — the histogram's error contract.
    #[test]
    fn quantiles_stay_within_their_bucket(
        samples in proptest::collection::vec(arb_latency(), 60),
        q_raw in 0.0f64..1.0,
    ) {
        let mut h = LogHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        // The exact nearest-rank sample the quantile approximates.
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q_raw * sorted.len() as f64).ceil() as usize).max(1);
        let exact = sorted[rank - 1];
        let bucket = LogHistogram::bucket_index(exact);
        let (lower, upper) = LogHistogram::bucket_bounds(bucket);
        let got = h.quantile(q_raw);
        prop_assert!(
            got >= lower && got <= upper,
            "quantile({q_raw}) = {got} escapes bucket {bucket} = [{lower}, {upper}) holding exact {exact}"
        );
        // And the histogram never reports beyond the exact extremes.
        prop_assert!(got >= h.min() && got <= h.max());
    }

    /// The value→bucket mapping is monotone non-decreasing, so bucket
    /// order is value order and cumulative `_bucket` series are sound.
    #[test]
    fn bucket_mapping_is_monotonic(
        a in arb_latency(),
        b in arb_latency(),
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            LogHistogram::bucket_index(lo) <= LogHistogram::bucket_index(hi),
            "bucket({lo}) > bucket({hi})"
        );
        // Bounds round-trip: every value sits inside its own bucket.
        let (lower, upper) = LogHistogram::bucket_bounds(LogHistogram::bucket_index(lo));
        prop_assert!(lo >= lower && lo < upper, "{lo} outside [{lower}, {upper})");
    }
}
