//! Top-level OmniBoost configuration.

use omniboost_estimator::{DatasetConfig, TrainConfig};
use omniboost_hw::Device;
use omniboost_mcts::SearchBudget;

/// Configuration for both phases of OmniBoost.
///
/// Defaults reproduce the paper's setup: 500 random training workloads
/// (400/100 split, 100 epochs, L1 + Adam) at design time; MCTS with 500
/// iterations, depth 100 and a pipeline-stage cap equal to the device
/// count at run time.
#[derive(Debug, Clone)]
pub struct OmniBoostConfig {
    /// Design-time dataset generation.
    pub dataset: DatasetConfig,
    /// Estimator training hyper-parameters.
    pub training: TrainConfig,
    /// Run-time search budget.
    pub budget: SearchBudget,
    /// Losing-state stage cap `x` (§IV-C); the paper sets it to the
    /// number of computing components.
    pub stage_cap: usize,
    /// Seed for the run-time search.
    pub seed: u64,
    /// Entry bound of the cross-decision evaluation cache (reports the
    /// estimator computed for one `decide` call are reused by later
    /// calls on recurring workloads). 0 disables the cache.
    pub eval_cache_capacity: usize,
}

impl Default for OmniBoostConfig {
    fn default() -> Self {
        Self {
            dataset: DatasetConfig::default(),
            training: TrainConfig::default(),
            budget: SearchBudget::default(),
            stage_cap: Device::COUNT,
            seed: 0x0B00575,
            eval_cache_capacity: 8192,
        }
    }
}

impl OmniBoostConfig {
    /// A reduced configuration for tests and quick demos: a small dataset,
    /// short training and a light search budget (seconds, not minutes).
    pub fn quick() -> Self {
        Self {
            dataset: DatasetConfig {
                num_workloads: 60,
                ..DatasetConfig::default()
            },
            training: TrainConfig {
                epochs: 20,
                ..TrainConfig::default()
            },
            budget: SearchBudget::with_iterations(150),
            ..Self::default()
        }
    }

    /// Run-time leaf-evaluation batch size (rollouts scored per estimator
    /// round trip); `1` reproduces the paper's scalar query loop.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.budget = self.budget.with_batch_size(batch_size);
        self
    }

    /// Number of root-parallel search trees sharing the iteration budget.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.budget = self.budget.with_parallelism(parallelism);
        self
    }

    /// Run-time evaluation batch size currently configured.
    pub fn batch_size(&self) -> usize {
        self.budget.batch_size
    }

    /// Root-parallel tree count currently configured.
    pub fn parallelism(&self) -> usize {
        self.budget.parallelism
    }

    /// Bounds (or, with 0, disables) the cross-decision evaluation cache.
    #[must_use]
    pub fn with_eval_cache_capacity(mut self, capacity: usize) -> Self {
        self.eval_cache_capacity = capacity;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = OmniBoostConfig::default();
        assert_eq!(c.dataset.num_workloads, 500);
        assert_eq!(c.training.epochs, 100);
        assert_eq!(c.budget.iterations, 500);
        assert_eq!(c.budget.max_depth, 100);
        assert_eq!(c.stage_cap, 3);
    }

    #[test]
    fn batching_knobs_flow_into_the_budget() {
        let c = OmniBoostConfig::quick()
            .with_batch_size(32)
            .with_parallelism(4);
        assert_eq!(c.batch_size(), 32);
        assert_eq!(c.parallelism(), 4);
        assert_eq!(c.budget.batch_size, 32);
        assert_eq!(c.budget.parallelism, 4);
    }

    #[test]
    fn cache_knob_flows_through() {
        let c = OmniBoostConfig::quick().with_eval_cache_capacity(123);
        assert_eq!(c.eval_cache_capacity, 123);
        assert!(OmniBoostConfig::default().eval_cache_capacity > 0);
    }

    #[test]
    fn quick_is_smaller_everywhere() {
        let q = OmniBoostConfig::quick();
        let d = OmniBoostConfig::default();
        assert!(q.dataset.num_workloads < d.dataset.num_workloads);
        assert!(q.training.epochs < d.training.epochs);
        assert!(q.budget.iterations < d.budget.iterations);
    }
}
