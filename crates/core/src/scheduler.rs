//! The OmniBoost scheduler: estimator-guided MCTS.

use crate::config::OmniBoostConfig;
use omniboost_estimator::{BoardScopedCache, CnnEstimator, EvalCache, TrainHistory};
use omniboost_hw::{Board, EvalCacheStats, HwError, Mapping, Scheduler, Workload};
use omniboost_mcts::{Mcts, SchedulingEnv, SearchBudget};

/// The OmniBoost multi-DNN manager (§IV).
///
/// Built once at design time ([`OmniBoost::design_time`]), it answers any
/// number of scheduling queries *without retraining* — the paper's key
/// run-time property ("OmniBoost is the first framework that addresses
/// the multi-DNN scheduling problem without retraining").
///
/// See the crate docs for an end-to-end example.
pub struct OmniBoost {
    estimator: CnnEstimator,
    config: OmniBoostConfig,
    /// Cross-decision evaluation cache: estimator reports computed while
    /// deciding one workload are reused by later decisions (recurring
    /// traffic re-visits the same mappings — starting with the GPU-only
    /// normalization baseline every `decide` call queries). Outlives the
    /// per-decision reward memo inside the scheduling environment;
    /// board-scoped, so deciding against different hardware flushes.
    eval_cache: BoardScopedCache,
    last_evaluations: usize,
}

impl OmniBoost {
    /// Runs the full design-time flow on a board: profile the model zoo,
    /// generate random workloads, measure them, train the CNN estimator.
    ///
    /// This is the expensive, once-per-platform step (Fig. 2, steps 1–3);
    /// with default settings it takes on the order of a minute, matching
    /// the paper's "training took under a minute" on an NVIDIA 1660 Ti.
    pub fn design_time(board: &Board, config: OmniBoostConfig) -> (Self, TrainHistory) {
        let dataset = config.dataset.generate(board);
        let (estimator, history) = CnnEstimator::train(board, &dataset, &config.training);
        (Self::from_estimator(estimator, config), history)
    }

    /// Wraps an already-trained estimator.
    pub fn from_estimator(estimator: CnnEstimator, config: OmniBoostConfig) -> Self {
        let eval_cache = BoardScopedCache::new(config.eval_cache_capacity);
        Self {
            estimator,
            config,
            eval_cache,
            last_evaluations: 0,
        }
    }

    /// The trained estimator.
    pub fn estimator(&self) -> &CnnEstimator {
        &self.estimator
    }

    /// The cross-decision evaluation cache (disabled when the config's
    /// `eval_cache_capacity` is 0).
    pub fn eval_cache(&self) -> &EvalCache {
        self.eval_cache.cache()
    }

    /// The configuration.
    pub fn config(&self) -> &OmniBoostConfig {
        &self.config
    }

    /// Replaces the run-time search budget without retraining — budget is
    /// the paper's run-time flexibility knob (§V-B), so sweeping it must
    /// not cost another design-time pass.
    pub fn set_budget(&mut self, budget: omniboost_mcts::SearchBudget) {
        self.config.budget = budget;
    }

    /// Estimator queries the last decision actually ran (the paper
    /// reports 500 queries dominating its ~30 s decision latency, §V-B).
    /// Queries answered by the cross-decision cache are not estimator
    /// work and are excluded — a fully-warm repeat decision reports 0.
    pub fn last_evaluations(&self) -> usize {
        self.last_evaluations
    }
}

impl Scheduler for OmniBoost {
    fn name(&self) -> &str {
        "omniboost"
    }

    fn decide(&mut self, board: &Board, workload: &Workload) -> Result<Mapping, HwError> {
        board.admit(workload)?;
        // Every estimator query of this decision flows through the
        // board-scoped cross-decision cache (a no-op wrapper when
        // capacity is 0), so recurring workloads amortize evaluations
        // across `decide` calls; the scope also handles flush-on-board-
        // change and the fresh-query accounting below.
        let scope = self.eval_cache.begin(board);
        let cached = scope.wrap(&self.estimator);
        let env = SchedulingEnv::new(workload, &cached, self.config.stage_cap)?;
        // `run` honours the budget's batch_size (leaf rollouts per
        // minibatched estimator round trip) and parallelism (root trees).
        let result = Mcts::new(self.config.budget).run(&env, self.config.seed);
        // `result.evaluations` counts queries that reached the *cached*
        // evaluator; with the cache enabled, only its misses actually ran
        // a CNN forward — report those so "evaluations per decision"
        // stays truthful on the recurring-traffic path too.
        self.last_evaluations = scope.fresh_evaluations(result.evaluations);
        let mapping = env.mapping_of(&result.best_state);
        mapping.validate(workload)?;
        Ok(mapping)
    }

    fn eval_cache_stats(&self) -> Option<EvalCacheStats> {
        self.eval_cache.stats_if_enabled()
    }
}

/// Ablation variant: the same MCTS explorer guided by a *perfect* oracle
/// (the board simulator itself) instead of the CNN estimator.
///
/// Comparing [`OmniBoost`] against this quantifies how much throughput
/// the estimator's approximation error costs — one of the design-choice
/// ablations listed in `DESIGN.md`.
///
/// Oracle queries flow through the same cross-decision [`EvalCache`] as
/// the estimator path (capacity matches [`OmniBoostConfig`]'s default;
/// 0 disables), so decision-latency comparisons between the two are
/// cache-for-cache fair. Cached reports are valid for exactly one
/// board; deciding against a different board flushes the cache.
pub struct OracleOmniBoost {
    budget: SearchBudget,
    stage_cap: usize,
    seed: u64,
    eval_cache: BoardScopedCache,
}

impl OracleOmniBoost {
    /// Creates the oracle-guided scheduler.
    pub fn new(budget: SearchBudget, stage_cap: usize, seed: u64) -> Self {
        Self {
            budget,
            stage_cap,
            seed,
            eval_cache: BoardScopedCache::new(OmniBoostConfig::default().eval_cache_capacity),
        }
    }

    /// Replaces the cross-decision cache capacity (0 disables; any
    /// cached reports are dropped).
    #[must_use]
    pub fn with_eval_cache_capacity(mut self, capacity: usize) -> Self {
        self.eval_cache = BoardScopedCache::new(capacity);
        self
    }

    /// The cross-decision evaluation cache.
    pub fn eval_cache(&self) -> &EvalCache {
        self.eval_cache.cache()
    }
}

impl Scheduler for OracleOmniBoost {
    fn name(&self) -> &str {
        "omniboost-oracle"
    }

    fn decide(&mut self, board: &Board, workload: &Workload) -> Result<Mapping, HwError> {
        board.admit(workload)?;
        // The scope flushes on board change (cache keys carry no board
        // identity, so reports are valid for exactly one board).
        let scope = self.eval_cache.begin(board);
        let oracle = scope.wrap(board.simulator());
        let env = SchedulingEnv::new(workload, &oracle, self.stage_cap)?;
        let result = Mcts::new(self.budget).run(&env, self.seed);
        let mapping = env.mapping_of(&result.best_state);
        mapping.validate(workload)?;
        Ok(mapping)
    }

    fn eval_cache_stats(&self) -> Option<EvalCacheStats> {
        self.eval_cache.stats_if_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omniboost_hw::{Device, ThroughputModel as _};
    use omniboost_models::ModelId;

    #[test]
    fn oracle_omniboost_beats_baseline_on_heavy_mix() {
        let board = Board::hikey970();
        let mut sched = OracleOmniBoost::new(SearchBudget::with_iterations(200), 3, 42);
        let w = Workload::from_ids([
            ModelId::Vgg19,
            ModelId::ResNet50,
            ModelId::InceptionV3,
            ModelId::Vgg16,
        ]);
        let sim = board.simulator();
        let mapping = sched.decide(&board, &w).unwrap();
        let ours = sim.evaluate(&w, &mapping).unwrap().average;
        let base = sim
            .evaluate(&w, &Mapping::all_on(&w, Device::Gpu))
            .unwrap()
            .average;
        assert!(ours > base * 1.5, "oracle {ours} vs baseline {base}");
        assert!(mapping.max_stages() <= 3);
    }

    #[test]
    fn estimator_omniboost_end_to_end_quick() {
        let board = Board::hikey970();
        let (mut sched, history) = OmniBoost::design_time(&board, OmniBoostConfig::quick());
        assert!(history.final_train_loss().is_finite());
        let w = Workload::from_ids([ModelId::Vgg19, ModelId::ResNet50, ModelId::AlexNet]);
        let mapping = sched.decide(&board, &w).unwrap();
        mapping.validate(&w).unwrap();
        assert!(mapping.max_stages() <= 3);
        assert!(sched.last_evaluations() > 0);
        // Re-query with a different workload without retraining.
        let w2 = Workload::from_ids([ModelId::MobileNet, ModelId::SqueezeNet]);
        let mapping2 = sched.decide(&board, &w2).unwrap();
        mapping2.validate(&w2).unwrap();
    }

    #[test]
    fn repeat_decisions_amortize_through_the_eval_cache() {
        let board = Board::hikey970();
        let (mut sched, _) = OmniBoost::design_time(&board, OmniBoostConfig::quick());
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet]);

        sched.decide(&board, &w).unwrap();
        let cold = sched.eval_cache_stats().expect("cache enabled by default");
        assert!(cold.misses > 0, "first decision must populate the cache");
        let cold_evals = sched.last_evaluations();

        // Same workload again: the search is deterministic per seed, so
        // it revisits the same mappings — almost everything hits.
        sched.decide(&board, &w).unwrap();
        let warm = sched.eval_cache_stats().unwrap();
        assert!(
            warm.hits >= cold_evals as u64,
            "warm decision should replay the cold decision's {cold_evals} queries \
             from cache, stats: {warm:?}"
        );
        assert_eq!(
            warm.misses, cold.misses,
            "no new estimator work on a recurring workload"
        );
        assert_eq!(
            sched.last_evaluations(),
            0,
            "a fully-warm decision ran no CNN forwards"
        );
    }

    #[test]
    fn zero_capacity_disables_the_eval_cache() {
        let board = Board::hikey970();
        let (mut sched, _) =
            OmniBoost::design_time(&board, OmniBoostConfig::quick().with_eval_cache_capacity(0));
        let w = Workload::from_ids([ModelId::AlexNet]);
        sched.decide(&board, &w).unwrap();
        assert_eq!(sched.eval_cache_stats(), None);
        assert!(sched.eval_cache().is_disabled());
    }

    /// Oracle decisions amortize through the same cross-decision cache
    /// as estimator decisions — the fairness fix for latency A/Bs.
    #[test]
    fn oracle_recurring_decisions_amortize() {
        let board = Board::hikey970();
        let mut sched = OracleOmniBoost::new(SearchBudget::with_iterations(60), 3, 9);
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet]);
        let m1 = sched.decide(&board, &w).unwrap();
        let cold = sched.eval_cache_stats().expect("cache enabled by default");
        assert!(cold.misses > 0);
        let m2 = sched.decide(&board, &w).unwrap();
        assert_eq!(m1, m2, "search is deterministic per seed");
        let warm = sched.eval_cache_stats().unwrap();
        assert_eq!(warm.misses, cold.misses, "warm decision ran no oracle");
        assert!(warm.hits > cold.hits);
        // Opting out still works.
        let mut uncached = OracleOmniBoost::new(SearchBudget::with_iterations(10), 3, 9)
            .with_eval_cache_capacity(0);
        uncached.decide(&board, &w).unwrap();
        assert_eq!(uncached.eval_cache_stats(), None);
    }

    /// Cached oracle reports are valid for exactly one board: deciding
    /// against different hardware must flush (via the board scope),
    /// never replay stale throughputs.
    #[test]
    fn oracle_board_change_flushes_the_eval_cache() {
        let board_a = Board::hikey970();
        let mut board_b = Board::hikey970();
        board_b.max_concurrent_dnns += 1;
        let mut sched = OracleOmniBoost::new(SearchBudget::with_iterations(40), 3, 9);
        let w = Workload::from_ids([ModelId::AlexNet]);
        sched.decide(&board_a, &w).unwrap();
        let warm = sched.eval_cache_stats().unwrap();
        sched.decide(&board_b, &w).unwrap();
        let after = sched.eval_cache_stats().unwrap();
        assert!(
            after.misses > warm.misses,
            "different board must re-measure: {warm:?} -> {after:?}"
        );
    }
}
