//! # omniboost
//!
//! A Rust reproduction of **OmniBoost: Boosting Throughput of
//! Heterogeneous Embedded Devices under Multi-DNN Workload**
//! (Karatzas & Anagnostopoulos, DAC 2023).
//!
//! OmniBoost is a lightweight, extensible multi-DNN manager: given a set
//! of networks to run concurrently on a heterogeneous embedded board
//! (GPU + big CPU + LITTLE CPU), it partitions each network's layers into
//! pipeline stages across the computing components so that *average
//! system throughput* is maximized. Two pieces cooperate (§IV):
//!
//! * a **throughput estimator** — a ~20k-parameter CNN over masked
//!   distributed-embedding tensors ([`omniboost_estimator`]);
//! * a **Monte-Carlo Tree Search** explorer over the assignment space,
//!   budgeted at 500 iterations / depth 100 ([`omniboost_mcts`]).
//!
//! This crate is the user-facing assembly: [`OmniBoost`] runs the
//! design-time flow (profile → generate dataset → train estimator) once,
//! then answers scheduling queries without retraining — the property the
//! paper highlights against the per-workload-retrained GA.
//!
//! The physical HiKey970 of the paper is replaced by a calibrated
//! simulator ([`omniboost_hw`]); see `DESIGN.md` for the substitution
//! argument.
//!
//! ```no_run
//! use omniboost::{OmniBoost, OmniBoostConfig, Runtime};
//! use omniboost_hw::{Board, Scheduler, Workload};
//! use omniboost_models::ModelId;
//!
//! let board = Board::hikey970();
//! // Design time (once): profile, generate workloads, train the CNN.
//! let (mut scheduler, history) = OmniBoost::design_time(&board, OmniBoostConfig::default());
//! println!("estimator validation L1: {:.3}", history.final_validation_loss());
//!
//! // Run time (per query): explore with MCTS, deploy, measure.
//! let workload = Workload::from_ids([ModelId::Vgg19, ModelId::MobileNet, ModelId::ResNet50]);
//! let runtime = Runtime::new(board);
//! let outcome = runtime.run(&mut scheduler, &workload)?;
//! println!("T = {:.2} inf/s with mapping\n{}", outcome.report.average, outcome.mapping);
//! # Ok::<(), omniboost_hw::HwError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod report;
mod runtime;
mod scheduler;

pub use config::OmniBoostConfig;
pub use omniboost_hw::EvalCacheStats;
pub use report::{format_comparison, ComparisonRow};
pub use runtime::{MemoStats, PreviousDeployment, RunOutcome, Runtime};
pub use scheduler::{OmniBoost, OracleOmniBoost};

// Re-export the component crates so downstream users need one dependency.
pub use omniboost_baselines as baselines;
pub use omniboost_estimator as estimator;
pub use omniboost_hw as hw;
pub use omniboost_mcts as mcts;
pub use omniboost_models as models;
pub use omniboost_telemetry as telemetry;
pub use omniboost_tensor as tensor;
