//! The decide → deploy → measure loop used by every experiment.

use omniboost_hw::{Board, DesSimulator, HwError, Mapping, Scheduler, ThroughputModel, ThroughputReport, Workload};
use std::time::{Duration, Instant};

/// Result of running one scheduler on one workload.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The mapping the scheduler decided.
    pub mapping: Mapping,
    /// Measured throughput of that mapping on the board.
    pub report: ThroughputReport,
    /// Wall-clock decision latency (§V-B's comparison axis).
    pub decision_time: Duration,
}

/// Drives schedulers against a board: asks for a decision, "deploys" it
/// on the simulator and measures the achieved throughput.
///
/// ```no_run
/// use omniboost::Runtime;
/// use omniboost::baselines::GpuOnly;
/// use omniboost_hw::{Board, Workload};
/// use omniboost_models::ModelId;
///
/// let runtime = Runtime::new(Board::hikey970());
/// let w = Workload::from_ids([ModelId::AlexNet]);
/// let outcome = runtime.run(&mut GpuOnly::new(), &w)?;
/// println!("{:.1} inf/s in {:?}", outcome.report.average, outcome.decision_time);
/// # Ok::<(), omniboost_hw::HwError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Runtime {
    board: Board,
    simulator: DesSimulator,
}

impl Runtime {
    /// Creates a runtime over a board with default simulator fidelity.
    pub fn new(board: Board) -> Self {
        let simulator = board.simulator();
        Self { board, simulator }
    }

    /// The board.
    pub fn board(&self) -> &Board {
        &self.board
    }

    /// The measurement simulator.
    pub fn simulator(&self) -> &DesSimulator {
        &self.simulator
    }

    /// Decides, deploys and measures.
    ///
    /// # Errors
    ///
    /// Propagates scheduler and measurement [`HwError`]s (inadmissible
    /// workloads, malformed mappings).
    pub fn run(&self, scheduler: &mut dyn Scheduler, workload: &Workload) -> Result<RunOutcome, HwError> {
        let start = Instant::now();
        let mapping = scheduler.decide(&self.board, workload)?;
        let decision_time = start.elapsed();
        let report = self.simulator.evaluate(workload, &mapping)?;
        Ok(RunOutcome {
            mapping,
            report,
            decision_time,
        })
    }

    /// Measures an explicit mapping (no scheduler).
    ///
    /// # Errors
    ///
    /// Propagates measurement [`HwError`]s.
    pub fn measure(&self, workload: &Workload, mapping: &Mapping) -> Result<ThroughputReport, HwError> {
        self.simulator.evaluate(workload, mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omniboost_baselines::GpuOnly;
    use omniboost_hw::Device;
    use omniboost_models::ModelId;

    #[test]
    fn run_measures_the_decided_mapping() {
        let rt = Runtime::new(Board::hikey970());
        let w = Workload::from_ids([ModelId::AlexNet, ModelId::SqueezeNet]);
        let outcome = rt.run(&mut GpuOnly::new(), &w).unwrap();
        assert!(outcome.report.average > 0.0);
        assert_eq!(outcome.mapping.devices_used(), vec![Device::Gpu]);
        let direct = rt.measure(&w, &outcome.mapping).unwrap();
        assert_eq!(direct.per_dnn, outcome.report.per_dnn);
    }

    #[test]
    fn inadmissible_workloads_propagate() {
        let rt = Runtime::new(Board::hikey970());
        let w = Workload::from_ids(vec![ModelId::AlexNet; 6]);
        assert!(matches!(
            rt.run(&mut GpuOnly::new(), &w),
            Err(HwError::Unresponsive { .. })
        ));
    }
}
